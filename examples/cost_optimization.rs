//! Cost optimisation over the number of servers (the question behind Figure 5) and
//! over the *composition* of a mixed fleet (the per-class extension).
//!
//! The first part sweeps the number of identical servers for several arrival rates,
//! evaluates the cost `C = c₁·L + c₂·N` with the paper's coefficients (c₁ = 4,
//! c₂ = 1), and reports the cost-optimal cluster size.  The second part prices two
//! server classes differently and searches fleet compositions with
//! `urs_core::mix::MixSearch` under the per-class model `C = c₁·L + Σⱼ c₂ⱼ·Nⱼ`.
//!
//! Run with `cargo run --release --example cost_optimization` (URS_SMOKE=1 shrinks
//! the grids for CI).

use unreliable_servers::core::{
    ClassCostModel, CostModel, CostSweep, MixBounds, MixSearch, ServerClass, ServerLifecycle,
    SpectralExpansionSolver, SystemConfig,
};
use urs_bench::smoke;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lifecycle = ServerLifecycle::paper_fitted()?;
    let cost_model = CostModel::paper_figure5();
    let solver = SpectralExpansionSolver::default();

    println!("Cost model: C = {}·L + {}·N", cost_model.holding_cost(), cost_model.server_cost());
    println!();

    let lambdas: &[f64] = if smoke() { &[8.0] } else { &[7.0, 8.0, 8.5] };
    let top_n = if smoke() { 13 } else { 17 };
    for &lambda in lambdas {
        let base = SystemConfig::new(9, lambda, 1.0, lifecycle.clone())?;
        let sweep = CostSweep::evaluate(&solver, &base, &cost_model, 9..=top_n)?;
        println!("arrival rate λ = {lambda}");
        println!("  {:>3}  {:>10}  {:>10}", "N", "L", "cost C");
        for point in sweep.points() {
            println!(
                "  {:>3}  {:>10.3}  {:>10.3}",
                point.servers, point.mean_queue_length, point.cost
            );
        }
        if let Some(best) = sweep.optimum() {
            println!("  -> optimal number of servers: {} (cost {:.2})", best.servers, best.cost);
        }
        println!();
    }

    // The per-class extension: steady paper-lifecycle servers (price 1.0) versus
    // fast-but-fragile ones (µ = 1.5, price 1.4).  MixSearch finds the cheapest
    // composition instead of just the cheapest size.
    let (lambda, max_servers) = if smoke() { (3.2, 6) } else { (5.5, 10) };
    let steady = ServerClass::new(1, 1.0, lifecycle)?;
    let fragile = ServerClass::new(1, 1.5, ServerLifecycle::exponential(0.1, 2.0)?)?;
    let mix_cost = ClassCostModel::new(4.0, vec![1.4, 1.0])?;
    let result =
        MixSearch::new(lambda, vec![fragile, steady], mix_cost, MixBounds::up_to(max_servers)?)?
            .run()?;
    println!("Per-class cost model: C = 4·L + 1.4·N_fast + 1.0·N_steady (λ = {lambda})");
    match result.optimum() {
        Some(best) => println!(
            "  -> optimal mix within {} servers: {} fast + {} steady (cost {:.2}, L = {:.3}; \
             {} compositions considered)",
            max_servers,
            best.counts()[0],
            best.counts()[1],
            best.cost(),
            best.mean_queue_length(),
            result.candidates()
        ),
        None => println!("  -> no stable composition within {max_servers} servers"),
    }
    Ok(())
}
