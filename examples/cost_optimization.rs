//! Cost optimisation over the number of servers (the question behind Figure 5).
//!
//! For several arrival rates, sweeps the number of servers, evaluates the cost
//! `C = c₁·L + c₂·N` with the paper's coefficients (c₁ = 4, c₂ = 1), and reports the
//! cost-optimal cluster size.
//!
//! Run with `cargo run --release --example cost_optimization`.

use unreliable_servers::core::{
    CostModel, CostSweep, ServerLifecycle, SpectralExpansionSolver, SystemConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lifecycle = ServerLifecycle::paper_fitted()?;
    let cost_model = CostModel::paper_figure5();
    let solver = SpectralExpansionSolver::default();

    println!("Cost model: C = {}·L + {}·N", cost_model.holding_cost(), cost_model.server_cost());
    println!();

    for &lambda in &[7.0, 8.0, 8.5] {
        let base = SystemConfig::new(9, lambda, 1.0, lifecycle.clone())?;
        let sweep = CostSweep::evaluate(&solver, &base, &cost_model, 9..=17)?;
        println!("arrival rate λ = {lambda}");
        println!("  {:>3}  {:>10}  {:>10}", "N", "L", "cost C");
        for point in sweep.points() {
            println!(
                "  {:>3}  {:>10.3}  {:>10.3}",
                point.servers, point.mean_queue_length, point.cost
            );
        }
        if let Some(best) = sweep.optimum() {
            println!("  -> optimal number of servers: {} (cost {:.2})", best.servers, best.cost);
        }
        println!();
    }
    Ok(())
}
