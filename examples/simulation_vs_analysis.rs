//! Validates the analytic model against discrete-event simulation.
//!
//! Solves a moderately loaded system exactly by spectral expansion and then simulates
//! the very same system with independent replications, reporting the analytic value of
//! `L` together with the simulation's 95% confidence interval.  It also demonstrates an
//! experiment the analytic model cannot express: deterministic (C² = 0) operative
//! periods, as used for the first point of each curve in the paper's Figure 6.
//!
//! Run with `cargo run --release --example simulation_vs_analysis`.

use unreliable_servers::core::{
    QueueSolver, ServerLifecycle, SpectralExpansionSolver, SystemConfig,
};
use unreliable_servers::dist::{ContinuousDistribution, Deterministic, Exponential};
use unreliable_servers::sim::{BreakdownQueueSimulation, Replications, SimulationConfig};
use urs_bench::smoke;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5-server system with the paper's operative-period variability scaled to a
    // moderate load so that the simulation converges quickly.  URS_SMOKE shrinks the
    // horizons and replication counts to CI size.
    let (warmup, horizon, replications) =
        if smoke() { (1_000.0, 20_000.0, 4) } else { (5_000.0, 120_000.0, 10) };
    let lifecycle = ServerLifecycle::paper_fitted()?;
    let config = SystemConfig::new(5, 4.0, 1.0, lifecycle.clone())?;

    let analytic = SpectralExpansionSolver::default().solve(&config)?;
    println!(
        "Analytic (spectral expansion): L = {:.4}, W = {:.4}",
        analytic.mean_queue_length(),
        analytic.mean_response_time()
    );

    let sim_config = SimulationConfig::builder(config.servers(), config.arrival_rate())
        .service(Exponential::new(config.service_rate())?)
        .operative(lifecycle.operative().clone())
        .inoperative(lifecycle.inoperative().clone())
        .warmup(warmup)
        .horizon(horizon)
        .build()?;
    let summary =
        Replications::new(replications, 42).run(&BreakdownQueueSimulation::new(sim_config))?;
    println!(
        "Simulation ({replications} replications): L = {:.4} ± {:.4}  (95% CI [{:.4}, {:.4}])",
        summary.mean_queue_length.mean,
        summary.mean_queue_length.half_width,
        summary.mean_queue_length.lower(),
        summary.mean_queue_length.upper()
    );
    println!(
        "  analytic value inside the confidence interval: {}",
        summary.mean_queue_length.contains(analytic.mean_queue_length())
    );
    println!();

    // Deterministic operative periods (C² = 0): only the simulator can evaluate this.
    let deterministic = SimulationConfig::builder(config.servers(), config.arrival_rate())
        .service(Exponential::new(config.service_rate())?)
        .operative(Deterministic::new(lifecycle.operative().mean())?)
        .inoperative(lifecycle.inoperative().clone())
        .warmup(warmup)
        .horizon(horizon)
        .build()?;
    let det_summary =
        Replications::new(replications, 7).run(&BreakdownQueueSimulation::new(deterministic))?;
    println!(
        "Deterministic operative periods (C² = 0, simulation only): L = {:.4} ± {:.4}",
        det_summary.mean_queue_length.mean, det_summary.mean_queue_length.half_width
    );
    println!(
        "Hyperexponential operative periods (C² = {:.1}) increase L by a factor of {:.2}",
        lifecycle.operative().scv(),
        summary.mean_queue_length.mean / det_summary.mean_queue_length.mean
    );
    Ok(())
}
