//! Capacity planning: the minimum number of servers meeting a response-time target
//! (the question behind Figure 9).
//!
//! Sweeps the number of servers at λ = 7.5, prints the mean response time predicted by
//! the exact solution and the geometric approximation, and reports the smallest cluster
//! meeting a target of W ≤ 1.5.
//!
//! Run with `cargo run --release --example capacity_planning`.

use unreliable_servers::core::{
    GeometricApproximation, ProvisioningSweep, ServerLifecycle, SpectralExpansionSolver,
    SystemConfig,
};
use urs_bench::smoke;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lifecycle = ServerLifecycle::paper_fitted()?;
    let base = SystemConfig::new(8, 7.5, 1.0, lifecycle)?;
    let target = 1.5;
    let top_n = if smoke() { 11 } else { 13 };

    let exact = ProvisioningSweep::evaluate(&SpectralExpansionSolver::default(), &base, 8..=top_n)?;
    let approx = ProvisioningSweep::evaluate(&GeometricApproximation::default(), &base, 8..=top_n)?;

    println!("Mean response time W against the number of servers (λ = 7.5, µ = 1)");
    println!("  {:>3}  {:>12}  {:>14}", "N", "W (exact)", "W (approx.)");
    for (e, a) in exact.points().iter().zip(approx.points()) {
        println!(
            "  {:>3}  {:>12.4}  {:>14.4}",
            e.servers, e.mean_response_time, a.mean_response_time
        );
    }
    println!();
    match exact.min_servers_for_response_time(target) {
        Some(n) => println!("Minimum number of servers for W ≤ {target}: {n} (exact solution)"),
        None => println!("No server count in the range meets W ≤ {target}"),
    }
    match approx.min_servers_for_response_time(target) {
        Some(n) => println!("Minimum number of servers for W ≤ {target}: {n} (approximation)"),
        None => println!("The approximation finds no feasible count in the range"),
    }
    Ok(())
}
