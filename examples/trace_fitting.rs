//! The empirical workflow of Section 2: from a breakdown trace to fitted distributions.
//!
//! Generates a synthetic Sun-like trace (140 000 events by default; pass a number as
//! the first argument to change it), cleans it, estimates moments, fits exponential and
//! hyperexponential distributions to the operative and inoperative periods, and runs
//! the Kolmogorov–Smirnov tests that justify the paper's modelling choices.
//!
//! Run with `cargo run --release --example trace_fitting [events]`.

use unreliable_servers::data::{AnalysisOptions, SyntheticTrace, TraceAnalysis};
use unreliable_servers::dist::ContinuousDistribution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Default to the paper's trace size; URS_SMOKE shrinks it to CI scale.
    let default_events = if urs_bench::smoke() { 20_000 } else { 140_000 };
    let events: usize =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(default_events);
    println!("Generating a synthetic breakdown trace with {events} events …");
    let trace = SyntheticTrace::paper_like().with_events(events).generate(2006)?;
    let analysis = TraceAnalysis::run(&trace, AnalysisOptions::default())?;

    println!("Cleaning");
    println!("  usable rows        : {}", analysis.cleaned_rows());
    println!("  discarded as anomalous: {:.2}%", 100.0 * analysis.discarded_fraction());
    println!();

    let operative = analysis.operative();
    println!("Operative periods");
    println!("  sample mean        : {:.3}", operative.moments().mean());
    println!("  sample C²          : {:.3}", operative.moments().scv());
    let fit = operative.fitted_hyperexponential();
    println!("  fitted H2 weights  : {:?}", fit.weights());
    println!("  fitted H2 rates    : {:?}", fit.rates());
    println!("  fitted H2 mean     : {:.3}  (paper: 34.62)", fit.mean());
    println!(
        "  KS (exponential)   : D = {:.4}, 5% critical = {:.4}  -> {}",
        operative.ks_exponential().statistic(),
        operative.ks_exponential().critical_value(0.05)?,
        if operative.exponential_accepted_at_5_percent() { "accepted" } else { "REJECTED" }
    );
    println!(
        "  KS (hyperexp.)     : D = {:.4}, 5% critical = {:.4}  -> {}",
        operative.ks_hyperexponential().statistic(),
        operative.ks_hyperexponential().critical_value(0.05)?,
        if operative.hyperexponential_accepted_at_5_percent() { "accepted" } else { "REJECTED" }
    );
    println!();

    let inoperative = analysis.inoperative();
    println!("Inoperative periods");
    println!("  sample mean        : {:.4}", inoperative.moments().mean());
    println!("  sample C²          : {:.3}", inoperative.moments().scv());
    let rfit = inoperative.fitted_hyperexponential();
    println!("  fitted H2 weights  : {:?}", rfit.weights());
    println!("  fitted H2 rates    : {:?}", rfit.rates());
    println!(
        "  KS (hyperexp.)     : D = {:.4}, 5% critical = {:.4}  -> {}",
        inoperative.ks_hyperexponential().statistic(),
        inoperative.ks_hyperexponential().critical_value(0.05)?,
        if inoperative.hyperexponential_accepted_at_5_percent() { "accepted" } else { "REJECTED" }
    );
    println!();

    println!("Density of the operative periods (first 10 intervals, cf. Figure 3):");
    println!("  {:>8}  {:>12}  {:>12}", "x", "empirical", "H2 fit");
    for point in operative.density_series().iter().take(10) {
        println!("  {:>8.2}  {:>12.6}  {:>12.6}", point.x, point.empirical, point.hyperexponential);
    }
    Ok(())
}
