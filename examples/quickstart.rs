//! Quickstart: evaluate a cluster of unreliable servers.
//!
//! Builds the system of the paper's numerical section (10 servers, the operative-period
//! distribution fitted to the Sun trace, exponential repairs), solves it exactly and
//! approximately, and prints the headline performance measures.
//!
//! Run with `cargo run --release --example quickstart`.

use unreliable_servers::core::{
    GeometricApproximation, QueueSolver, ServerLifecycle, SpectralExpansionSolver, SystemConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 10 servers, Poisson arrivals at rate 8 jobs per unit time, unit service rate, and
    // the breakdown/repair behaviour fitted to the Sun Microsystems trace in the paper.
    let config = SystemConfig::new(10, 8.0, 1.0, ServerLifecycle::paper_fitted()?)?;

    println!("System configuration");
    println!("  servers                 : {}", config.servers());
    println!("  arrival rate λ          : {}", config.arrival_rate());
    println!("  offered load λ/µ        : {:.3}", config.offered_load());
    println!("  server availability     : {:.5}", config.lifecycle().availability());
    println!("  effective servers       : {:.3}", config.effective_servers());
    println!("  utilisation ρ           : {:.3}", config.utilisation());
    println!("  operational modes s     : {}", config.environment_states());
    println!();

    let exact = SpectralExpansionSolver::default().solve(&config)?;
    println!("Exact solution (spectral expansion)");
    println!("  mean jobs in system L   : {:.4}", exact.mean_queue_length());
    println!("  mean response time  W   : {:.4}", exact.mean_response_time());
    println!("  P(system empty)         : {:.6}", exact.empty_probability());
    println!("  P(more than 30 jobs)    : {:.6}", exact.tail_probability(30));
    println!();

    let approx = GeometricApproximation::default().solve(&config)?;
    println!("Geometric approximation (heavy traffic)");
    println!("  mean jobs in system L   : {:.4}", approx.mean_queue_length());
    println!("  mean response time  W   : {:.4}", approx.mean_response_time());
    println!();

    println!("Queue length distribution (first 12 levels, exact):");
    for (level, p) in exact.queue_length_distribution(11).iter().enumerate() {
        println!("  P(Z = {level:>2}) = {p:.6}");
    }
    Ok(())
}
