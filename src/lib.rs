//! # unreliable-servers
//!
//! A reproduction of Palmer & Mitrani, *Empirical and Analytical Evaluation of Systems
//! with Multiple Unreliable Servers* (DSN 2006 / Newcastle CS-TR-936), packaged as a
//! set of reusable Rust crates.
//!
//! The workspace models service-provisioning clusters whose servers alternate between
//! operative and inoperative periods.  It contains:
//!
//! * [`core`] (`urs-core`) — the paper's analytical contribution: the Markov-modulated
//!   multi-server queue with breakdowns and repairs, solved exactly by spectral
//!   expansion and approximately by the heavy-traffic geometric approximation, plus
//!   matrix-geometric and truncated-chain cross-checks, cost optimisation, capacity
//!   planning, cost-aware fleet-mix search over heterogeneous server classes, and the
//!   certified response-time *distribution* (dual Laplace-transform inversion) the
//!   paper leaves as an open problem;
//! * [`dist`] (`urs-dist`) — exponential/hyperexponential/Erlang/deterministic
//!   distributions, empirical statistics, Kolmogorov–Smirnov testing and
//!   hyperexponential fitting;
//! * [`sim`] (`urs-sim`) — a discrete-event simulator of the same system with arbitrary
//!   period distributions;
//! * [`data`] (`urs-data`) — synthetic Sun-like breakdown traces and the Section-2
//!   empirical analysis pipeline;
//! * [`linalg`] (`urs-linalg`) — the dense real/complex linear algebra and eigenvalue
//!   machinery everything else is built on.
//!
//! Parameter sweeps and simulation replications run in parallel by default on
//! [`core::ThreadPool`] (scoped threads, deterministic result order — set
//! `URS_THREADS=1` to force the serial path), and [`core::SolverCache`] lets repeated
//! or λ-only-varying solves reuse the expensive spectral factorisation state; both are
//! bit-identity-preserving.  See the README's "Performance" section.
//!
//! This umbrella crate simply re-exports the sub-crates under convenient names so that
//! an application can depend on a single crate:
//!
//! ```
//! use unreliable_servers::core::{QueueSolver, ServerLifecycle, SpectralExpansionSolver, SystemConfig};
//!
//! # fn main() -> Result<(), unreliable_servers::core::ModelError> {
//! let config = SystemConfig::new(10, 8.0, 1.0, ServerLifecycle::paper_fitted()?)?;
//! let solution = SpectralExpansionSolver::default().solve(&config)?;
//! assert!(solution.mean_response_time() > 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! The runnable examples in `examples/` and the experiment binaries in `crates/bench`
//! reproduce every figure of the paper; see `EXPERIMENTS.md` at the repository root.

#![deny(missing_docs)]

pub use urs_core as core;
pub use urs_data as data;
pub use urs_dist as dist;
pub use urs_linalg as linalg;
pub use urs_sim as sim;
