//! Offline stand-in for the parts of the [`rand`](https://crates.io/crates/rand)
//! crate used by this workspace.
//!
//! The build environment has no access to the crates.io registry, so this crate
//! provides a small, API-compatible subset: the [`RngCore`] and [`SeedableRng`]
//! traits and a deterministic [`rngs::StdRng`] built on xoshiro256++ seeded via
//! SplitMix64.  The streams are of high statistical quality (xoshiro256++ passes
//! BigCrush) but are *not* the same streams as the upstream `rand` crate, and the
//! generator is not cryptographically secure.

#![deny(missing_docs)]

/// The core trait every random-number generator implements.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The upstream crate derives the full seed through SplitMix64; this
    /// implementation does the same, so equal seeds always give equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step used for seeding (Steele, Lea & Flood 2014).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna 2019).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bits_look_uniform() {
        // Crude sanity check: the average of many u64 samples scaled to [0,1)
        // must be close to 1/2, and all four 16-bit lanes must vary.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 =
            (0..n).map(|_| rng.next_u64() as f64 / u64::MAX as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
