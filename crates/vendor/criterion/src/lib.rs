//! Offline stand-in for the parts of the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking harness used by this workspace.
//!
//! The build environment has no access to the crates.io registry, so this crate
//! implements the subset of the Criterion API that the `urs-bench` benchmarks use:
//! [`Criterion::bench_function`], benchmark groups with [`BenchmarkGroup::sample_size`]
//! and [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.  Timing is a simple wall-clock
//! measurement: each benchmark is warmed up once and then run for a bounded number of
//! iterations, reporting the mean time per iteration.  There is no statistical
//! analysis, plotting or state persistence.
//!
//! Like upstream Criterion, positional command-line arguments act as substring
//! filters on the benchmark name — `cargo bench -p urs-bench --bench solver_scaling
//! -- kernels sweeps` runs only the `kernels` and `sweeps` groups (the CI bench-smoke
//! step relies on this).

#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Upper bound on the measurement time spent per benchmark.
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(500);

/// Prevents the compiler from optimising away a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Timing loop handed to every benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
    /// In test mode (`--test`) the routine runs exactly once, untimed.
    test_mode: bool,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up round, also used to size the measurement loop.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        let iterations = if once.is_zero() {
            1000
        } else {
            (MEASUREMENT_BUDGET.as_nanos() / once.as_nanos().max(1)).clamp(1, 1000) as u64
        };
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("{name:<60} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iterations as f64;
        println!("{name:<60} {:>12.3} µs/iter ({} iterations)", per_iter * 1e6, self.iterations);
    }
}

/// Identifier of a parameterised benchmark, e.g. `solver/spectral_expansion/10`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (accepted for API compatibility; the stub's
    /// measurement loop is sized by wall-clock budget instead).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, |b| routine(b, input));
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    /// When true (set by `--test`, as passed by `cargo test`), run each
    /// benchmark body once without timing, as upstream Criterion does.
    test_mode: bool,
    /// Positional-argument substring filters; a benchmark runs when any filter
    /// matches its full name (or when no filter was given), mirroring upstream.
    filters: Vec<String>,
}

impl Criterion {
    fn from_args() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if arg == "--bench" || arg.starts_with('-') {
                // Harness flags (`--bench`, `--nocapture`, …) are not filters.
            } else {
                filters.push(arg);
            }
        }
        Criterion { test_mode, filters }
    }

    fn matches_filter(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: F) {
        if !self.matches_filter(name) {
            return;
        }
        let mut bencher = Bencher { test_mode: self.test_mode, ..Bencher::default() };
        routine(&mut bencher);
        if self.test_mode {
            println!("{name:<60} ok (test mode)");
        } else {
            bencher.report(name);
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        self.run_one(name, routine);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// Declares a function that runs a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::__from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` running one or more benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

impl Criterion {
    /// Implementation detail of [`criterion_group!`].
    #[doc(hidden)]
    pub fn __from_args() -> Self {
        Criterion::from_args()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut runs = 0u64;
        Criterion::default().bench_function("noop", |b| {
            b.iter(|| runs += 1);
        });
        assert!(runs > 0);
    }

    #[test]
    fn test_mode_runs_the_routine_exactly_once() {
        let mut runs = 0u64;
        let mut criterion = Criterion { test_mode: true, filters: Vec::new() };
        criterion.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn filters_select_benchmarks_by_substring() {
        let mut runs = 0u64;
        let mut c = Criterion { test_mode: true, filters: vec!["kernels".into()] };
        c.bench_function("kernels/gemm/64", |b| b.iter(|| runs += 1));
        c.bench_function("solvers/spectral/32", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "only the matching benchmark must run");
        let mut unfiltered = Criterion { test_mode: true, filters: Vec::new() };
        unfiltered.bench_function("anything", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 2, "no filters means every benchmark runs");
    }

    #[test]
    fn groups_and_ids_compose_names() {
        let id = BenchmarkId::new("solver", 10);
        assert_eq!(id.to_string(), "solver/10");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
    }
}
