//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec()`]: a fixed length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { min: len, max_exclusive: len + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(
            range.start < range.end,
            "invalid use of empty range {}..{}",
            range.start,
            range.end
        );
        SizeRange { min: range.start, max_exclusive: range.end }
    }
}

/// Strategy generating vectors whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_length_vectors() {
        let mut rng = TestRng::from_name("vec_fixed");
        let strategy = vec(0.0_f64..1.0, 25);
        let v = strategy.new_value(&mut rng);
        assert_eq!(v.len(), 25);
        assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    #[should_panic(expected = "invalid use of empty range")]
    fn empty_length_range_panics() {
        let _ = vec(0_u32..10, 4..4);
    }

    #[test]
    fn ranged_length_vectors() {
        let mut rng = TestRng::from_name("vec_ranged");
        let strategy = vec(0_u32..10, 2..6);
        for _ in 0..200 {
            let v = strategy.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
