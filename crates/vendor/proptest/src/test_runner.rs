//! Test-runner types: configuration, per-test RNG and case outcomes.

/// Configuration of a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Returns the default configuration with the number of cases overridden.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this offline subset uses a smaller default so
        // that numerically heavy property tests stay fast.  Tests that care pass an
        // explicit `ProptestConfig::with_cases(n)`.
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of a single generated case, produced by the assertion macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's precondition failed (`prop_assume!`); retry with fresh inputs.
    Reject,
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

/// Deterministic per-test random stream (xoshiro256++, seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates the stream for a named test.  Equal names give equal streams, so
    /// every run of the suite exercises the same cases.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a hash of the name selects the seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = hash;
        let mut s = [0u64; 4];
        for slot in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded generation (Lemire); the slight modulo bias of the
        // plain approach is irrelevant for test-case generation anyway.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_streams_are_deterministic_and_distinct() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_f64_stays_in_range() {
        let mut rng = TestRng::from_name("range");
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_name("below");
        for bound in [1u64, 2, 7, 100] {
            for _ in 0..1000 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }
}
