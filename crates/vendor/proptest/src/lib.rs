//! Offline stand-in for the parts of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate used by this workspace.
//!
//! The build environment has no access to the crates.io registry, so this crate
//! implements the subset of the proptest API the workspace's property tests rely on:
//!
//! * the [`Strategy`](strategy::Strategy) trait with
//!   [`prop_map`](strategy::Strategy::prop_map), implemented for numeric ranges and
//!   tuples of strategies;
//! * [`collection::vec`] for fixed-length vectors;
//! * the [`proptest!`] item macro with `#![proptest_config(...)]` support and the
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`] macros;
//! * [`ProptestConfig`](test_runner::ProptestConfig) with
//!   [`with_cases`](test_runner::ProptestConfig::with_cases).
//!
//! Differences from upstream: values are generated from a deterministic per-test
//! xoshiro-style stream (seeded from the test name), there is **no shrinking**, and
//! rejected cases (`prop_assume!`) simply retry up to a bounded number of attempts.

#![deny(missing_docs)]

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the upstream `prop` module namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]` attribute followed by any
/// number of `#[test] fn name(arg in strategy, ...) { body }` items.  Each generated
/// test runs the body for `config.cases` generated inputs; `prop_assume!` rejections
/// retry with fresh inputs (up to 20× the case count).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands one test item and recurses.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(20);
            while accepted < config.cases {
                if attempts >= max_attempts {
                    panic!(
                        "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases
                    );
                }
                attempts += 1;
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        panic!(
                            "proptest '{}' failed on case {}: {}",
                            stringify!($name), accepted + 1, message
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Fails the current property-test case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property-test case when the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current property-test case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case (it is retried with fresh inputs) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
