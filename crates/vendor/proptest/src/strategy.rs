//! The [`Strategy`] trait and its implementations for ranges and tuples.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of some type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a strategy simply
/// draws a fresh value from the per-test random stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.new_value(rng))
    }
}

/// Strategy for a constant value (mirrors `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start < self.end,
            "invalid use of empty range {:?}..{:?}",
            self.start,
            self.end
        );
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start() <= self.end(),
            "invalid use of empty range {:?}..={:?}",
            self.start(),
            self.end()
        );
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! integer_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "invalid use of empty range {}..{}", self.start, self.end
                );
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start() <= self.end(),
                    "invalid use of empty range {}..={}", self.start(), self.end()
                );
                let span = (*self.end() - *self.start()) as u64;
                if span == u64::MAX {
                    // Full 64-bit domain: `span + 1` would overflow.
                    return rng.next_u64() as $t;
                }
                *self.start() + rng.below(span + 1) as $t
            }
        }
    )+};
}

integer_range_strategies!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("float_ranges");
        let strategy = -1.5_f64..2.5;
        for _ in 0..1000 {
            let v = strategy.new_value(&mut rng);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = TestRng::from_name("int_ranges");
        let strategy = 1_usize..=5;
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = strategy.new_value(&mut rng);
            assert!((1..=5).contains(&v));
            seen[v] = true;
        }
        assert!(seen[1..=5].iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "invalid use of empty range")]
    fn empty_integer_range_panics() {
        let mut rng = TestRng::from_name("empty_int");
        let _ = (3_usize..3).new_value(&mut rng);
    }

    #[test]
    #[should_panic(expected = "invalid use of empty range")]
    fn empty_float_range_panics() {
        let mut rng = TestRng::from_name("empty_float");
        let _ = (1.0_f64..1.0).new_value(&mut rng);
    }

    #[test]
    fn full_u64_domain_does_not_overflow() {
        let mut rng = TestRng::from_name("full_domain");
        for _ in 0..100 {
            let _ = (0_u64..=u64::MAX).new_value(&mut rng);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::from_name("compose");
        let strategy = (0.0_f64..1.0, 1_u32..10).prop_map(|(x, n)| x * n as f64);
        for _ in 0..100 {
            let v = strategy.new_value(&mut rng);
            assert!((0.0..10.0).contains(&v));
        }
    }
}
