//! Fixture-driven end-to-end tests: each rule family has a fixture file under
//! `fixtures/` with known findings at known lines; the analyzer must report
//! exactly those `(rule, line)` pairs — no more, no fewer.

use urs_analyze::{analyze_source, FileKind, Rule};

fn findings(fixture: &str) -> Vec<(Rule, u32)> {
    let path = format!("{}/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap();
    analyze_source(FileKind::Lib, &source).into_iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn no_panic_fixture() {
    // The unwrap inside #[cfg(test)], the doc-comment mention, the string
    // literal mention, and the waived unwrap must all stay silent.
    assert_eq!(
        findings("no_panic.rs"),
        vec![
            (Rule::NoPanic, 4),
            (Rule::NoPanic, 5),
            (Rule::NoPanic, 7),
            (Rule::NoPanic, 10),
            (Rule::SliceIndex, 12),
        ]
    );
}

#[test]
fn float_cmp_fixture() {
    // The chained `.unwrap()` legitimately fires both rules: one `total_cmp`
    // rewrite clears both findings.
    assert_eq!(
        findings("float_cmp.rs"),
        vec![
            (Rule::FloatCmp, 3),
            (Rule::FloatCmp, 4),
            (Rule::NoPanic, 5),
            (Rule::PartialCmpUnwrap, 5),
        ]
    );
}

#[test]
fn determinism_fixture() {
    assert_eq!(
        findings("determinism.rs"),
        vec![
            (Rule::HashCollection, 2),
            (Rule::HashCollection, 3),
            (Rule::WallClock, 4),
            (Rule::HashCollection, 7),
            (Rule::HashCollection, 7),
            (Rule::WallClock, 8),
            (Rule::WallClock, 9),
            (Rule::HashCollection, 10),
            (Rule::HashCollection, 10),
        ]
    );
}

#[test]
fn no_alloc_fixture() {
    // Allocations outside the fence stay silent; the reasonless waiver is
    // itself a finding and waives nothing.
    assert_eq!(
        findings("no_alloc.rs"),
        vec![
            (Rule::NoAlloc, 6),
            (Rule::NoAlloc, 7),
            (Rule::NoAlloc, 8),
            (Rule::BadDirective, 16),
            (Rule::NoPanic, 18),
        ]
    );
}

#[test]
fn bin_files_skip_the_panic_family_only() {
    let path = format!("{}/fixtures/no_panic.rs", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap();
    let bin: Vec<(Rule, u32)> =
        analyze_source(FileKind::Bin, &source).into_iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(bin, vec![]);
}
