//! Meta-test: the real workspace must pass the gate with the checked-in
//! baseline.  This is what keeps `cargo test` and `cargo run -p urs-analyze`
//! telling the same story — a finding introduced without updating the baseline
//! fails both.

use std::path::Path;

use urs_analyze::{analyze_workspace, check, Baseline};

#[test]
fn workspace_is_clean_under_the_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let findings = analyze_workspace(root).expect("workspace sources must be readable");
    let baseline_text = std::fs::read_to_string(root.join("analyze-baseline.toml"))
        .expect("analyze-baseline.toml must be checked in at the workspace root");
    let baseline = Baseline::parse(&baseline_text).expect("baseline must parse");
    let report = check(&findings, &baseline);
    let mut complaints = String::new();
    for (file, rule, allowance, group) in &report.over_budget {
        complaints.push_str(&format!(
            "\n{file} [{}]: {} finding(s) over budget {allowance}:",
            rule.id(),
            group.len()
        ));
        for f in group {
            complaints.push_str(&format!("\n  {}", f.display()));
        }
    }
    for (file, rule) in &report.unknown_rules {
        complaints.push_str(&format!("\nbaseline names unknown rule `{rule}` for {file}"));
    }
    assert!(report.passed(), "urs-analyze gate failed:{complaints}");
}

#[test]
fn baseline_reasons_are_filled_in() {
    // Every baseline entry must carry a real reason — the ratchet documents
    // why debt is tolerated, not just that it is.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    let baseline_text = std::fs::read_to_string(root.join("analyze-baseline.toml")).unwrap();
    let baseline = Baseline::parse(&baseline_text).unwrap();
    for entry in baseline.entries() {
        assert!(
            !entry.reason.trim().is_empty(),
            "baseline entry {} [{}] has no reason",
            entry.file,
            entry.rule
        );
    }
}
