// Fixture for the no-panic family (`no_panic`, `slice_index`).  Lines matter:
// the integration test asserts (rule, line) pairs against this file.
pub fn flagged(v: Vec<i32>, o: Option<i32>) -> i32 {
    let a = o.unwrap(); // line 4: no_panic
    let b = o.expect("present"); // line 5: no_panic
    if v.is_empty() {
        panic!("boom"); // line 7: no_panic
    }
    if a > b {
        unreachable!("ordering"); // line 10: no_panic
    }
    v[0] + a // line 12: slice_index
}

pub fn waived(o: Option<i32>) -> i32 {
    // urs-analyze: allow(no_panic, reason = "checked by caller")
    o.unwrap()
}

/// Doc comments never fire: `x.unwrap()` and `panic!` stay prose.
pub fn doc_mentions_only() {}

pub fn string_mentions_only() -> &'static str {
    "call .unwrap() or panic! here and nothing fires"
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v: Vec<i32> = vec![1];
        assert_eq!(v[0], Some(1).unwrap()); // exempt: inside #[cfg(test)]
    }
}
