// Fixture for the determinism family (`hash_collection`, `wall_clock`).
use std::collections::HashMap; // line 2: hash_collection
use std::collections::HashSet; // line 3: hash_collection
use std::time::Instant; // line 4: wall_clock

pub fn flagged() -> usize {
    let m: HashMap<u32, u32> = HashMap::new(); // line 7: hash_collection x2
    let start = Instant::now(); // line 8: wall_clock
    let t = std::time::SystemTime::now(); // line 9: wall_clock
    let s: HashSet<u32> = HashSet::new(); // line 10: hash_collection x2
    let _ = (start, t);
    m.len() + s.len()
}

pub fn clean() -> usize {
    let m: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
    m.len()
}

pub fn waived() -> usize {
    // urs-analyze: allow(hash_collection, reason = "membership only, never iterated")
    let s: HashSet<u32> = HashSet::new();
    s.len()
}
