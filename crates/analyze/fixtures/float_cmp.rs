// Fixture for the float-discipline family (`float_cmp`, `partial_cmp_unwrap`).
pub fn flagged(a: f64, b: f64, xs: &mut [f64]) -> bool {
    let eq = 0.25 == b; // line 3: float_cmp (literal on the left)
    let ne = a != 0.0; // line 4: float_cmp
    xs.sort_by(|x, y| x.partial_cmp(y).unwrap()); // line 5: partial_cmp_unwrap (+ no_panic)
    eq && ne
}

pub fn clean(a: f64, b: f64, xs: &mut [f64]) -> bool {
    let eq = a.to_bits() == b.to_bits();
    let lt = a < b; // ordering comparisons are fine
    xs.sort_by(f64::total_cmp);
    let ints = 1_u64 == 2; // integer equality is fine
    eq && lt && ints
}

pub fn waived(a: f64) -> bool {
    // urs-analyze: allow(float_cmp, reason = "exact-zero guard")
    a == 0.0
}
