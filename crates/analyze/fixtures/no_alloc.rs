// Fixture for the `no_alloc` fences and the `bad_directive` rule.
pub fn kernel(c: &mut [f64], a: &[f64]) {
    let setup = a.to_vec(); // outside the fence: fine
    // urs-analyze: begin(no_alloc)
    for (x, &v) in c.iter_mut().zip(a) {
        let tmp = vec![v; 4]; // line 6: no_alloc (vec! macro)
        let copied = setup.clone(); // line 7: no_alloc (clone)
        let grown = Vec::<f64>::new(); // line 8: no_alloc (Vec type)
        *x += v + tmp.len() as f64 + copied.len() as f64 + grown.len() as f64;
    }
    // urs-analyze: end(no_alloc)
    let teardown = a.to_vec(); // outside again: fine
    let _ = teardown;
}

// urs-analyze: allow(no_panic) <- missing reason: line 16: bad_directive
pub fn reasonless(o: Option<i32>) -> i32 {
    o.unwrap() // line 18: no_panic (the malformed waiver waives nothing)
}
