//! A small hand-rolled Rust lexer — just enough syntax awareness for the rule
//! engine: it distinguishes code from string/char literals and comments, merges
//! multi-character operators (so `==` is one token, distinct from the `=` of
//! `<=`), classifies numeric literals as float or integer, and records the line
//! of every token.
//!
//! It is deliberately *not* a full Rust lexer: shebangs, frontmatter and a few
//! pathological literal forms (`1.` without a following digit, C-string
//! literals) are lexed approximately.  The rules that consume this stream are
//! heuristics over idiomatic code, and every real finding carries a file:line
//! the reviewer can check.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, `r#async`, …).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Floating-point literal (`0.5`, `1e-9`, `2f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) or loop label (`'outer`).
    Lifetime,
    /// `//` comment, including doc comments (`///`, `//!`); text retained so
    /// waiver/fence directives can be parsed out of it.
    LineComment,
    /// `/* … */` comment (nesting handled), including block doc comments.
    BlockComment,
    /// Punctuation / operator, possibly multi-character (`==`, `::`, `->`).
    Punct,
}

/// One lexed token: kind, the source text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True for tokens the rules treat as code (not comments).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

/// Lexes `source` into a token stream.  The lexer never fails: unterminated
/// literals simply run to end of file (the compiler will reject such a file
/// anyway; the analyzer only sees code that builds).
pub fn lex(source: &str) -> Vec<Token> {
    let mut lexer = Lexer { src: source.as_bytes(), pos: 0, line: 1, tokens: Vec::new() };
    lexer.run();
    lexer.tokens
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.src.get(self.pos..).is_some_and(|rest| rest.starts_with(prefix.as_bytes()))
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text = String::from_utf8_lossy(self.src.get(start..self.pos).unwrap_or(&[])).into();
        self.tokens.push(Token { kind, text, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.emit(TokenKind::BlockComment, start, line);
                }
                b'"' => {
                    self.string_literal();
                    self.emit(TokenKind::Str, start, line);
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    self.emit(kind, start, line);
                }
                b'r' | b'b' if self.raw_or_byte_literal(start, line) => {}
                _ if is_ident_start(c) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line);
                }
                _ if c.is_ascii_digit() => {
                    let kind = self.number();
                    self.emit(kind, start, line);
                }
                _ => {
                    let op_len =
                        OPERATORS.iter().find(|op| self.starts_with(op)).map_or(1, |op| op.len());
                    self.bump_n(op_len);
                    self.emit(TokenKind::Punct, start, line);
                }
            }
        }
    }

    /// Consumes a (nesting) block comment starting at `/*`.
    fn block_comment(&mut self) {
        self.bump_n(2);
        let mut depth = 1usize;
        while depth > 0 {
            if self.starts_with("/*") {
                depth += 1;
                self.bump_n(2);
            } else if self.starts_with("*/") {
                depth -= 1;
                self.bump_n(2);
            } else if self.peek(0).is_some() {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consumes a `"…"` literal starting at the opening quote.
    fn string_literal(&mut self) {
        self.bump();
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw string starting at `r`/`r#…#"`, a byte string at `b"`,
    /// `br#"`, or a raw identifier `r#ident`.  Returns false (consuming
    /// nothing) if the `r`/`b` is just the start of a plain identifier.
    fn raw_or_byte_literal(&mut self, start: usize, line: u32) -> bool {
        let mut probe = self.pos + 1;
        if self.peek(0) == Some(b'b') && self.src.get(probe) == Some(&b'r') {
            probe += 1;
        }
        let mut hashes = 0usize;
        while self.src.get(probe) == Some(&b'#') {
            hashes += 1;
            probe += 1;
        }
        match self.src.get(probe) {
            Some(b'"') => {
                // Raw/byte string: consume up to `"` then scan for `"` + hashes.
                self.bump_n(probe + 1 - self.pos);
                loop {
                    match self.peek(0) {
                        Some(b'"') => {
                            self.bump();
                            if (0..hashes).all(|i| self.peek(i) == Some(b'#')) {
                                self.bump_n(hashes);
                                break;
                            }
                        }
                        Some(b'\\') if hashes == 0 && self.src.get(start) == Some(&b'b') => {
                            self.bump_n(2)
                        }
                        Some(_) => self.bump(),
                        None => break,
                    }
                }
                self.emit(TokenKind::Str, start, line);
                true
            }
            Some(b'\'') if self.peek(0) == Some(b'b') && hashes == 0 => {
                // Byte literal b'x'.
                self.bump();
                self.char_or_lifetime();
                self.emit(TokenKind::Char, start, line);
                true
            }
            Some(&c) if hashes == 1 && is_ident_start(c) && self.peek(0) == Some(b'r') => {
                // Raw identifier r#ident.
                self.bump_n(2);
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.emit(TokenKind::Ident, start, line);
                true
            }
            _ => false,
        }
    }

    /// Consumes `'…` as either a char literal or a lifetime/label.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump();
        match self.peek(0) {
            Some(b'\\') => {
                self.bump_n(2);
                while self.peek(0).is_some_and(|c| c != b'\'') {
                    self.bump();
                }
                self.bump();
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) => {
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                    TokenKind::Char
                } else {
                    TokenKind::Lifetime
                }
            }
            Some(_) => {
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            None => TokenKind::Char,
        }
    }

    /// Consumes a numeric literal; classifies float vs integer.
    fn number(&mut self) -> TokenKind {
        let mut is_float = false;
        if self.starts_with("0x") || self.starts_with("0o") || self.starts_with("0b") {
            self.bump_n(2);
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                self.bump();
            }
            return TokenKind::Int;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            self.bump();
        }
        // A `.` joins the number only when followed by a digit: `0.5` is a
        // float, `1..n` is a range and `t.0` is tuple indexing.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                self.bump();
            }
        }
        // Exponent: `1e9`, `2.5E-3` (but not the `e` of a suffix like `1e` in
        // an identifier position — require a digit or sign+digit after it).
        if matches!(self.peek(0), Some(b'e') | Some(b'E')) {
            let (sign, first_digit) = match self.peek(1) {
                Some(b'+') | Some(b'-') => (1, self.peek(2)),
                other => (0, other),
            };
            if first_digit.is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.bump_n(1 + sign);
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                    self.bump();
                }
            }
        }
        // Type suffix (`u32`, `f64`, …) decides floatness when explicit.
        let suffix_start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let suffix = self.src.get(suffix_start..self.pos).unwrap_or(&[]);
        if suffix == b"f32" || suffix == b"f64" {
            is_float = true;
        }
        if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn operators_merge_greedily() {
        let toks = kinds("a == b != c <= d => e -> f::g");
        let puncts: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Punct).map(|(_, t)| t.as_str()).collect();
        assert_eq!(puncts, vec!["==", "!=", "<=", "=>", "->", "::"]);
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = kinds("let s = \"x.unwrap()\"; // y.unwrap()\n/* z.unwrap() */");
        assert!(toks.iter().all(|(k, t)| *k != TokenKind::Ident || !t.contains("unwrap")));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::LineComment).count(), 1);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::BlockComment).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"embedded "quote" and unwrap()"#; x"###);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let toks = kinds("0.5 1e-9 2f64 42 0xff 1..n t.0");
        let floats: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Float).map(|(_, t)| t.as_str()).collect();
        assert_eq!(floats, vec!["0.5", "1e-9", "2f64"]);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Punct && t == ".."));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "code");
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
