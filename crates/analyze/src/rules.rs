//! The domain lints: the no-panic, float-discipline, determinism and
//! no-allocation contracts, expressed as scans over the [`lexer`](crate::lexer)
//! token stream.
//!
//! Four rule *families* map to seven rule IDs (finer IDs make waivers and the
//! baseline precise):
//!
//! | family           | rule id              | fires on                                        |
//! |------------------|----------------------|-------------------------------------------------|
//! | no-panic         | `no_panic`           | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | no-panic         | `slice_index`        | `expr[…]` indexing (panics out of bounds; use `.get`) |
//! | float-discipline | `float_cmp`          | `==`/`!=` with a float-literal or float-constant operand |
//! | float-discipline | `partial_cmp_unwrap` | `.partial_cmp(…).unwrap()` / `.expect(` (NaN panics; use `total_cmp`) |
//! | determinism      | `hash_collection`    | `HashMap`/`HashSet` (iteration order is seeded per instance) |
//! | determinism      | `wall_clock`         | `Instant`/`SystemTime` outside bench code       |
//! | no-alloc         | `no_alloc`           | allocating calls inside a `begin(no_alloc)`/`end(no_alloc)` fence |
//!
//! Scope control:
//! * `#[cfg(test)]` items are exempt from every rule;
//! * `// urs-analyze: allow(<rule>, reason = "…")` waives findings of that rule
//!   on the same line and the next code line (the reason is mandatory —
//!   a reasonless or malformed directive is itself a `bad_directive` finding);
//! * `// urs-analyze: begin(no_alloc)` / `end(no_alloc)` fence the regions the
//!   `no_alloc` rule patrols; unbalanced fences are findings.

use std::fmt;

use crate::lexer::{lex, Token, TokenKind};

/// The rule IDs (see the module table).  `BadDirective` covers malformed
/// `urs-analyze:` comments — a silently ignored waiver would be worse than a
/// panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    NoPanic,
    SliceIndex,
    FloatCmp,
    PartialCmpUnwrap,
    HashCollection,
    WallClock,
    NoAlloc,
    BadDirective,
}

/// All rules a waiver may name, in display order.
pub const ALL_RULES: &[Rule] = &[
    Rule::NoPanic,
    Rule::SliceIndex,
    Rule::FloatCmp,
    Rule::PartialCmpUnwrap,
    Rule::HashCollection,
    Rule::WallClock,
    Rule::NoAlloc,
    Rule::BadDirective,
];

impl Rule {
    /// The stable identifier used in diagnostics, waivers and the baseline.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "no_panic",
            Rule::SliceIndex => "slice_index",
            Rule::FloatCmp => "float_cmp",
            Rule::PartialCmpUnwrap => "partial_cmp_unwrap",
            Rule::HashCollection => "hash_collection",
            Rule::WallClock => "wall_clock",
            Rule::NoAlloc => "no_alloc",
            Rule::BadDirective => "bad_directive",
        }
    }

    /// Parses a rule ID as written in a waiver or the baseline.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How a file participates in the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: every rule applies.
    Lib,
    /// Binary source (`src/bin/*`, `src/main.rs`): the no-panic family is
    /// exempt (a CLI aborting on bad input is acceptable; a library taking the
    /// process down is not), the others still apply.
    Bin,
}

/// One diagnostic: `file` is attached by the caller ([`crate::analyze_workspace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    pub line: u32,
    pub message: String,
}

/// Analyzes one file's source text.  `kind` selects the rule set.
pub fn analyze_source(kind: FileKind, source: &str) -> Vec<Finding> {
    let tokens = lex(source);
    let exempt = cfg_test_exempt_lines(&tokens);
    let directives = parse_directives(&tokens, source);
    let mut findings = Vec::new();

    findings.extend(directives.errors.iter().cloned());
    scan_code_rules(kind, &tokens, &mut findings);
    scan_no_alloc(&tokens, &directives, &mut findings);

    findings.retain(|f| {
        !exempt.get(f.line as usize - 1).copied().unwrap_or(false) && !directives.waives(f)
    });
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

// ---------------------------------------------------------------------------
// cfg(test) exemption
// ---------------------------------------------------------------------------

/// Returns a per-line bitmap of regions covered by a `#[cfg(test)]` item (the
/// attribute through the matching `}` of the item's first brace, or through the
/// terminating `;` for brace-less items like `#[cfg(test)] use …;`).
fn cfg_test_exempt_lines(tokens: &[Token]) -> Vec<bool> {
    let last_line = tokens.last().map_or(0, |t| t.line) as usize;
    let mut exempt = vec![false; last_line];
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let mut i = 0;
    while i < code.len() {
        if let Some((attr_end, is_test)) = parse_attribute(&code, i) {
            if is_test {
                let start_line = code.get(i).map_or(1, |t| t.line);
                let end_line = item_end_line(&code, attr_end).unwrap_or(start_line);
                for line in start_line..=end_line {
                    if let Some(slot) = exempt.get_mut(line as usize - 1) {
                        *slot = true;
                    }
                }
            }
            i = attr_end;
        } else {
            i += 1;
        }
    }
    exempt
}

/// If `code[i]` starts an attribute `#[…]` or `#![…]`, returns the index one
/// past its closing `]` and whether the attribute mentions `cfg(… test …)`.
fn parse_attribute(code: &[&Token], i: usize) -> Option<(usize, bool)> {
    if code.get(i)?.text != "#" {
        return None;
    }
    let mut j = i + 1;
    if code.get(j).is_some_and(|t| t.text == "!") {
        j += 1;
    }
    if code.get(j).is_none_or(|t| t.text != "[") {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    while let Some(tok) = code.get(j) {
        match tok.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some((j + 1, saw_cfg && saw_test));
                }
            }
            // `cfg_attr(test, …)` deliberately does NOT count: it gates an
            // attribute, not the item — the code still compiles into the lib.
            "cfg" if tok.kind == TokenKind::Ident => saw_cfg = true,
            "test" if tok.kind == TokenKind::Ident => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    Some((code.len(), saw_cfg && saw_test))
}

/// The line on which the item starting at `code[start]` ends: at the `}`
/// matching its first `{`, or at the first `;` seen before any brace.
/// Intervening attributes (`#[test]` on the item itself) are skipped.
fn item_end_line(code: &[&Token], start: usize) -> Option<u32> {
    let mut depth = 0usize;
    let mut i = start;
    while let Some(tok) = code.get(i) {
        match tok.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(tok.line);
                }
            }
            ";" if depth == 0 => return Some(tok.line),
            _ => {}
        }
        i += 1;
    }
    code.last().map(|t| t.line)
}

// ---------------------------------------------------------------------------
// Directives: waivers and no_alloc fences
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Directives {
    /// `(rule, line)` pairs a waiver covers.
    waivers: Vec<(Rule, u32)>,
    /// `(begin_line, end_line)` fenced `no_alloc` intervals.
    fences: Vec<(u32, u32)>,
    /// Malformed-directive / unbalanced-fence findings.
    errors: Vec<Finding>,
}

impl Directives {
    fn waives(&self, finding: &Finding) -> bool {
        finding.rule != Rule::BadDirective
            && self.waivers.iter().any(|&(rule, line)| rule == finding.rule && line == finding.line)
    }
}

const DIRECTIVE_TAG: &str = "urs-analyze:";

/// Parses every `// urs-analyze: …` comment into waivers and fences.
fn parse_directives(tokens: &[Token], source: &str) -> Directives {
    let mut directives = Directives::default();
    let mut open_fence: Option<u32> = None;
    for (index, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::LineComment && token.kind != TokenKind::BlockComment {
            continue;
        }
        let body = token
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        // Doc comments (`///`, `//!`, `/** … */`) are documentation, not
        // machine directives; only plain comments can waive or fence.
        let is_doc = token.text.starts_with("///")
            || token.text.starts_with("//!")
            || token.text.starts_with("/**")
            || token.text.starts_with("/*!");
        let Some(rest) = body.strip_prefix(DIRECTIVE_TAG) else { continue };
        if is_doc {
            directives.errors.push(Finding {
                rule: Rule::BadDirective,
                line: token.line,
                message: "`urs-analyze:` directives must be plain `//` comments, not doc comments"
                    .into(),
            });
            continue;
        }
        match parse_directive_body(rest.trim()) {
            Ok(Directive::Allow(rule)) => {
                // The waiver covers its own line and the next line holding code
                // (a standalone waiver comment waives the statement below it).
                directives.waivers.push((rule, token.line));
                if let Some(next_code_line) =
                    tokens.iter().skip(index + 1).find(|t| t.is_code()).map(|t| t.line)
                {
                    directives.waivers.push((rule, next_code_line));
                }
            }
            Ok(Directive::Begin) => {
                if let Some(opened) = open_fence {
                    directives.errors.push(Finding {
                        rule: Rule::NoAlloc,
                        line: token.line,
                        message: format!(
                            "nested `begin(no_alloc)` fence (previous fence opened on line {opened} is still open)"
                        ),
                    });
                } else {
                    open_fence = Some(token.line);
                }
            }
            Ok(Directive::End) => match open_fence.take() {
                Some(begin) => directives.fences.push((begin, token.line)),
                None => directives.errors.push(Finding {
                    rule: Rule::NoAlloc,
                    line: token.line,
                    message: "`end(no_alloc)` without a matching `begin(no_alloc)`".into(),
                }),
            },
            Err(reason) => directives.errors.push(Finding {
                rule: Rule::BadDirective,
                line: token.line,
                message: format!("malformed `urs-analyze:` directive: {reason}"),
            }),
        }
    }
    if let Some(begin) = open_fence {
        let last_line = source.lines().count() as u32;
        directives.errors.push(Finding {
            rule: Rule::NoAlloc,
            line: begin,
            message: "`begin(no_alloc)` fence is never closed".into(),
        });
        // Patrol the dangling fence to end of file anyway: a missing `end`
        // must not silently disable the rule.
        directives.fences.push((begin, last_line.max(begin)));
    }
    directives
}

enum Directive {
    Allow(Rule),
    Begin,
    End,
}

/// Parses the directive body after the `urs-analyze:` tag, e.g.
/// `allow(no_panic, reason = "pool invariant")` or `begin(no_alloc)`.
fn parse_directive_body(body: &str) -> Result<Directive, String> {
    if let Some(args) = strip_call(body, "begin") {
        return match args.trim() {
            "no_alloc" => Ok(Directive::Begin),
            other => Err(format!("unknown fence `{other}` (only `no_alloc` regions exist)")),
        };
    }
    if let Some(args) = strip_call(body, "end") {
        return match args.trim() {
            "no_alloc" => Ok(Directive::End),
            other => Err(format!("unknown fence `{other}` (only `no_alloc` regions exist)")),
        };
    }
    if let Some(args) = strip_call(body, "allow") {
        let (rule_id, rest) = args
            .split_once(',')
            .ok_or_else(|| "allow(...) requires `, reason = \"...\"`".to_string())?;
        let rule = Rule::from_id(rule_id.trim())
            .ok_or_else(|| format!("unknown rule `{}`", rule_id.trim()))?;
        let reason = rest
            .trim()
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim)
            .ok_or_else(|| "allow(...) requires `, reason = \"...\"`".to_string())?;
        let quoted = reason.len() >= 2 && reason.starts_with('"') && reason.ends_with('"');
        if !quoted || reason.len() == 2 {
            return Err("the waiver reason must be a non-empty quoted string".to_string());
        }
        return Ok(Directive::Allow(rule));
    }
    Err("expected `allow(rule, reason = \"...\")`, `begin(no_alloc)` or `end(no_alloc)`".into())
}

/// Returns the argument text of `name( … )` if `body` is exactly such a call.
fn strip_call<'a>(body: &'a str, name: &str) -> Option<&'a str> {
    body.strip_prefix(name)
        .map(str::trim_start)
        .and_then(|rest| rest.strip_prefix('('))
        .and_then(|rest| rest.trim_end().strip_suffix(')'))
}

// ---------------------------------------------------------------------------
// Token-stream rules
// ---------------------------------------------------------------------------

/// Identifiers that read like code but are keywords: indexing after these is a
/// pattern or expression position, not a slicing operation.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const FLOAT_CONSTS: &[&str] = &["NAN", "INFINITY", "NEG_INFINITY", "EPSILON"];

/// Runs the pointwise rules (everything except `no_alloc`) over the code tokens.
fn scan_code_rules(kind: FileKind, tokens: &[Token], findings: &mut Vec<Finding>) {
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let text = |i: usize| code.get(i).map(|t| t.text.as_str());

    for (i, &tok) in code.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(text);
        match (tok.kind, tok.text.as_str()) {
            // --- no-panic family -------------------------------------------
            (TokenKind::Ident, "unwrap" | "expect")
                if kind == FileKind::Lib && prev == Some(".") =>
            {
                findings.push(Finding {
                    rule: Rule::NoPanic,
                    line: tok.line,
                    message: format!(
                        "`.{}(…)` can panic in library code; return a Result (or waive with a reason)",
                        tok.text
                    ),
                });
            }
            (TokenKind::Ident, name)
                if kind == FileKind::Lib
                    && PANIC_MACROS.contains(&name)
                    && text(i + 1) == Some("!") =>
            {
                findings.push(Finding {
                    rule: Rule::NoPanic,
                    line: tok.line,
                    message: format!("`{name}!` aborts the caller; return an error instead"),
                });
            }
            (TokenKind::Punct, "[")
                if kind == FileKind::Lib
                    && i.checked_sub(1)
                        .and_then(|p| code.get(p))
                        .is_some_and(|base| is_index_base(base)) =>
            {
                findings.push(Finding {
                    rule: Rule::SliceIndex,
                    line: tok.line,
                    message: "indexing (`expr[…]`) panics out of bounds; prefer `.get(…)`".into(),
                });
            }
            // --- float-discipline ------------------------------------------
            (TokenKind::Punct, "==" | "!=")
                if float_operand_before(&code, i) || float_operand_after(&code, i) =>
            {
                findings.push(Finding {
                    rule: Rule::FloatCmp,
                    line: tok.line,
                    message: format!(
                        "`{}` on a float expression; compare via `total_cmp`, `to_bits` or an epsilon",
                        tok.text
                    ),
                });
            }
            (TokenKind::Ident, "partial_cmp") if prev == Some(".") => {
                if let Some(close) = skip_balanced(&code, i + 1, "(", ")") {
                    if text(close) == Some(".")
                        && matches!(text(close + 1), Some("unwrap") | Some("expect"))
                    {
                        findings.push(Finding {
                            rule: Rule::PartialCmpUnwrap,
                            line: tok.line,
                            message: "`partial_cmp(…).unwrap()` panics on NaN; use `total_cmp`"
                                .into(),
                        });
                    }
                }
            }
            // --- determinism -----------------------------------------------
            (TokenKind::Ident, name @ ("HashMap" | "HashSet")) => {
                let ordered = if name == "HashMap" { "BTreeMap" } else { "BTreeSet" };
                findings.push(Finding {
                    rule: Rule::HashCollection,
                    line: tok.line,
                    message: format!(
                        "`{name}` iteration order is seeded per instance; use `{ordered}` on any path that reaches results"
                    ),
                });
            }
            (TokenKind::Ident, name @ ("Instant" | "SystemTime")) => {
                findings.push(Finding {
                    rule: Rule::WallClock,
                    line: tok.line,
                    message: format!(
                        "`{name}` makes results time-dependent; only bench code may read the clock"
                    ),
                });
            }
            _ => {}
        }
    }
}

/// True when a `[` after this token is an indexing operation (as opposed to an
/// attribute, an array literal/type, a macro bang or a pattern).
fn is_index_base(prev: &Token) -> bool {
    match prev.kind {
        TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
        TokenKind::Punct => prev.text == ")" || prev.text == "]",
        _ => false,
    }
}

/// Is the operand ending just before `code[op]` a float literal or a float
/// constant path (`f64::NAN` and friends)?
fn float_operand_before(code: &[&Token], op: usize) -> bool {
    let Some(before) = op.checked_sub(1).and_then(|i| code.get(i)) else { return false };
    match before.kind {
        TokenKind::Float => true,
        TokenKind::Ident => {
            FLOAT_CONSTS.contains(&before.text.as_str())
                && op >= 3
                && code.get(op - 2).is_some_and(|t| t.text == "::")
                && code.get(op - 3).is_some_and(|t| t.text == "f64" || t.text == "f32")
        }
        _ => false,
    }
}

/// Is the operand starting just after `code[op]` a float literal or a float
/// constant path?  A single leading `-` or `(` is looked through.
fn float_operand_after(code: &[&Token], op: usize) -> bool {
    let mut i = op + 1;
    if code.get(i).is_some_and(|t| t.text == "-" || t.text == "(") {
        i += 1;
    }
    match code.get(i) {
        Some(tok) if tok.kind == TokenKind::Float => true,
        Some(tok) if tok.kind == TokenKind::Ident && (tok.text == "f64" || tok.text == "f32") => {
            code.get(i + 1).is_some_and(|t| t.text == "::")
                && code.get(i + 2).is_some_and(|t| FLOAT_CONSTS.contains(&t.text.as_str()))
        }
        _ => false,
    }
}

/// Starting at `code[start]` (which must be `open`), returns the index one past
/// the matching `close`.
fn skip_balanced(code: &[&Token], start: usize, open: &str, close: &str) -> Option<usize> {
    if code.get(start)?.text != open {
        return None;
    }
    let mut depth = 0usize;
    let mut i = start;
    while let Some(tok) = code.get(i) {
        if tok.text == open {
            depth += 1;
        } else if tok.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// no_alloc fences
// ---------------------------------------------------------------------------

/// Allocating method names (called as `.name(`).
const ALLOC_METHODS: &[&str] =
    &["clone", "to_vec", "to_owned", "to_string", "collect", "with_capacity"];
/// Owning container types whose constructors allocate (as `Type::new` etc.).
const ALLOC_TYPES: &[&str] = &["Vec", "String", "Box", "VecDeque", "BTreeMap", "BTreeSet"];
/// Allocating macros (as `name!`).
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Scans fenced regions for allocating calls.
fn scan_no_alloc(tokens: &[Token], directives: &Directives, findings: &mut Vec<Finding>) {
    if directives.fences.is_empty() {
        return;
    }
    let in_fence =
        |line: u32| directives.fences.iter().any(|&(begin, end)| line > begin && line < end);
    let code: Vec<&Token> = tokens.iter().filter(|t| t.is_code()).collect();
    let text = |i: usize| code.get(i).map(|t| t.text.as_str());
    for (i, &tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || !in_fence(tok.line) {
            continue;
        }
        let name = tok.text.as_str();
        let prev = i.checked_sub(1).and_then(text);
        let hit = if ALLOC_METHODS.contains(&name) {
            prev == Some(".") || prev == Some("::")
        } else if ALLOC_TYPES.contains(&name) {
            // `Vec::new`, with an optional turbofish: `Vec::<f64>::new`.
            let ctor = if text(i + 1) == Some("::") {
                let mut j = i + 2;
                if text(j) == Some("<") {
                    let mut depth = 1usize;
                    j += 1;
                    while depth > 0 {
                        match text(j) {
                            Some("<") => depth += 1,
                            Some(">") => depth -= 1,
                            Some(">>") => depth = depth.saturating_sub(2),
                            None => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if depth == 0 && text(j) == Some("::") {
                        Some(j + 1)
                    } else {
                        None
                    }
                } else {
                    Some(j)
                }
            } else {
                None
            };
            ctor.is_some_and(|j| {
                matches!(text(j), Some("new") | Some("with_capacity") | Some("from"))
            })
        } else if ALLOC_MACROS.contains(&name) {
            text(i + 1) == Some("!")
        } else {
            false
        };
        if hit {
            findings.push(Finding {
                rule: Rule::NoAlloc,
                line: tok.line,
                message: format!(
                    "`{name}` allocates inside a `no_alloc` fence; route scratch through `Workspace`"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<(Rule, u32)> {
        analyze_source(FileKind::Lib, src).into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn unwrap_and_expect_fire_but_unwrap_or_does_not() {
        let findings = run("fn f() {\n  a.unwrap();\n  b.expect(\"m\");\n  c.unwrap_or(0);\n  d.unwrap_or_else(|| 0);\n}\n");
        assert_eq!(findings, vec![(Rule::NoPanic, 2), (Rule::NoPanic, 3)]);
    }

    #[test]
    fn panic_macros_fire_but_debug_assert_does_not() {
        let findings =
            run("fn f() {\n  panic!(\"x\");\n  unreachable!();\n  debug_assert!(x > 0);\n}\n");
        assert_eq!(findings, vec![(Rule::NoPanic, 2), (Rule::NoPanic, 3)]);
    }

    #[test]
    fn strings_comments_and_cfg_test_are_exempt() {
        let src = r#"
fn f() { let s = "x.unwrap()"; } // a.unwrap() in a comment
/// doc: b.unwrap()
fn g() {}
#[cfg(test)]
mod tests {
    fn t() { c.unwrap(); }
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn bins_skip_the_no_panic_family_only() {
        let src = "fn main() {\n  a.unwrap();\n  b[0] = 1.0;\n  let m = HashMap::new();\n}\n";
        let findings: Vec<(Rule, u32)> =
            analyze_source(FileKind::Bin, src).into_iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(findings, vec![(Rule::HashCollection, 4)]);
    }

    #[test]
    fn slice_index_heuristics() {
        let findings = run(
            "fn f() {\n  let x = a[i];\n  b[j] = 0;\n  let [p, q] = pair;\n  let l = vec![1];\n  let arr = [0; 4];\n}\n#[derive(Debug)]\nstruct S;\n",
        );
        assert_eq!(findings, vec![(Rule::SliceIndex, 2), (Rule::SliceIndex, 3)]);
    }

    #[test]
    fn float_comparisons() {
        let findings = run(
            "fn f() {\n  if x == 0.0 {}\n  if 1e-9 != y {}\n  if x == -0.5 {}\n  if x == f64::NAN {}\n  if n == 0 {}\n  if a.to_bits() == b.to_bits() {}\n}\n",
        );
        assert_eq!(
            findings,
            vec![
                (Rule::FloatCmp, 2),
                (Rule::FloatCmp, 3),
                (Rule::FloatCmp, 4),
                (Rule::FloatCmp, 5)
            ]
        );
    }

    #[test]
    fn partial_cmp_unwrap_fires_only_when_chained() {
        // The chained `.unwrap()` is ALSO a no_panic finding: the site is both
        // a NaN ordering bug and a panic path, and `total_cmp` fixes both.
        let findings = run(
            "fn f() {\n  v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n  v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\"));\n  v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));\n  v.sort_by(|a, b| a.total_cmp(b));\n}\nimpl PartialOrd for T {\n  fn partial_cmp(&self, o: &T) -> Option<Ordering> { None }\n}\n",
        );
        assert_eq!(
            findings,
            vec![
                (Rule::NoPanic, 2),
                (Rule::PartialCmpUnwrap, 2),
                (Rule::NoPanic, 3),
                (Rule::PartialCmpUnwrap, 3)
            ]
        );
    }

    #[test]
    fn determinism_rules() {
        let findings = run(
            "use std::collections::HashMap;\nfn f() {\n  let s: HashSet<u32> = HashSet::new();\n  let t = Instant::now();\n  let b = BTreeMap::new();\n}\n",
        );
        assert_eq!(
            findings,
            vec![
                (Rule::HashCollection, 1),
                (Rule::HashCollection, 3),
                (Rule::HashCollection, 3),
                (Rule::WallClock, 4)
            ]
        );
    }

    #[test]
    fn no_alloc_fences() {
        let src = "fn f() {\n  let v = vec![0.0; 8];\n  // urs-analyze: begin(no_alloc)\n  let w = x.clone();\n  let u = Vec::new();\n  let s = y.to_vec();\n  // urs-analyze: end(no_alloc)\n  let t = z.clone();\n}\n";
        let findings = run(src);
        assert_eq!(findings, vec![(Rule::NoAlloc, 4), (Rule::NoAlloc, 5), (Rule::NoAlloc, 6)]);
    }

    #[test]
    fn unbalanced_fences_are_findings() {
        let open = run("// urs-analyze: begin(no_alloc)\nfn f() {}\n");
        assert_eq!(open, vec![(Rule::NoAlloc, 1)]);
        let close = run("fn f() {}\n// urs-analyze: end(no_alloc)\n");
        assert_eq!(close, vec![(Rule::NoAlloc, 2)]);
    }

    #[test]
    fn waivers_cover_same_line_and_next_code_line() {
        let same =
            "fn f() { a.unwrap(); } // urs-analyze: allow(no_panic, reason = \"invariant\")\n";
        assert!(run(same).is_empty());
        let above = "fn f() {\n  // urs-analyze: allow(no_panic, reason = \"invariant\")\n  a.unwrap();\n  b.unwrap();\n}\n";
        assert_eq!(run(above), vec![(Rule::NoPanic, 4)]);
    }

    #[test]
    fn waiver_without_reason_is_a_bad_directive_and_does_not_waive() {
        let src = "fn f() {\n  // urs-analyze: allow(no_panic)\n  a.unwrap();\n}\n";
        let findings = run(src);
        assert_eq!(findings, vec![(Rule::BadDirective, 2), (Rule::NoPanic, 3)]);
        let empty =
            "fn f() {\n  // urs-analyze: allow(no_panic, reason = \"\")\n  a.unwrap();\n}\n";
        assert_eq!(run(empty), vec![(Rule::BadDirective, 2), (Rule::NoPanic, 3)]);
    }

    #[test]
    fn waiver_is_rule_specific() {
        // A well-formed waiver for a different rule waives nothing.
        let src = "fn f() {\n  // urs-analyze: allow(float_cmp, reason = \"identity\")\n  a.unwrap();\n}\n";
        assert_eq!(run(src), vec![(Rule::NoPanic, 3)]);
    }

    #[test]
    fn directives_in_doc_comments_are_rejected() {
        let src = "/// urs-analyze: allow(no_panic, reason = \"nope\")\nfn f() { a.unwrap(); }\n";
        let findings = run(src);
        assert_eq!(findings, vec![(Rule::BadDirective, 1), (Rule::NoPanic, 2)]);
    }
}
