//! # urs-analyze — workspace-native static analysis
//!
//! The repository's correctness story rests on three contracts the type system
//! cannot state: library code must not panic on malformed input, results must
//! not depend on iteration order or wall-clock time, and the linalg hot loops
//! must stay allocation-free (the property PR 4's `Workspace` bought).  This
//! crate is the static gate that turns those contracts from example-tested
//! conventions into checked invariants.
//!
//! | paper / repo concern                  | enforced here by                        |
//! |---------------------------------------|-----------------------------------------|
//! | certified numbers (PR 6, PR 7)        | `float_cmp`, `partial_cmp_unwrap`, `hash_collection`, `wall_clock` |
//! | a malformed query must not kill a process (`urs-server` roadmap) | `no_panic`, `slice_index` |
//! | allocation-free kernels (PR 4)        | `no_alloc` fences in `urs-linalg`       |
//!
//! The pipeline: a hand-rolled [`lexer`] (no `syn` — the registry is offline)
//! feeds a [`rules`] engine; findings are reconciled against the checked-in
//! [`baseline`] (`analyze-baseline.toml`) so pre-existing debt is burned down
//! incrementally while anything *new* fails the gate.  Run it as
//! `cargo run -p urs-analyze`; see the README's "Static analysis" section for
//! the waiver and fence syntax.

pub mod baseline;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, BaselineEntry};
pub use rules::{analyze_source, FileKind, Finding, Rule, ALL_RULES};

/// A finding located in a workspace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFinding {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    pub finding: Finding,
}

impl FileFinding {
    /// `file:line: [rule] message` — the greppable diagnostic form.
    pub fn display(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file,
            self.finding.line,
            self.finding.rule.id(),
            self.finding.message
        )
    }
}

/// Directories under the workspace root whose `src/` trees are analyzed.
/// `crates/vendor/*` (offline API stubs of external crates) and `crates/bench`
/// (timing + printing binaries, exempt by design) are deliberately absent.
const ANALYZED_CRATE_DIRS: &[&str] = &[
    "crates/analyze",
    "crates/core",
    "crates/data",
    "crates/dist",
    "crates/linalg",
    "crates/server",
    "crates/sim",
    ".", // the root facade crate
];

/// Classifies a workspace-relative source path, or `None` if out of scope.
pub fn classify(relative: &str) -> Option<FileKind> {
    if !relative.ends_with(".rs") {
        return None;
    }
    if relative.contains("/src/bin/") || relative.ends_with("/src/main.rs") {
        return Some(FileKind::Bin);
    }
    Some(FileKind::Lib)
}

/// Walks every analyzed `src/` tree under `root` and returns all findings in
/// deterministic (file, line, rule) order.
///
/// # Errors
///
/// Propagates I/O errors; a missing expected tree (e.g. `crates/core/src`) is
/// an error rather than a silently shrunk analysis.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<FileFinding>> {
    let mut files = Vec::new();
    for crate_dir in ANALYZED_CRATE_DIRS {
        let src = root.join(crate_dir).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("expected source tree missing: {}", src.display()),
            ));
        }
        collect_rust_files(&src, &mut files)?;
    }
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let relative = relative_path(root, &path);
        let Some(kind) = classify(&relative) else { continue };
        let source = fs::read_to_string(&path)?;
        for finding in analyze_source(kind, &source) {
            findings.push(FileFinding { file: relative.clone(), finding });
        }
    }
    Ok(findings)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // `./src/lib.rs` (the root facade) normalises to `src/lib.rs`.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .filter(|c| c != ".")
        .collect::<Vec<_>>()
        .join("/")
}

/// The reconciliation of a finding set against a baseline.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Groups over their baseline budget: every finding in the group, with the
    /// budget attached (the analyzer cannot know *which* finding is the new
    /// one, so it reports the whole group for review).
    pub over_budget: Vec<(String, Rule, usize, Vec<FileFinding>)>,
    /// Baseline entries whose budget exceeds the current count — debt that was
    /// paid down; tighten the baseline with `--write-baseline`.
    pub stale: Vec<(String, String, usize, usize)>,
    /// Baseline entries naming a rule ID the analyzer does not know.
    pub unknown_rules: Vec<(String, String)>,
    /// Total findings observed (baselined ones included).
    pub total_findings: usize,
}

impl CheckReport {
    /// True when nothing blocks the gate (stale entries are advisory).
    pub fn passed(&self) -> bool {
        self.over_budget.is_empty() && self.unknown_rules.is_empty()
    }
}

/// Reconciles `findings` against `baseline`.
pub fn check(findings: &[FileFinding], baseline: &Baseline) -> CheckReport {
    let mut groups: BTreeMap<(String, Rule), Vec<FileFinding>> = BTreeMap::new();
    for finding in findings {
        groups
            .entry((finding.file.clone(), finding.finding.rule))
            .or_default()
            .push(finding.clone());
    }
    let mut report = CheckReport { total_findings: findings.len(), ..CheckReport::default() };
    for ((file, rule), group) in &groups {
        let allowance = baseline.allowance(file, rule.id());
        if group.len() > allowance {
            report.over_budget.push((file.clone(), *rule, allowance, group.clone()));
        }
    }
    for entry in baseline.entries() {
        match Rule::from_id(&entry.rule) {
            None => report.unknown_rules.push((entry.file.clone(), entry.rule.clone())),
            Some(rule) => {
                let current = groups.get(&(entry.file.clone(), rule)).map_or(0, Vec::len);
                if current < entry.count {
                    report.stale.push((entry.file, entry.rule, entry.count, current));
                }
            }
        }
    }
    report
}

/// Builds a fresh baseline from `findings`, carrying over the reasons of
/// `previous` entries that survive (same file and rule).
pub fn rebuild_baseline(findings: &[FileFinding], previous: &Baseline) -> Baseline {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for finding in findings {
        *counts
            .entry((finding.file.clone(), finding.finding.rule.id().to_string()))
            .or_default() += 1;
    }
    let mut fresh = Baseline::default();
    for ((file, rule), count) in counts {
        let reason = previous
            .entries()
            .find(|e| e.file == file && e.rule == rule)
            .map(|e| e.reason)
            .filter(|r| !r.is_empty())
            .unwrap_or_else(|| "pre-existing debt; burn down, do not add".to_string());
        fresh.insert(BaselineEntry { file, rule, count, reason });
    }
    fresh
}

/// Locates the workspace root by walking up from `start` to the first
/// directory containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(current) = dir {
        let manifest = current.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(current.to_path_buf());
            }
        }
        dir = current.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: Rule, line: u32) -> FileFinding {
        FileFinding { file: file.into(), finding: Finding { rule, line, message: String::new() } }
    }

    #[test]
    fn classification() {
        assert_eq!(classify("crates/core/src/qbd.rs"), Some(FileKind::Lib));
        assert_eq!(classify("crates/analyze/src/main.rs"), Some(FileKind::Bin));
        assert_eq!(classify("crates/bench/src/bin/fig5.rs"), Some(FileKind::Bin));
        assert_eq!(classify("crates/core/src/qbd.txt"), None);
        assert_eq!(classify("src/lib.rs"), Some(FileKind::Lib));
    }

    #[test]
    fn check_flags_only_over_budget_groups() {
        let findings = vec![
            finding("a.rs", Rule::NoPanic, 3),
            finding("a.rs", Rule::NoPanic, 9),
            finding("b.rs", Rule::FloatCmp, 2),
        ];
        let mut baseline = Baseline::default();
        baseline.insert(BaselineEntry {
            file: "a.rs".into(),
            rule: "no_panic".into(),
            count: 2,
            reason: String::new(),
        });
        let report = check(&findings, &baseline);
        assert!(!report.passed());
        assert_eq!(report.over_budget.len(), 1);
        let (file, rule, allowance, group) = &report.over_budget[0];
        assert_eq!((file.as_str(), *rule, *allowance, group.len()), ("b.rs", Rule::FloatCmp, 0, 1));
    }

    #[test]
    fn stale_entries_are_advisory() {
        let findings = vec![finding("a.rs", Rule::NoPanic, 3)];
        let mut baseline = Baseline::default();
        baseline.insert(BaselineEntry {
            file: "a.rs".into(),
            rule: "no_panic".into(),
            count: 5,
            reason: String::new(),
        });
        let report = check(&findings, &baseline);
        assert!(report.passed());
        assert_eq!(report.stale, vec![("a.rs".into(), "no_panic".into(), 5, 1)]);
    }

    #[test]
    fn unknown_baseline_rules_fail_the_gate() {
        let mut baseline = Baseline::default();
        baseline.insert(BaselineEntry {
            file: "a.rs".into(),
            rule: "no_such_rule".into(),
            count: 1,
            reason: String::new(),
        });
        assert!(!check(&[], &baseline).passed());
    }

    #[test]
    fn rebuild_preserves_reasons_and_prunes_dead_entries() {
        let findings = vec![finding("a.rs", Rule::NoPanic, 1), finding("a.rs", Rule::NoPanic, 2)];
        let mut previous = Baseline::default();
        previous.insert(BaselineEntry {
            file: "a.rs".into(),
            rule: "no_panic".into(),
            count: 9,
            reason: "kept".into(),
        });
        previous.insert(BaselineEntry {
            file: "gone.rs".into(),
            rule: "no_panic".into(),
            count: 1,
            reason: "dead".into(),
        });
        let fresh = rebuild_baseline(&findings, &previous);
        let entries: Vec<BaselineEntry> = fresh.entries().collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 2);
        assert_eq!(entries[0].reason, "kept");
    }
}
