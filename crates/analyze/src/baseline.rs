//! The checked-in finding baseline: a ratchet that lets pre-existing
//! violations be burned down incrementally instead of blocking the gate.
//!
//! `analyze-baseline.toml` records, per `(file, rule)`, the number of findings
//! that existed when the entry was written, plus a human reason.  The check
//! passes while the current count stays at or below the recorded count; any
//! *new* finding pushes a group over its budget and fails the run.  Counts —
//! not line numbers — keep the baseline stable under unrelated edits.
//!
//! The file is a deliberately tiny TOML subset (`[[entry]]` tables with
//! string/integer keys) parsed and written by hand: the build environment has
//! no registry access, and the analyzer must stay dependency-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One `[[entry]]` of the baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// A rule ID (see [`crate::Rule`]).
    pub rule: String,
    /// Number of findings tolerated in this file for this rule.
    pub count: usize,
    /// Why these findings are acceptable for now.
    pub reason: String,
}

/// The parsed baseline: `(file, rule) → (count, reason)`.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String), (usize, String)>,
}

impl Baseline {
    /// The tolerated count for a `(file, rule)` group; zero when unlisted.
    pub fn allowance(&self, file: &str, rule: &str) -> usize {
        self.entries.get(&(file.to_string(), rule.to_string())).map_or(0, |(count, _)| *count)
    }

    /// Iterates entries in deterministic (file, rule) order.
    pub fn entries(&self) -> impl Iterator<Item = BaselineEntry> + '_ {
        self.entries.iter().map(|((file, rule), (count, reason))| BaselineEntry {
            file: file.clone(),
            rule: rule.clone(),
            count: *count,
            reason: reason.clone(),
        })
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn insert(&mut self, entry: BaselineEntry) {
        self.entries.insert((entry.file, entry.rule), (entry.count, entry.reason));
    }

    /// Parses the baseline file format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on any syntax error —
    /// a baseline that cannot be read must fail the gate, not pass it.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut baseline = Baseline::default();
        let mut current: Option<PartialEntry> = None;
        for (index, raw_line) in text.lines().enumerate() {
            let line_no = index + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                if let Some(partial) = current.take() {
                    baseline.insert(partial.complete()?);
                }
                current = Some(PartialEntry::default());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {line_no}: expected `key = value`, got `{line}`"));
            };
            let Some(entry) = current.as_mut() else {
                return Err(format!(
                    "line {line_no}: `{}` appears before any [[entry]]",
                    key.trim()
                ));
            };
            let value = value.trim();
            match key.trim() {
                "file" => entry.file = Some(parse_string(value, line_no)?),
                "rule" => entry.rule = Some(parse_string(value, line_no)?),
                "reason" => entry.reason = Some(parse_string(value, line_no)?),
                "count" => {
                    entry.count = Some(value.parse().map_err(|_| {
                        format!("line {line_no}: `count` must be a non-negative integer")
                    })?);
                }
                other => return Err(format!("line {line_no}: unknown key `{other}`")),
            }
        }
        if let Some(partial) = current.take() {
            baseline.insert(partial.complete()?);
        }
        Ok(baseline)
    }

    /// Renders the baseline back to its file format, deterministically ordered.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# urs-analyze finding baseline — a ratchet, not an allowlist.\n\
             # Each [[entry]] tolerates `count` findings of `rule` in `file`; any NEW\n\
             # finding pushes the group over its budget and fails `cargo run -p urs-analyze`.\n\
             # Regenerate (preserving reasons) with: cargo run -p urs-analyze -- --write-baseline\n",
        );
        for entry in self.entries() {
            let _ = write!(
                out,
                "\n[[entry]]\nfile = \"{}\"\nrule = \"{}\"\ncount = {}\nreason = \"{}\"\n",
                escape(&entry.file),
                escape(&entry.rule),
                entry.count,
                escape(&entry.reason)
            );
        }
        out
    }
}

#[derive(Debug, Default)]
struct PartialEntry {
    file: Option<String>,
    rule: Option<String>,
    count: Option<usize>,
    reason: Option<String>,
}

impl PartialEntry {
    fn complete(self) -> Result<BaselineEntry, String> {
        Ok(BaselineEntry {
            file: self.file.ok_or("an [[entry]] is missing `file`")?,
            rule: self.rule.ok_or("an [[entry]] is missing `rule`")?,
            count: self.count.ok_or("an [[entry]] is missing `count`")?,
            reason: self.reason.unwrap_or_default(),
        })
    }
}

fn parse_string(value: &str, line_no: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("line {line_no}: expected a double-quoted string"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    return Err(format!("line {line_no}: unsupported escape `\\{other}`"))
                }
                None => return Err(format!("line {line_no}: dangling `\\`")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut baseline = Baseline::default();
        baseline.insert(BaselineEntry {
            file: "crates/core/src/qbd.rs".into(),
            rule: "slice_index".into(),
            count: 12,
            reason: "dense kernel indexing with \"loop-invariant\" bounds".into(),
        });
        baseline.insert(BaselineEntry {
            file: "crates/core/src/cache.rs".into(),
            rule: "no_panic".into(),
            count: 1,
            reason: "poisoning recovery".into(),
        });
        let rendered = baseline.render();
        let reparsed = Baseline::parse(&rendered).unwrap();
        assert_eq!(reparsed.allowance("crates/core/src/qbd.rs", "slice_index"), 12);
        assert_eq!(reparsed.allowance("crates/core/src/cache.rs", "no_panic"), 1);
        assert_eq!(reparsed.allowance("crates/core/src/cache.rs", "slice_index"), 0);
        assert_eq!(reparsed.entries().count(), 2);
        // Deterministic order: cache.rs before qbd.rs.
        let files: Vec<String> = reparsed.entries().map(|e| e.file).collect();
        assert_eq!(files, vec!["crates/core/src/cache.rs", "crates/core/src/qbd.rs"]);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n[[entry]]\nfile = \"a.rs\"\nrule = \"no_panic\"\ncount = 3\nreason = \"r\"\n";
        let baseline = Baseline::parse(text).unwrap();
        assert_eq!(baseline.allowance("a.rs", "no_panic"), 3);
    }

    #[test]
    fn syntax_errors_are_reported_with_lines() {
        assert!(Baseline::parse("file = \"orphan.rs\"\n").unwrap_err().contains("line 1"));
        assert!(Baseline::parse("[[entry]]\nfile = unquoted\n").unwrap_err().contains("line 2"));
        assert!(Baseline::parse("[[entry]]\nfile = \"a.rs\"\n").unwrap_err().contains("missing"));
        assert!(Baseline::parse("[[entry]]\nfile = \"a.rs\"\nrule = \"no_panic\"\ncount = -1\n")
            .unwrap_err()
            .contains("non-negative"));
    }
}
