//! The `urs-analyze` gate: walks the workspace `src/` trees, applies the
//! domain lints, reconciles against `analyze-baseline.toml` and exits non-zero
//! on any non-baselined finding.
//!
//! ```text
//! cargo run -p urs-analyze                      # check (CI mode)
//! cargo run -p urs-analyze -- --write-baseline  # ratchet the baseline down / absorb reviewed findings
//! cargo run -p urs-analyze -- --root DIR --baseline FILE
//! ```
//!
//! Exit codes: 0 = clean (or fully baselined), 1 = findings over budget,
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use urs_analyze::{analyze_workspace, check, find_workspace_root, rebuild_baseline, Baseline};

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options { root: None, baseline: None, write_baseline: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                options.root =
                    Some(args.next().ok_or("--root requires a directory argument")?.into());
            }
            "--baseline" => {
                options.baseline =
                    Some(args.next().ok_or("--baseline requires a file argument")?.into());
            }
            "--write-baseline" => options.write_baseline = true,
            "--help" | "-h" => {
                return Err("usage: urs-analyze [--root DIR] [--baseline FILE] [--write-baseline]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let root = match options
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| find_workspace_root(&cwd)))
    {
        Some(root) => root,
        None => {
            eprintln!("urs-analyze: could not locate a workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = options.baseline.unwrap_or_else(|| root.join("analyze-baseline.toml"));

    let findings = match analyze_workspace(&root) {
        Ok(findings) => findings,
        Err(error) => {
            eprintln!("urs-analyze: {error}");
            return ExitCode::from(2);
        }
    };

    let previous = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(baseline) => baseline,
            Err(message) => {
                eprintln!("urs-analyze: {}: {message}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(error) => {
            eprintln!("urs-analyze: {}: {error}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    if options.write_baseline {
        let fresh = rebuild_baseline(&findings, &previous);
        if let Err(error) = std::fs::write(&baseline_path, fresh.render()) {
            eprintln!("urs-analyze: writing {}: {error}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "urs-analyze: wrote {} ({} entries, {} findings)",
            baseline_path.display(),
            fresh.entries().count(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let report = check(&findings, &previous);
    for (file, rule, allowance, group) in &report.over_budget {
        eprintln!(
            "error: {} finding(s) of [{}] in {} exceed the baseline budget of {}:",
            group.len(),
            rule.id(),
            file,
            allowance
        );
        for finding in group {
            eprintln!("  {}", finding.display());
        }
    }
    for (file, rule) in &report.unknown_rules {
        eprintln!("error: baseline names unknown rule `{rule}` for {file}");
    }
    for (file, rule, budget, current) in &report.stale {
        eprintln!(
            "note: stale baseline entry {file} [{rule}]: budget {budget}, current {current} — \
             run with --write-baseline to ratchet down"
        );
    }
    if report.passed() {
        println!(
            "urs-analyze: clean — {} finding(s), all within the baseline ({} entries)",
            report.total_findings,
            previous.entries().count()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "urs-analyze: FAILED — fix the findings, waive them with \
             `// urs-analyze: allow(<rule>, reason = \"...\")`, or (for reviewed \
             pre-existing debt) refresh analyze-baseline.toml with --write-baseline"
        );
        ExitCode::from(1)
    }
}
