//! The Section-2 empirical analysis pipeline: moments, fits and goodness-of-fit tests.

use urs_dist::fit::{fit_hyperexp2_mean_scv, fit_hyperexp2_moments};
use urs_dist::ks::KsTest;
use urs_dist::{ContinuousDistribution, Exponential, Histogram, HyperExponential, SampleMoments};

use crate::clean::CleanedPeriods;
use crate::error::DataError;
use crate::trace::BreakdownTrace;
use crate::Result;

/// Options controlling the analysis grids.
///
/// The defaults reproduce the paper: 50 evaluation points over `[0, 250]` for the
/// operative periods (Figure 3) and 40 points over `[0, 1.2]` for the inoperative
/// periods (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisOptions {
    /// Number of histogram intervals / KS evaluation points for the operative periods.
    pub operative_points: usize,
    /// Upper end of the operative-period display range (`None`: largest observation).
    pub operative_range: Option<f64>,
    /// Number of histogram intervals / KS evaluation points for the inoperative periods.
    pub inoperative_points: usize,
    /// Upper end of the inoperative-period display range (`None`: largest observation).
    pub inoperative_range: Option<f64>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            operative_points: 50,
            operative_range: Some(250.0),
            inoperative_points: 40,
            inoperative_range: Some(1.2),
        }
    }
}

/// One point of a density comparison series (Figures 3 and 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityPoint {
    /// Interval midpoint.
    pub x: f64,
    /// Empirical density at the midpoint.
    pub empirical: f64,
    /// Density of the fitted hyperexponential distribution.
    pub hyperexponential: f64,
    /// Density of the mean-matched exponential distribution.
    pub exponential: f64,
}

/// The empirical analysis of one kind of period (operative or inoperative).
#[derive(Debug, Clone)]
pub struct PeriodAnalysis {
    moments: SampleMoments,
    fitted_exponential: Exponential,
    fitted_hyperexponential: HyperExponential,
    ks_exponential: KsTest,
    ks_hyperexponential: KsTest,
    density: Vec<DensityPoint>,
}

impl PeriodAnalysis {
    /// Runs the pipeline on a sample of period lengths.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InsufficientData`] for empty samples and propagates fitting
    /// errors that cannot be recovered by the balanced-means fallback.
    pub fn analyze(samples: &[f64], points: usize, range: Option<f64>) -> Result<Self> {
        if samples.is_empty() {
            return Err(DataError::InsufficientData("no period samples".into()));
        }
        let moments = SampleMoments::from_samples(samples)?;
        let fitted_exponential = Exponential::with_mean(moments.mean())?;
        // Primary fit: exact first-three-moment matching (the paper's approach reduced
        // to two phases); fall back to the balanced-means construction when the sample
        // moments are not attainable (e.g. scv barely above 1).
        let fitted_hyperexponential = fit_hyperexp2_moments(
            moments.raw_moment(1),
            moments.raw_moment(2),
            moments.raw_moment(3),
        )
        .or_else(|_| fit_hyperexp2_mean_scv(moments.mean(), moments.scv().max(1.0)))?;

        let upper = range.unwrap_or_else(|| {
            samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(1e-12)
        });
        let n = samples.len() as f64;
        // Evaluation grid: midpoints of `points` equal intervals over [0, upper].
        let width = upper / points as f64;
        let grid: Vec<f64> = (0..points).map(|i| (i as f64 + 0.5) * width).collect();
        // Empirical CDF evaluated directly on the raw sample.
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let empirical_cdf: Vec<(f64, f64)> = grid
            .iter()
            .map(|&x| {
                let below = sorted.partition_point(|&v| v <= x);
                (x, below as f64 / n)
            })
            .collect();
        let ks_exponential = KsTest::from_grid(&empirical_cdf, |x| fitted_exponential.cdf(x))?;
        let ks_hyperexponential =
            KsTest::from_grid(&empirical_cdf, |x| fitted_hyperexponential.cdf(x))?;

        // Density series for the figures: histogram restricted to the display range.
        let in_range: Vec<f64> = samples.iter().cloned().filter(|x| *x <= upper).collect();
        let fraction_in_range = in_range.len() as f64 / n;
        let histogram = Histogram::with_range(&in_range, points, 0.0, upper)?;
        let density = histogram
            .midpoints()
            .into_iter()
            .zip(histogram.densities())
            .map(|(x, d)| DensityPoint {
                x,
                // Scale back so the densities refer to the full distribution, not just
                // the part below the display range.
                empirical: d * fraction_in_range,
                hyperexponential: fitted_hyperexponential.pdf(x),
                exponential: fitted_exponential.pdf(x),
            })
            .collect();

        Ok(PeriodAnalysis {
            moments,
            fitted_exponential,
            fitted_hyperexponential,
            ks_exponential,
            ks_hyperexponential,
            density,
        })
    }

    /// Raw sample moments of the periods.
    pub fn moments(&self) -> &SampleMoments {
        &self.moments
    }

    /// The mean-matched exponential fit (the hypothesis the paper rejects for operative
    /// periods).
    pub fn fitted_exponential(&self) -> &Exponential {
        &self.fitted_exponential
    }

    /// The fitted two-phase hyperexponential distribution.
    pub fn fitted_hyperexponential(&self) -> &HyperExponential {
        &self.fitted_hyperexponential
    }

    /// Kolmogorov–Smirnov test of the exponential hypothesis.
    pub fn ks_exponential(&self) -> &KsTest {
        &self.ks_exponential
    }

    /// Kolmogorov–Smirnov test of the hyperexponential hypothesis.
    pub fn ks_hyperexponential(&self) -> &KsTest {
        &self.ks_hyperexponential
    }

    /// Whether the exponential hypothesis is accepted at the 5% significance level.
    pub fn exponential_accepted_at_5_percent(&self) -> bool {
        self.ks_exponential.passes(0.05).unwrap_or(false)
    }

    /// Whether the hyperexponential hypothesis is accepted at the 5% significance level.
    pub fn hyperexponential_accepted_at_5_percent(&self) -> bool {
        self.ks_hyperexponential.passes(0.05).unwrap_or(false)
    }

    /// The density comparison series (Figures 3 and 4).
    pub fn density_series(&self) -> &[DensityPoint] {
        &self.density
    }
}

/// The full Section-2 analysis of a breakdown trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    cleaned_rows: usize,
    discarded_fraction: f64,
    operative: PeriodAnalysis,
    inoperative: PeriodAnalysis,
}

impl TraceAnalysis {
    /// Cleans the trace and analyses both kinds of periods.
    ///
    /// # Errors
    ///
    /// Propagates cleaning and analysis failures.
    pub fn run(trace: &BreakdownTrace, options: AnalysisOptions) -> Result<Self> {
        let cleaned = CleanedPeriods::from_trace(trace)?;
        let operative = PeriodAnalysis::analyze(
            cleaned.operative(),
            options.operative_points,
            options.operative_range,
        )?;
        let inoperative = PeriodAnalysis::analyze(
            cleaned.inoperative(),
            options.inoperative_points,
            options.inoperative_range,
        )?;
        Ok(TraceAnalysis {
            cleaned_rows: cleaned.operative().len(),
            discarded_fraction: cleaned.discarded_fraction(),
            operative,
            inoperative,
        })
    }

    /// Number of usable rows after cleaning.
    pub fn cleaned_rows(&self) -> usize {
        self.cleaned_rows
    }

    /// Fraction of rows discarded as anomalous.
    pub fn discarded_fraction(&self) -> f64 {
        self.discarded_fraction
    }

    /// Analysis of the operative periods.
    pub fn operative(&self) -> &PeriodAnalysis {
        &self.operative
    }

    /// Analysis of the inoperative periods.
    pub fn inoperative(&self) -> &PeriodAnalysis {
        &self.inoperative
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SyntheticTrace;

    fn analysed(events: usize, seed: u64) -> TraceAnalysis {
        let trace = SyntheticTrace::paper_like().with_events(events).generate(seed).unwrap();
        TraceAnalysis::run(&trace, AnalysisOptions::default()).unwrap()
    }

    #[test]
    fn reproduces_the_papers_qualitative_conclusions() {
        let analysis = analysed(40_000, 1);
        // Operative periods: exponential rejected, hyperexponential accepted.
        assert!(!analysis.operative().exponential_accepted_at_5_percent());
        assert!(analysis.operative().hyperexponential_accepted_at_5_percent());
        // The exponential statistic is much larger than the hyperexponential one
        // (paper: 0.4742 vs 0.1412).
        assert!(
            analysis.operative().ks_exponential().statistic()
                > 3.0 * analysis.operative().ks_hyperexponential().statistic()
        );
        // Inoperative periods: the hyperexponential fit is accepted too.
        assert!(analysis.inoperative().hyperexponential_accepted_at_5_percent());
        // About 4% of rows are discarded.
        assert!((analysis.discarded_fraction() - 0.04).abs() < 0.01);
        assert!(analysis.cleaned_rows() > 35_000);
    }

    #[test]
    fn recovered_parameters_are_close_to_the_ground_truth() {
        let analysis = analysed(120_000, 2);
        let fit = analysis.operative().fitted_hyperexponential();
        // Mean ≈ 34.62 and scv ≈ 4.6 as published.
        assert!((fit.mean() - 34.62).abs() / 34.62 < 0.03, "mean {}", fit.mean());
        assert!((fit.scv() - 4.6).abs() / 4.6 < 0.2, "scv {}", fit.scv());
        // Rates close to ξ₁ = 0.1663 and ξ₂ = 0.0091.
        let mut rates = fit.rates().to_vec();
        rates.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!((rates[0] - 0.1663).abs() / 0.1663 < 0.25, "xi1 {}", rates[0]);
        assert!((rates[1] - 0.0091).abs() / 0.0091 < 0.25, "xi2 {}", rates[1]);
        // The repair-time analysis recovers a mean close to the published 0.0626
        // (0.9303/25.0043 + 0.0697/1.6346).
        let repair_mean = analysis.inoperative().moments().mean();
        assert!((repair_mean - 0.0799).abs() < 0.02, "repair mean {repair_mean}");
    }

    #[test]
    fn density_series_covers_the_figure_ranges() {
        let analysis = analysed(30_000, 3);
        let operative = analysis.operative().density_series();
        assert_eq!(operative.len(), 50);
        assert!(operative.last().unwrap().x < 250.0);
        assert!(operative.first().unwrap().x > 0.0);
        // The empirical and fitted hyperexponential densities should be close near the
        // body of the distribution.
        for point in operative.iter().take(20) {
            assert!(
                (point.empirical - point.hyperexponential).abs()
                    < 0.35 * point.hyperexponential.max(1e-4),
                "density mismatch at x = {}: {} vs {}",
                point.x,
                point.empirical,
                point.hyperexponential
            );
        }
        let inoperative = analysis.inoperative().density_series();
        assert_eq!(inoperative.len(), 40);
        assert!(inoperative.last().unwrap().x < 1.2);
    }

    #[test]
    fn empty_samples_are_rejected() {
        assert!(PeriodAnalysis::analyze(&[], 50, None).is_err());
    }

    #[test]
    fn range_defaults_to_largest_observation() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 / 10.0).collect();
        let analysis = PeriodAnalysis::analyze(&samples, 20, None).unwrap();
        let last = analysis.density_series().last().unwrap().x;
        assert!(last < 100.0 && last > 90.0);
    }
}
