//! Error type for trace generation and analysis.

use std::error::Error;
use std::fmt;

use urs_dist::DistError;

/// Errors produced when generating or analysing breakdown traces.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataError {
    /// A generation or analysis parameter is out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied by the caller.
        value: f64,
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// The trace is empty or contains too few usable rows for the requested analysis.
    InsufficientData(String),
    /// An error bubbled up from the statistics layer.
    Dist(DistError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidParameter { name, value, constraint } => {
                write!(f, "invalid parameter {name} = {value}: {constraint}")
            }
            DataError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            DataError::Dist(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Dist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for DataError {
    fn from(e: DistError) -> Self {
        DataError::Dist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::InvalidParameter { name: "events", value: 0.0, constraint: "≥ 1" };
        assert!(e.to_string().contains("events"));
        assert!(DataError::InsufficientData("empty trace".into()).to_string().contains("empty"));
        let wrapped: DataError = DistError::InsufficientData("x".into()).into();
        assert!(wrapped.source().is_some());
    }
}
