//! Synthetic breakdown traces and the empirical analysis pipeline of Section 2.
//!
//! The paper analyses a proprietary Sun Microsystems data set of ~140 000 breakdown
//! events, each recording an *Outage Duration* and the *Time Between Events*; operative
//! periods are derived as the difference of the two (Figure 2 of the paper).  That data
//! set is not publicly available, so this crate substitutes a **synthetic trace
//! generator** whose ground-truth distributions are the hyperexponential fits published
//! in the paper, including a configurable fraction of anomalous rows (Time Between
//! Events smaller than the Outage Duration) matching the ~4% the paper discards.
//!
//! The [`TraceAnalysis`] pipeline then reruns the paper's entire empirical analysis on such a
//! trace: cleaning, histogramming, moment estimation, exponential and hyperexponential
//! fitting, and Kolmogorov–Smirnov goodness-of-fit testing — reproducing Figures 3
//! and 4 and the quantitative conclusions of Section 2.
//!
//! # Paper map
//!
//! | Paper artefact | Here |
//! |---|---|
//! | §2 Sun breakdown trace (proprietary) | [`SyntheticTrace`] stand-in |
//! | §2 cleaning of anomalous rows (~4%) | the cleaning step of [`TraceAnalysis`] |
//! | §2 fits and KS decisions, Figures 3–4 | [`TraceAnalysis`], [`PeriodAnalysis`] |
//!
//! # Example
//!
//! ```
//! use urs_data::{SyntheticTrace, TraceAnalysis};
//!
//! # fn main() -> Result<(), urs_data::DataError> {
//! let trace = SyntheticTrace::paper_like().with_events(20_000).generate(7)?;
//! let analysis = TraceAnalysis::run(&trace, Default::default())?;
//! // The exponential hypothesis for operative periods must be rejected…
//! assert!(!analysis.operative().exponential_accepted_at_5_percent());
//! // …while the hyperexponential fit is accepted.
//! assert!(analysis.operative().hyperexponential_accepted_at_5_percent());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod analysis;
mod clean;
mod error;
mod trace;

pub use analysis::{AnalysisOptions, DensityPoint, PeriodAnalysis, TraceAnalysis};
pub use clean::CleanedPeriods;
pub use error::DataError;
pub use trace::{BreakdownRecord, BreakdownTrace, SyntheticTrace};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DataError>;
