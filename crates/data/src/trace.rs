//! Synthetic breakdown traces in the format of the Sun Microsystems data set.

use rand::rngs::StdRng;
use rand::SeedableRng;
use urs_dist::{uniform01, ContinuousDistribution, HyperExponential};

use crate::error::DataError;
use crate::Result;

/// One row of the breakdown trace: a breakdown event with its outage duration and the
/// time until the *next* breakdown of the same server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownRecord {
    /// Duration of the outage (inoperative period) that starts at this event.
    pub outage_duration: f64,
    /// Time from this breakdown event to the next breakdown event.
    pub time_between_events: f64,
}

impl BreakdownRecord {
    /// The operative period derived from this record (Figure 2 of the paper):
    /// `Time Between Events − Outage Duration`.
    pub fn operative_period(&self) -> f64 {
        self.time_between_events - self.outage_duration
    }

    /// A record is anomalous when the time between events is smaller than the outage
    /// duration (roughly 4% of the real data set); such rows are discarded by the
    /// cleaning step.
    pub fn is_anomalous(&self) -> bool {
        self.time_between_events < self.outage_duration
    }
}

/// A full breakdown trace.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownTrace {
    records: Vec<BreakdownRecord>,
}

impl BreakdownTrace {
    /// Wraps a list of records as a trace.
    pub fn new(records: Vec<BreakdownRecord>) -> Self {
        BreakdownTrace { records }
    }

    /// The records of the trace.
    pub fn records(&self) -> &[BreakdownRecord] {
        &self.records
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace has no rows.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of anomalous rows.
    pub fn anomalous_rows(&self) -> usize {
        self.records.iter().filter(|r| r.is_anomalous()).count()
    }

    /// Serialises the trace to CSV (header plus one row per record), the format in
    /// which such traces are usually exchanged.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("outage_duration,time_between_events\n");
        for r in &self.records {
            out.push_str(&format!("{},{}\n", r.outage_duration, r.time_between_events));
        }
        out
    }

    /// Parses a trace from the CSV produced by [`to_csv`](Self::to_csv).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InsufficientData`] if the text contains no parsable rows or
    /// a malformed line.
    pub fn from_csv(text: &str) -> Result<Self> {
        let mut records = Vec::new();
        for (index, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with("outage_duration") {
                continue;
            }
            let mut parts = trimmed.split(',');
            let outage: f64 = parts
                .next()
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| DataError::InsufficientData(format!("bad CSV line {index}")))?;
            let tbe: f64 = parts
                .next()
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| DataError::InsufficientData(format!("bad CSV line {index}")))?;
            records.push(BreakdownRecord { outage_duration: outage, time_between_events: tbe });
        }
        if records.is_empty() {
            return Err(DataError::InsufficientData("CSV contained no data rows".into()));
        }
        Ok(BreakdownTrace { records })
    }
}

/// Generator of synthetic traces with known ground-truth distributions.
///
/// The defaults of [`paper_like`](Self::paper_like) mirror the paper's Sun data set:
/// 140 000 events, operative periods drawn from the published two-phase
/// hyperexponential fit, inoperative periods from the published repair-time fit, and
/// ~4% anomalous rows.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    events: usize,
    operative: HyperExponential,
    inoperative: HyperExponential,
    anomaly_fraction: f64,
}

impl SyntheticTrace {
    /// A generator mirroring the paper's data set.
    pub fn paper_like() -> Self {
        SyntheticTrace {
            events: 140_000,
            operative: HyperExponential::new(&[0.7246, 0.2754], &[0.1663, 0.0091])
                // urs-analyze: allow(no_panic, reason = "literal paper constants: positive weights summing to 1, positive rates")
                .expect("paper parameters are valid"),
            inoperative: HyperExponential::new(&[0.9303, 0.0697], &[25.0043, 1.6346])
                // urs-analyze: allow(no_panic, reason = "literal paper constants: positive weights summing to 1, positive rates")
                .expect("paper parameters are valid"),
            anomaly_fraction: 0.04,
        }
    }

    /// Creates a generator with explicit ground-truth distributions.
    pub fn new(operative: HyperExponential, inoperative: HyperExponential) -> Self {
        SyntheticTrace { events: 140_000, operative, inoperative, anomaly_fraction: 0.04 }
    }

    /// Sets the number of events to generate.
    pub fn with_events(mut self, events: usize) -> Self {
        self.events = events;
        self
    }

    /// Sets the fraction of anomalous rows (0 disables anomalies).
    pub fn with_anomaly_fraction(mut self, fraction: f64) -> Self {
        self.anomaly_fraction = fraction;
        self
    }

    /// The ground-truth operative-period distribution.
    pub fn operative(&self) -> &HyperExponential {
        &self.operative
    }

    /// The ground-truth inoperative-period distribution.
    pub fn inoperative(&self) -> &HyperExponential {
        &self.inoperative
    }

    /// Generates a trace with the given random seed.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if the event count is zero or the
    /// anomaly fraction lies outside `[0, 1)`.
    pub fn generate(&self, seed: u64) -> Result<BreakdownTrace> {
        if self.events == 0 {
            return Err(DataError::InvalidParameter {
                name: "events",
                value: 0.0,
                constraint: "must generate at least one event",
            });
        }
        if !(0.0..1.0).contains(&self.anomaly_fraction) {
            return Err(DataError::InvalidParameter {
                name: "anomaly_fraction",
                value: self.anomaly_fraction,
                constraint: "must lie in [0, 1)",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut records = Vec::with_capacity(self.events);
        for _ in 0..self.events {
            let outage = self.inoperative.sample(&mut rng);
            if uniform01(&mut rng) < self.anomaly_fraction {
                // Anomalous row: the recorded time between events is shorter than the
                // outage itself (as observed in the real data set, e.g. due to clock
                // skew or overlapping tickets).
                let fraction = uniform01(&mut rng);
                records.push(BreakdownRecord {
                    outage_duration: outage,
                    time_between_events: outage * fraction,
                });
            } else {
                let operative = self.operative.sample(&mut rng);
                records.push(BreakdownRecord {
                    outage_duration: outage,
                    time_between_events: outage + operative,
                });
            }
        }
        Ok(BreakdownTrace { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_derivations() {
        let good = BreakdownRecord { outage_duration: 0.5, time_between_events: 10.5 };
        assert!((good.operative_period() - 10.0).abs() < 1e-12);
        assert!(!good.is_anomalous());
        let bad = BreakdownRecord { outage_duration: 2.0, time_between_events: 1.0 };
        assert!(bad.is_anomalous());
    }

    #[test]
    fn generator_produces_requested_volume_and_anomaly_rate() {
        let trace = SyntheticTrace::paper_like().with_events(50_000).generate(1).unwrap();
        assert_eq!(trace.len(), 50_000);
        assert!(!trace.is_empty());
        let anomaly_rate = trace.anomalous_rows() as f64 / trace.len() as f64;
        assert!((anomaly_rate - 0.04).abs() < 0.005, "anomaly rate {anomaly_rate}");
    }

    #[test]
    fn generated_periods_match_ground_truth_means() {
        let generator = SyntheticTrace::paper_like().with_events(60_000).with_anomaly_fraction(0.0);
        let trace = generator.generate(3).unwrap();
        let mean_operative: f64 =
            trace.records().iter().map(BreakdownRecord::operative_period).sum::<f64>()
                / trace.len() as f64;
        let mean_outage: f64 =
            trace.records().iter().map(|r| r.outage_duration).sum::<f64>() / trace.len() as f64;
        assert!(
            (mean_operative - generator.operative().mean()).abs() / generator.operative().mean()
                < 0.03
        );
        assert!(
            (mean_outage - generator.inoperative().mean()).abs() / generator.inoperative().mean()
                < 0.03
        );
    }

    #[test]
    fn generation_is_reproducible() {
        let generator = SyntheticTrace::paper_like().with_events(1_000);
        assert_eq!(generator.generate(9).unwrap(), generator.generate(9).unwrap());
        assert_ne!(generator.generate(9).unwrap(), generator.generate(10).unwrap());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SyntheticTrace::paper_like().with_events(0).generate(0).is_err());
        assert!(SyntheticTrace::paper_like().with_anomaly_fraction(1.5).generate(0).is_err());
    }

    #[test]
    fn csv_round_trip() {
        let trace = SyntheticTrace::paper_like().with_events(100).generate(5).unwrap();
        let csv = trace.to_csv();
        let parsed = BreakdownTrace::from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), trace.len());
        for (a, b) in parsed.records().iter().zip(trace.records()) {
            assert!((a.outage_duration - b.outage_duration).abs() < 1e-9);
            assert!((a.time_between_events - b.time_between_events).abs() < 1e-9);
        }
        assert!(BreakdownTrace::from_csv("outage_duration,time_between_events\n").is_err());
        assert!(BreakdownTrace::from_csv("not,a,number\nx,y\n").is_err());
    }
}
