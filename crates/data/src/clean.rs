//! Cleaning the raw trace into operative and inoperative period samples.

use crate::error::DataError;
use crate::trace::BreakdownTrace;
use crate::Result;

/// The usable period samples extracted from a trace after removing anomalous rows.
///
/// # Example
///
/// ```
/// use urs_data::{CleanedPeriods, SyntheticTrace};
///
/// # fn main() -> Result<(), urs_data::DataError> {
/// let trace = SyntheticTrace::paper_like().with_events(5_000).generate(1)?;
/// let cleaned = CleanedPeriods::from_trace(&trace)?;
/// assert!(cleaned.discarded_fraction() < 0.06);
/// assert_eq!(cleaned.operative().len(), cleaned.inoperative().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CleanedPeriods {
    operative: Vec<f64>,
    inoperative: Vec<f64>,
    discarded: usize,
    total_rows: usize,
}

impl CleanedPeriods {
    /// Derives operative and inoperative period samples from a trace, discarding
    /// anomalous rows (Time Between Events < Outage Duration) as the paper does.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InsufficientData`] if no usable rows remain.
    pub fn from_trace(trace: &BreakdownTrace) -> Result<Self> {
        let mut operative = Vec::with_capacity(trace.len());
        let mut inoperative = Vec::with_capacity(trace.len());
        let mut discarded = 0usize;
        for record in trace.records() {
            if record.is_anomalous()
                || !record.outage_duration.is_finite()
                || !record.time_between_events.is_finite()
                || record.outage_duration <= 0.0
            {
                discarded += 1;
                continue;
            }
            inoperative.push(record.outage_duration);
            operative.push(record.operative_period());
        }
        if operative.is_empty() {
            return Err(DataError::InsufficientData(
                "every row of the trace was anomalous or malformed".into(),
            ));
        }
        Ok(CleanedPeriods { operative, inoperative, discarded, total_rows: trace.len() })
    }

    /// The derived operative-period samples.
    pub fn operative(&self) -> &[f64] {
        &self.operative
    }

    /// The derived inoperative-period samples (outage durations).
    pub fn inoperative(&self) -> &[f64] {
        &self.inoperative
    }

    /// Number of rows discarded as anomalous or malformed.
    pub fn discarded_rows(&self) -> usize {
        self.discarded
    }

    /// Total number of rows in the original trace.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Fraction of rows discarded.
    pub fn discarded_fraction(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.discarded as f64 / self.total_rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{BreakdownRecord, SyntheticTrace};

    #[test]
    fn anomalies_are_discarded() {
        let trace = BreakdownTrace::new(vec![
            BreakdownRecord { outage_duration: 0.5, time_between_events: 5.0 },
            BreakdownRecord { outage_duration: 2.0, time_between_events: 1.0 }, // anomalous
            BreakdownRecord { outage_duration: 0.1, time_between_events: 20.0 },
        ]);
        let cleaned = CleanedPeriods::from_trace(&trace).unwrap();
        assert_eq!(cleaned.operative().len(), 2);
        assert_eq!(cleaned.discarded_rows(), 1);
        assert_eq!(cleaned.total_rows(), 3);
        assert!((cleaned.discarded_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((cleaned.operative()[0] - 4.5).abs() < 1e-12);
        assert!((cleaned.inoperative()[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn all_anomalous_trace_is_an_error() {
        let trace = BreakdownTrace::new(vec![BreakdownRecord {
            outage_duration: 2.0,
            time_between_events: 1.0,
        }]);
        assert!(CleanedPeriods::from_trace(&trace).is_err());
    }

    #[test]
    fn synthetic_trace_discard_rate_matches_configuration() {
        let trace = SyntheticTrace::paper_like()
            .with_events(30_000)
            .with_anomaly_fraction(0.04)
            .generate(11)
            .unwrap();
        let cleaned = CleanedPeriods::from_trace(&trace).unwrap();
        assert!((cleaned.discarded_fraction() - 0.04).abs() < 0.01);
        // Cleaned operative periods should carry the ground-truth mean (~34.6).
        let mean: f64 = cleaned.operative().iter().sum::<f64>() / cleaned.operative().len() as f64;
        assert!((mean - 34.62).abs() < 1.5, "mean operative {mean}");
    }
}
