//! The multi-server breakdown/repair queue simulator.
//!
//! The simulated system matches Section 3 of the paper: jobs arrive in a Poisson
//! stream and wait in an unbounded FCFS queue served by `N` servers.  Each server
//! alternates between operative and inoperative periods *independently of whether it is
//! serving*; when a busy server breaks down, its job returns to the front of the queue
//! and later resumes from the point of interruption (preempt-resume, no switching
//! overhead).  Unlike the analytic model, the period and service distributions may be
//! arbitrary [`ContinuousDistribution`]s.
//!
//! [`SimulationConfig::heterogeneous`] extends the simulator to distinct server
//! classes: each class has its own service rate and period distributions, jobs carry
//! a *work requirement* that a class-`c` server depletes at rate `µ_c`, dispatch is
//! fastest-first, and a job in service migrates to a faster server when one becomes
//! available — mirroring the allocation the class-aware analytic model of `urs-core`
//! assumes, so the two can be validated against each other.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use urs_dist::{ContinuousDistribution, Exponential};

use crate::engine::{EventHandle, EventQueue};
use crate::error::SimError;
use crate::stats::{TimeWeightedAverage, WelfordAccumulator};
use crate::Result;

/// One class of statistically identical servers inside a [`SimulationConfig`].
#[derive(Debug, Clone)]
struct SimServerClass {
    count: usize,
    /// Work units processed per unit time by one operative server of the class.  The
    /// legacy single-class path uses rate 1, making "work" identical to service time.
    service_rate: f64,
    operative: Arc<dyn ContinuousDistribution>,
    inoperative: Arc<dyn ContinuousDistribution>,
}

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    servers: usize,
    arrival_rate: f64,
    /// Distribution of the *work requirement* of a job.  A class-`c` server depletes
    /// work at rate `µ_c`, so with the legacy single class (rate 1) this is simply the
    /// service-time distribution.
    service: Arc<dyn ContinuousDistribution>,
    /// Server classes in dispatch-priority (fastest-first) order.
    classes: Vec<SimServerClass>,
    warmup: f64,
    horizon: f64,
}

impl SimulationConfig {
    /// Starts building a configuration for `servers` servers and Poisson arrivals with
    /// rate `arrival_rate`.
    pub fn builder(servers: usize, arrival_rate: f64) -> SimulationConfigBuilder {
        SimulationConfigBuilder {
            servers,
            arrival_rate,
            service: None,
            operative: None,
            inoperative: None,
            warmup: 1_000.0,
            horizon: 50_000.0,
        }
    }

    /// Starts building a configuration with heterogeneous server classes: jobs carry a
    /// work requirement (default `Exponential(1)`, matching the analytic Markovian
    /// model) and a class-`c` server processes work at its service rate `µ_c`.  Jobs
    /// are dispatched to the fastest operative servers first and migrate to a faster
    /// server when one is repaired while slower servers are busy — the allocation
    /// assumed by the class-aware QBD generator of `urs-core`.
    pub fn heterogeneous(arrival_rate: f64) -> HeterogeneousConfigBuilder {
        HeterogeneousConfigBuilder {
            arrival_rate,
            classes: Vec::new(),
            work: None,
            warmup: 1_000.0,
            horizon: 50_000.0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of server classes (1 unless built with
    /// [`heterogeneous`](Self::heterogeneous)).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Poisson arrival rate `λ`.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Length of the warm-up period excluded from the statistics.
    pub fn warmup(&self) -> f64 {
        self.warmup
    }

    /// Total simulated time (including the warm-up period).
    pub fn horizon(&self) -> f64 {
        self.horizon
    }
}

/// Builder for [`SimulationConfig`].
#[derive(Debug, Clone)]
pub struct SimulationConfigBuilder {
    servers: usize,
    arrival_rate: f64,
    service: Option<Arc<dyn ContinuousDistribution>>,
    operative: Option<Arc<dyn ContinuousDistribution>>,
    inoperative: Option<Arc<dyn ContinuousDistribution>>,
    warmup: f64,
    horizon: f64,
}

impl SimulationConfigBuilder {
    /// Sets the service-time distribution (required).
    pub fn service(mut self, dist: impl ContinuousDistribution + 'static) -> Self {
        self.service = Some(Arc::new(dist));
        self
    }

    /// Sets the operative-period distribution (required).
    pub fn operative(mut self, dist: impl ContinuousDistribution + 'static) -> Self {
        self.operative = Some(Arc::new(dist));
        self
    }

    /// Sets the inoperative (repair) period distribution (required).
    pub fn inoperative(mut self, dist: impl ContinuousDistribution + 'static) -> Self {
        self.inoperative = Some(Arc::new(dist));
        self
    }

    /// Sets the warm-up period (statistics before this time are discarded; default 1000).
    pub fn warmup(mut self, warmup: f64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the total simulated time (default 50 000).
    pub fn horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingConfiguration`] if a distribution was not supplied,
    /// or [`SimError::InvalidParameter`] for non-positive rates/horizons or a warm-up
    /// period that is not shorter than the horizon.
    pub fn build(self) -> Result<SimulationConfig> {
        if self.servers == 0 {
            return Err(SimError::InvalidParameter {
                name: "servers",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        validate_run_window(self.arrival_rate, self.warmup, self.horizon)?;
        let class = SimServerClass {
            count: self.servers,
            service_rate: 1.0,
            operative: self
                .operative
                .ok_or(SimError::MissingConfiguration("operative-period distribution"))?,
            inoperative: self
                .inoperative
                .ok_or(SimError::MissingConfiguration("inoperative-period distribution"))?,
        };
        Ok(SimulationConfig {
            servers: self.servers,
            arrival_rate: self.arrival_rate,
            service: self.service.ok_or(SimError::MissingConfiguration("service distribution"))?,
            classes: vec![class],
            warmup: self.warmup,
            horizon: self.horizon,
        })
    }
}

/// Builder for heterogeneous-class [`SimulationConfig`]s
/// (see [`SimulationConfig::heterogeneous`]).
#[derive(Debug, Clone)]
pub struct HeterogeneousConfigBuilder {
    arrival_rate: f64,
    classes: Vec<SimServerClass>,
    work: Option<Arc<dyn ContinuousDistribution>>,
    warmup: f64,
    horizon: f64,
}

impl HeterogeneousConfigBuilder {
    /// Appends a server class: `count` servers with service rate `service_rate` and
    /// the given operative/inoperative period distributions.
    pub fn class(
        mut self,
        count: usize,
        service_rate: f64,
        operative: impl ContinuousDistribution + 'static,
        inoperative: impl ContinuousDistribution + 'static,
    ) -> Self {
        self.classes.push(SimServerClass {
            count,
            service_rate,
            operative: Arc::new(operative),
            inoperative: Arc::new(inoperative),
        });
        self
    }

    /// Sets the work-requirement distribution (default: `Exponential(1)`, i.e.
    /// exponential service with mean `1/µ_c` on a class-`c` server, matching the
    /// analytic model).
    pub fn work(mut self, dist: impl ContinuousDistribution + 'static) -> Self {
        self.work = Some(Arc::new(dist));
        self
    }

    /// Sets the warm-up period (statistics before this time are discarded; default 1000).
    pub fn warmup(mut self, warmup: f64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the total simulated time (default 50 000).
    pub fn horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Validates and builds the configuration.  Classes are sorted fastest-first, the
    /// dispatch priority the analytic model assumes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingConfiguration`] when no class was supplied and
    /// [`SimError::InvalidParameter`] for empty classes, non-positive service rates or
    /// invalid arrival rate / warm-up / horizon combinations.
    pub fn build(mut self) -> Result<SimulationConfig> {
        if self.classes.is_empty() {
            return Err(SimError::MissingConfiguration("at least one server class"));
        }
        for class in &self.classes {
            if class.count == 0 {
                return Err(SimError::InvalidParameter {
                    name: "servers",
                    value: 0.0,
                    constraint: "every server class must contain at least 1 server",
                });
            }
            if !(class.service_rate.is_finite() && class.service_rate > 0.0) {
                return Err(SimError::InvalidParameter {
                    name: "service_rate",
                    value: class.service_rate,
                    constraint: "must be finite and positive",
                });
            }
        }
        validate_run_window(self.arrival_rate, self.warmup, self.horizon)?;
        // Fastest classes first: index order is dispatch priority.
        self.classes.sort_by(|a, b| b.service_rate.total_cmp(&a.service_rate));
        let work = match self.work {
            Some(dist) => dist,
            None => Arc::new(Exponential::new(1.0)?),
        };
        Ok(SimulationConfig {
            servers: self.classes.iter().map(|c| c.count).sum(),
            arrival_rate: self.arrival_rate,
            service: work,
            classes: self.classes,
            warmup: self.warmup,
            horizon: self.horizon,
        })
    }
}

/// Shared validation of the arrival process and measurement window, used by both
/// configuration builders so their constraints cannot drift apart.
fn validate_run_window(arrival_rate: f64, warmup: f64, horizon: f64) -> Result<()> {
    if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
        return Err(SimError::InvalidParameter {
            name: "arrival_rate",
            value: arrival_rate,
            constraint: "must be finite and positive",
        });
    }
    if !(horizon.is_finite() && horizon > 0.0) {
        return Err(SimError::InvalidParameter {
            name: "horizon",
            value: horizon,
            constraint: "must be finite and positive",
        });
    }
    if !(warmup >= 0.0 && warmup < horizon) {
        return Err(SimError::InvalidParameter {
            name: "warmup",
            value: warmup,
            constraint: "must be non-negative and shorter than the horizon",
        });
    }
    Ok(())
}

/// Events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Arrival,
    ServiceCompletion { server: usize, generation: u64 },
    Breakdown { server: usize },
    Repair { server: usize },
}

/// A job waiting for (or receiving) service.
#[derive(Debug, Clone, Copy)]
struct Job {
    arrival_time: f64,
    remaining_service: f64,
}

/// Per-server bookkeeping.
#[derive(Debug, Clone)]
struct Server {
    operative: bool,
    job: Option<Job>,
    service_started_at: f64,
    completion_handle: Option<EventHandle>,
    /// Invalidates stale completion events after a preemption.
    generation: u64,
}

/// The simulator itself.  Create it once and [`run`](Self::run) it with different seeds
/// to obtain independent replications.
#[derive(Debug, Clone)]
pub struct BreakdownQueueSimulation {
    config: SimulationConfig,
}

impl BreakdownQueueSimulation {
    /// Creates a simulator for the given configuration.
    pub fn new(config: SimulationConfig) -> Self {
        BreakdownQueueSimulation { config }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Runs one replication with the given random seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoObservations`] if no job completed during the measurement
    /// window (horizon too short or system hopelessly overloaded).
    pub fn run(&self, seed: u64) -> Result<SimulationResult> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals = Exponential::new(cfg.arrival_rate)?;

        // Per-server class index and work-depletion rate; classes are fastest-first,
        // so dispatching in server-index order realises the fastest-first allocation.
        let class_of: Vec<usize> = cfg
            .classes
            .iter()
            .enumerate()
            .flat_map(|(class, spec)| std::iter::repeat_n(class, spec.count))
            .collect();
        let rates: Vec<f64> = class_of.iter().map(|&c| cfg.classes[c].service_rate).collect();

        let mut events: EventQueue<Event> = EventQueue::new();
        let mut queue: VecDeque<Job> = VecDeque::new();
        let mut servers: Vec<Server> = (0..cfg.servers)
            .map(|_| Server {
                operative: true,
                job: None,
                service_started_at: 0.0,
                completion_handle: None,
                generation: 0,
            })
            .collect();

        // Statistics.
        let mut jobs_in_system = 0usize;
        let mut queue_length = TimeWeightedAverage::new(cfg.warmup);
        let mut operative_servers = TimeWeightedAverage::new(cfg.warmup);
        let mut busy_servers = TimeWeightedAverage::new(cfg.warmup);
        let mut response_times = WelfordAccumulator::new();
        let mut response_samples: Vec<f64> = Vec::new();
        let mut completions_total = 0u64;
        let mut arrivals_total = 0u64;
        let mut breakdowns_total = 0u64;

        // Prime the event queue: first arrival and the first breakdown of every server.
        events.schedule_in(arrivals.sample(&mut rng), Event::Arrival);
        for (index, &class) in class_of.iter().enumerate() {
            let first_operative = cfg.classes[class].operative.sample(&mut rng);
            events.schedule_in(first_operative, Event::Breakdown { server: index });
        }
        operative_servers.record(0.0, cfg.servers as f64);

        while let Some((now, event)) = events.pop() {
            if now > cfg.horizon {
                break;
            }
            match event {
                Event::Arrival => {
                    arrivals_total += 1;
                    jobs_in_system += 1;
                    queue_length.record(now, jobs_in_system as f64);
                    let service = cfg.service.sample(&mut rng);
                    queue.push_back(Job { arrival_time: now, remaining_service: service });
                    events.schedule_in(arrivals.sample(&mut rng), Event::Arrival);
                    dispatch(&mut events, &mut servers, &mut queue, now, &mut busy_servers, &rates);
                }
                Event::ServiceCompletion { server, generation } => {
                    if servers[server].generation != generation || servers[server].job.is_none() {
                        continue; // stale event from before a preemption
                    }
                    // urs-analyze: allow(no_panic, reason = "the stale-event guard two lines up continues when `job` is None")
                    let job = servers[server].job.take().expect("job present checked above");
                    servers[server].completion_handle = None;
                    jobs_in_system -= 1;
                    queue_length.record(now, jobs_in_system as f64);
                    completions_total += 1;
                    if now >= cfg.warmup {
                        response_times.push(now - job.arrival_time);
                        response_samples.push(now - job.arrival_time);
                    }
                    dispatch(&mut events, &mut servers, &mut queue, now, &mut busy_servers, &rates);
                }
                Event::Breakdown { server } => {
                    breakdowns_total += 1;
                    let entry = &mut servers[server];
                    entry.operative = false;
                    entry.generation += 1;
                    if let Some(mut job) = entry.job.take() {
                        // Preempt: compute the remaining work and put the job back at
                        // the *front* of the queue (paper's preempt-resume discipline).
                        let served = (now - entry.service_started_at) * rates[server];
                        job.remaining_service = (job.remaining_service - served).max(0.0);
                        if let Some(handle) = entry.completion_handle.take() {
                            events.cancel(handle);
                        }
                        queue.push_front(job);
                    }
                    operative_servers.record(now, count_operative(&servers));
                    busy_servers.record(now, count_busy(&servers));
                    let repair = cfg.classes[class_of[server]].inoperative.sample(&mut rng);
                    events.schedule_in(repair, Event::Repair { server });
                    // The preempted job must resume immediately on an idle operative
                    // server if one exists (the CTMC gives that state a positive
                    // departure rate); without this dispatch it would wait for the
                    // next arrival/completion/repair event.
                    dispatch(&mut events, &mut servers, &mut queue, now, &mut busy_servers, &rates);
                }
                Event::Repair { server } => {
                    servers[server].operative = true;
                    operative_servers.record(now, count_operative(&servers));
                    let next_operative_period =
                        cfg.classes[class_of[server]].operative.sample(&mut rng);
                    events.schedule_in(next_operative_period, Event::Breakdown { server });
                    dispatch(&mut events, &mut servers, &mut queue, now, &mut busy_servers, &rates);
                }
            }
        }

        let end = cfg.horizon;
        if response_times.count() == 0 {
            return Err(SimError::NoObservations(format!(
                "no job completed between warm-up {} and horizon {}",
                cfg.warmup, cfg.horizon
            )));
        }
        response_samples.sort_by(f64::total_cmp);
        Ok(SimulationResult {
            mean_queue_length: queue_length.mean_until(end),
            mean_response_time: response_times.mean(),
            response_time_std_error: response_times.standard_error(),
            mean_operative_servers: operative_servers.mean_until(end),
            mean_busy_servers: busy_servers.mean_until(end),
            completed_jobs: completions_total,
            completed_after_warmup: response_times.count(),
            arrived_jobs: arrivals_total,
            breakdowns: breakdowns_total,
            measured_time: end - cfg.warmup,
            sorted_response_times: response_samples,
        })
    }
}

/// Starts service on every idle operative server while jobs are waiting, keeping the
/// jobs in service on the *fastest* operative servers: once the queue is drained, an
/// idle operative server takes over the job of a strictly slower busy server
/// (preempt-resume on remaining work).  With a single class all rates are equal, no
/// migration ever triggers, and this is exactly the plain FCFS dispatch.
fn dispatch(
    events: &mut EventQueue<Event>,
    servers: &mut [Server],
    queue: &mut VecDeque<Job>,
    now: f64,
    busy_servers: &mut TimeWeightedAverage,
    rates: &[f64],
) {
    for index in 0..servers.len() {
        if !(servers[index].operative && servers[index].job.is_none()) {
            continue;
        }
        let job = match queue.pop_front() {
            Some(job) => job,
            None => {
                // Queue drained: migrate from the slowest strictly slower busy server,
                // if any (ties broken towards the highest index, i.e. lowest priority).
                let donor = (index + 1..servers.len())
                    .filter(|&j| servers[j].job.is_some() && rates[j] < rates[index])
                    .min_by(|&a, &b| rates[a].total_cmp(&rates[b]).then(b.cmp(&a)));
                let Some(donor) = donor else { break };
                let entry = &mut servers[donor];
                let served = (now - entry.service_started_at) * rates[donor];
                // urs-analyze: allow(no_panic, reason = "donors are drawn from the busy-server set built in this scope")
                let mut job = entry.job.take().expect("donor is busy by construction");
                job.remaining_service = (job.remaining_service - served).max(0.0);
                if let Some(handle) = entry.completion_handle.take() {
                    events.cancel(handle);
                }
                entry.generation += 1;
                job
            }
        };
        let server = &mut servers[index];
        server.service_started_at = now;
        server.generation += 1;
        let handle = events.schedule_in(
            job.remaining_service / rates[index],
            Event::ServiceCompletion { server: index, generation: server.generation },
        );
        server.completion_handle = Some(handle);
        server.job = Some(job);
    }
    busy_servers.record(now, count_busy(servers));
}

fn count_operative(servers: &[Server]) -> f64 {
    servers.iter().filter(|s| s.operative).count() as f64
}

fn count_busy(servers: &[Server]) -> f64 {
    servers.iter().filter(|s| s.job.is_some()).count() as f64
}

/// The measurements collected by one simulation replication.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    mean_queue_length: f64,
    mean_response_time: f64,
    response_time_std_error: f64,
    mean_operative_servers: f64,
    mean_busy_servers: f64,
    completed_jobs: u64,
    completed_after_warmup: u64,
    arrived_jobs: u64,
    breakdowns: u64,
    measured_time: f64,
    sorted_response_times: Vec<f64>,
}

impl SimulationResult {
    /// Time-averaged number of jobs in the system, `L`.
    pub fn mean_queue_length(&self) -> f64 {
        self.mean_queue_length
    }

    /// Mean response time of jobs completed after the warm-up period, `W`.
    pub fn mean_response_time(&self) -> f64 {
        self.mean_response_time
    }

    /// Standard error of the mean response time (within this replication).
    pub fn response_time_std_error(&self) -> f64 {
        self.response_time_std_error
    }

    /// Time-averaged number of operative servers.
    pub fn mean_operative_servers(&self) -> f64 {
        self.mean_operative_servers
    }

    /// Time-averaged number of busy servers.
    pub fn mean_busy_servers(&self) -> f64 {
        self.mean_busy_servers
    }

    /// Number of jobs completed over the whole run.
    pub fn completed_jobs(&self) -> u64 {
        self.completed_jobs
    }

    /// Number of jobs that arrived over the whole run.
    pub fn arrived_jobs(&self) -> u64 {
        self.arrived_jobs
    }

    /// Number of breakdown events over the whole run.
    pub fn breakdowns(&self) -> u64 {
        self.breakdowns
    }

    /// Length of the measurement window (horizon minus warm-up).
    pub fn measured_time(&self) -> f64 {
        self.measured_time
    }

    /// Number of jobs completed inside the measurement window (after the warm-up).
    pub fn completed_after_warmup(&self) -> u64 {
        self.completed_after_warmup
    }

    /// Observed throughput: completions inside the measurement window per unit time.
    /// For a stable queue this converges to the arrival rate.  Returns `0.0` when no
    /// time was measured (horizon equal to the warm-up): an empty window has observed
    /// no completions, not an astronomically high rate.
    pub fn throughput(&self) -> f64 {
        if self.measured_time > 0.0 {
            self.completed_after_warmup as f64 / self.measured_time
        } else {
            0.0
        }
    }

    /// Empirical percentile of the response time (e.g. `0.9` for the 90th percentile).
    ///
    /// The paper's conclusions list the response-time *distribution* — as opposed to its
    /// mean — as an open problem for the analytic model; the simulator answers it
    /// empirically, and `urs_core`'s `response` module now answers it analytically —
    /// the two are cross-validated in the integration-test tier.
    ///
    /// The estimator is the linearly interpolated order statistic (Hyndman & Fan
    /// type 7, the default of R and NumPy): with `n` sorted samples `x_1 ≤ … ≤ x_n`,
    /// the `p`-quantile interpolates between the samples at rank `1 + (n−1)p`.  The
    /// samples are sorted once at collection time, so each call is `O(1)`; the earlier
    /// nearest-rank rule jumped discontinuously in `p` (and between replications of
    /// slightly different sizes), which made the confidence intervals of
    /// [`Replications::run_percentiles`](crate::Replications::run_percentiles)
    /// needlessly noisy.
    ///
    /// `fraction` must lie in `(0, 1]`; `1.0` yields the sample maximum.  Returns
    /// `None` if `fraction` is outside that range or no job completed during the
    /// measurement window.
    pub fn response_time_percentile(&self, fraction: f64) -> Option<f64> {
        if !(fraction > 0.0 && fraction <= 1.0) || self.sorted_response_times.is_empty() {
            return None;
        }
        let n = self.sorted_response_times.len();
        let rank = (n - 1) as f64 * fraction;
        let below = rank.floor() as usize;
        let weight = rank - below as f64;
        let value = if below + 1 < n {
            let lower = self.sorted_response_times[below];
            let upper = self.sorted_response_times[below + 1];
            lower + weight * (upper - lower)
        } else {
            self.sorted_response_times[n - 1]
        };
        Some(value)
    }

    /// The sorted response times of the jobs completed after the warm-up.
    pub fn response_times(&self) -> &[f64] {
        &self.sorted_response_times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urs_dist::{Deterministic, HyperExponential};

    fn reliable_servers_config(servers: usize, lambda: f64) -> SimulationConfig {
        // Breakdowns essentially never happen; repairs are instantaneous.
        SimulationConfig::builder(servers, lambda)
            .service(Exponential::new(1.0).unwrap())
            .operative(Exponential::with_mean(1e9).unwrap())
            .inoperative(Exponential::with_mean(1e-6).unwrap())
            .warmup(2_000.0)
            .horizon(60_000.0)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            SimulationConfig::builder(0, 1.0)
                .service(Exponential::new(1.0).unwrap())
                .operative(Exponential::new(1.0).unwrap())
                .inoperative(Exponential::new(1.0).unwrap())
                .build(),
            Err(SimError::InvalidParameter { name: "servers", .. })
        ));
        assert!(matches!(
            SimulationConfig::builder(1, 1.0).build(),
            Err(SimError::MissingConfiguration(_))
        ));
        assert!(matches!(
            SimulationConfig::builder(1, 1.0)
                .service(Exponential::new(1.0).unwrap())
                .operative(Exponential::new(1.0).unwrap())
                .inoperative(Exponential::new(1.0).unwrap())
                .warmup(100.0)
                .horizon(50.0)
                .build(),
            Err(SimError::InvalidParameter { name: "warmup", .. })
        ));
    }

    #[test]
    fn mm1_simulation_matches_theory() {
        // M/M/1 with ρ = 0.6: L = 1.5, W = 2.5.
        let config = reliable_servers_config(1, 0.6);
        let result = BreakdownQueueSimulation::new(config).run(7).unwrap();
        assert!(
            (result.mean_queue_length() - 1.5).abs() < 0.15,
            "L = {}",
            result.mean_queue_length()
        );
        assert!(
            (result.mean_response_time() - 2.5).abs() < 0.25,
            "W = {}",
            result.mean_response_time()
        );
        assert!((result.mean_operative_servers() - 1.0).abs() < 1e-3);
        assert!(result.completed_jobs() > 20_000);
    }

    #[test]
    fn little_law_holds_within_noise() {
        let config = reliable_servers_config(3, 2.0);
        let result = BreakdownQueueSimulation::new(config).run(11).unwrap();
        // L ≈ λ_effective · W; with no losses λ_effective = λ.
        let little = 2.0 * result.mean_response_time();
        assert!(
            (result.mean_queue_length() - little).abs() / little < 0.05,
            "L = {}, λW = {little}",
            result.mean_queue_length()
        );
    }

    #[test]
    fn breakdowns_reduce_availability_to_the_expected_level() {
        // Paper-like lifecycle scaled for a quick test: mean operative 10, mean repair 2.5.
        let config = SimulationConfig::builder(4, 1.0)
            .service(Exponential::new(1.0).unwrap())
            .operative(Exponential::with_mean(10.0).unwrap())
            .inoperative(Exponential::with_mean(2.5).unwrap())
            .warmup(2_000.0)
            .horizon(40_000.0)
            .build()
            .unwrap();
        let result = BreakdownQueueSimulation::new(config).run(3).unwrap();
        // Availability = 10/12.5 = 0.8 -> on average 3.2 operative servers.
        assert!(
            (result.mean_operative_servers() - 3.2).abs() < 0.1,
            "operative {}",
            result.mean_operative_servers()
        );
        assert!(result.breakdowns() > 1_000);
    }

    #[test]
    fn deterministic_operative_periods_are_supported() {
        // The C² = 0 point of Figure 6 requires constant operative periods.
        let config = SimulationConfig::builder(2, 1.2)
            .service(Exponential::new(1.0).unwrap())
            .operative(Deterministic::new(34.62).unwrap())
            .inoperative(Exponential::with_mean(1.0).unwrap())
            .warmup(1_000.0)
            .horizon(30_000.0)
            .build()
            .unwrap();
        let result = BreakdownQueueSimulation::new(config).run(5).unwrap();
        // Availability = 34.62/35.62 ≈ 0.972 -> ~1.94 operative servers on average.
        assert!((result.mean_operative_servers() - 1.944).abs() < 0.05);
        assert!(result.mean_queue_length() > 1.0);
    }

    #[test]
    fn hyperexponential_periods_increase_queue_compared_to_exponential() {
        // Same means, different variability: the hyperexponential case should produce a
        // longer queue (the message of Figures 6 and 7).
        let mean_operative = 34.62;
        let lambda = 1.7;
        let build = |operative: HyperExponential| {
            SimulationConfig::builder(2, lambda)
                .service(Exponential::new(1.0).unwrap())
                .operative(operative)
                .inoperative(Exponential::with_mean(5.0).unwrap())
                .warmup(20_000.0)
                .horizon(400_000.0)
                .build()
                .unwrap()
        };
        let exponential = build(HyperExponential::exponential(1.0 / mean_operative).unwrap());
        let hyper = build(HyperExponential::with_mean_and_scv(mean_operative, 8.0).unwrap());
        let l_exp = BreakdownQueueSimulation::new(exponential).run(1).unwrap().mean_queue_length();
        let l_hyper = BreakdownQueueSimulation::new(hyper).run(1).unwrap().mean_queue_length();
        assert!(l_hyper > l_exp, "hyper {l_hyper} vs exp {l_exp}");
    }

    #[test]
    fn response_time_percentiles_match_mm1_theory() {
        // In an M/M/1 queue the stationary response time is exponential with rate µ−λ,
        // so the 90th percentile is ln(10)/(µ−λ).
        let config = reliable_servers_config(1, 0.5);
        let result = BreakdownQueueSimulation::new(config).run(21).unwrap();
        let p50 = result.response_time_percentile(0.5).unwrap();
        let p90 = result.response_time_percentile(0.9).unwrap();
        let p99 = result.response_time_percentile(0.99).unwrap();
        assert!(p50 < p90 && p90 < p99);
        let expected_p90 = 10.0_f64.ln() / 0.5;
        assert!((p90 - expected_p90).abs() / expected_p90 < 0.1, "p90 {p90} vs {expected_p90}");
        assert!(result.response_time_percentile(1.5).is_none());
        assert!(result.response_time_percentile(0.0).is_none());
        assert!(result.response_time_percentile(-0.5).is_none());
        assert!(result.response_time_percentile(f64::NAN).is_none());
        assert!(!result.response_times().is_empty());
        // fraction = 1.0 is accepted and yields the sample maximum.
        let p100 = result.response_time_percentile(1.0).unwrap();
        assert_eq!(p100, *result.response_times().last().unwrap());
        assert!(p100 >= p99);
    }

    /// A hand-built result, for exercising the accessors on edge-case windows that
    /// the builder (which demands `warmup < horizon`) cannot produce.
    fn synthetic_result(measured_time: f64, completed: u64) -> SimulationResult {
        SimulationResult {
            mean_queue_length: 0.0,
            mean_response_time: 0.0,
            response_time_std_error: 0.0,
            mean_operative_servers: 0.0,
            mean_busy_servers: 0.0,
            completed_jobs: completed,
            completed_after_warmup: completed,
            arrived_jobs: completed,
            breakdowns: 0,
            measured_time,
            sorted_response_times: Vec::new(),
        }
    }

    #[test]
    fn percentiles_interpolate_between_order_statistics() {
        // Hyndman–Fan type 7 on {1, 2, 3, 4, 5}: the p-quantile sits at rank
        // 1 + 4p, linearly interpolated — deterministic, exact values.
        let mut result = synthetic_result(10.0, 5);
        result.sorted_response_times = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(result.response_time_percentile(0.5).unwrap(), 3.0);
        assert_eq!(result.response_time_percentile(0.25).unwrap(), 2.0);
        // p = 0.9 → rank 4.6 → 4 + 0.6·(5 − 4).
        assert!((result.response_time_percentile(0.9).unwrap() - 4.6).abs() < 1e-12);
        // p = 0.1 → rank 1.4.
        assert!((result.response_time_percentile(0.1).unwrap() - 1.4).abs() < 1e-12);
        assert_eq!(result.response_time_percentile(1.0).unwrap(), 5.0);
        // A single sample answers every fraction with itself.
        result.sorted_response_times = vec![7.5];
        assert_eq!(result.response_time_percentile(0.01).unwrap(), 7.5);
        assert_eq!(result.response_time_percentile(0.99).unwrap(), 7.5);
    }

    #[test]
    fn throughput_of_an_empty_measurement_window_is_zero() {
        // A zero-length (or degenerate negative) window observed nothing: the rate is
        // 0, not completions divided by the smallest positive f64 (≈ 4.5e+307 per
        // completed job).
        assert_eq!(synthetic_result(0.0, 5).throughput(), 0.0);
        assert_eq!(synthetic_result(-1.0, 5).throughput(), 0.0);
        // A real window still reports completions per unit time.
        assert_eq!(synthetic_result(10.0, 5).throughput(), 0.5);
    }

    #[test]
    fn heterogeneous_builder_validates() {
        let ok = SimulationConfig::heterogeneous(1.0)
            .class(2, 2.0, Exponential::with_mean(50.0).unwrap(), Exponential::new(5.0).unwrap())
            .class(3, 1.0, Exponential::with_mean(80.0).unwrap(), Exponential::new(2.0).unwrap())
            .build()
            .unwrap();
        assert_eq!(ok.servers(), 5);
        assert_eq!(ok.class_count(), 2);
        assert!(matches!(
            SimulationConfig::heterogeneous(1.0).build(),
            Err(SimError::MissingConfiguration(_))
        ));
        assert!(matches!(
            SimulationConfig::heterogeneous(1.0)
                .class(0, 1.0, Exponential::new(1.0).unwrap(), Exponential::new(1.0).unwrap())
                .build(),
            Err(SimError::InvalidParameter { name: "servers", .. })
        ));
        assert!(matches!(
            SimulationConfig::heterogeneous(1.0)
                .class(1, -1.0, Exponential::new(1.0).unwrap(), Exponential::new(1.0).unwrap())
                .build(),
            Err(SimError::InvalidParameter { name: "service_rate", .. })
        ));
    }

    #[test]
    fn heterogeneous_single_class_matches_mm1_with_scaled_rate() {
        // One reliable server with service rate 2 fed at λ = 1: M/M/1 with ρ = 0.5.
        let config = SimulationConfig::heterogeneous(1.0)
            .class(
                1,
                2.0,
                Exponential::with_mean(1e9).unwrap(),
                Exponential::with_mean(1e-6).unwrap(),
            )
            .warmup(2_000.0)
            .horizon(60_000.0)
            .build()
            .unwrap();
        let result = BreakdownQueueSimulation::new(config).run(17).unwrap();
        assert!(
            (result.mean_queue_length() - 1.0).abs() < 0.1,
            "L = {}",
            result.mean_queue_length()
        );
    }

    #[test]
    fn heterogeneous_fast_class_takes_priority() {
        // A fast reliable class plus a slow reliable class.  At light load the fast
        // servers should do almost all the work: the mean number of busy servers is
        // close to λ/µ_fast, well below what slow-first dispatch would give.
        let config = SimulationConfig::heterogeneous(0.9)
            .class(
                2,
                3.0,
                Exponential::with_mean(1e9).unwrap(),
                Exponential::with_mean(1e-6).unwrap(),
            )
            .class(
                2,
                0.5,
                Exponential::with_mean(1e9).unwrap(),
                Exponential::with_mean(1e-6).unwrap(),
            )
            .warmup(2_000.0)
            .horizon(60_000.0)
            .build()
            .unwrap();
        let result = BreakdownQueueSimulation::new(config).run(23).unwrap();
        // Fast-first dispatch: offered work 0.9 at rate 3 keeps ~0.3 servers busy.
        assert!(
            result.mean_busy_servers() < 0.6,
            "busy {} suggests slow servers are being used first",
            result.mean_busy_servers()
        );
    }

    #[test]
    fn heterogeneous_equal_rates_match_legacy_configuration() {
        // Two classes with identical parameters are statistically the same system as
        // the legacy homogeneous configuration (not bit-identical — the RNG streams
        // differ — so compare long-run means).
        let het = SimulationConfig::heterogeneous(1.5)
            .class(
                1,
                1.0,
                Exponential::with_mean(100.0).unwrap(),
                Exponential::with_mean(1.0).unwrap(),
            )
            .class(
                2,
                1.0,
                Exponential::with_mean(100.0).unwrap(),
                Exponential::with_mean(1.0).unwrap(),
            )
            .warmup(5_000.0)
            .horizon(200_000.0)
            .build()
            .unwrap();
        let legacy = SimulationConfig::builder(3, 1.5)
            .service(Exponential::new(1.0).unwrap())
            .operative(Exponential::with_mean(100.0).unwrap())
            .inoperative(Exponential::with_mean(1.0).unwrap())
            .warmup(5_000.0)
            .horizon(200_000.0)
            .build()
            .unwrap();
        let l_het = BreakdownQueueSimulation::new(het).run(5).unwrap().mean_queue_length();
        let l_legacy = BreakdownQueueSimulation::new(legacy).run(5).unwrap().mean_queue_length();
        assert!((l_het - l_legacy).abs() / l_legacy < 0.15, "het {l_het} vs legacy {l_legacy}");
    }

    #[test]
    fn results_are_reproducible_for_a_fixed_seed() {
        let config = reliable_servers_config(2, 1.0);
        let a = BreakdownQueueSimulation::new(config.clone()).run(123).unwrap();
        let b = BreakdownQueueSimulation::new(config).run(123).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hopeless_overload_reports_no_observations_gracefully() {
        let config = SimulationConfig::builder(1, 5.0)
            .service(Exponential::new(1e-6).unwrap())
            .operative(Exponential::with_mean(1e9).unwrap())
            .inoperative(Exponential::with_mean(1.0).unwrap())
            .warmup(0.5)
            .horizon(1.0)
            .build()
            .unwrap();
        // With a tiny horizon there may simply be no completions after warm-up; either a
        // valid result or the NoObservations error is acceptable, but never a panic.
        let _ = BreakdownQueueSimulation::new(config).run(1);
    }
}
