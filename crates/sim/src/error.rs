//! Error type for simulation configuration and execution.

use std::error::Error;
use std::fmt;

use urs_dist::DistError;

/// Errors produced when configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter is outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// A required configuration element (e.g. the service distribution) was not set.
    MissingConfiguration(&'static str),
    /// The measurement phase produced no observations (horizon too short relative to
    /// the warm-up period, or no completed jobs).
    NoObservations(String),
    /// An error bubbled up from the distribution layer.
    Dist(DistError),
    /// A worker thread panicked while running replications in parallel.  The index is
    /// the smallest-indexed replication that panicked (the one a serial run would
    /// have hit first), so the error is independent of the thread count.
    WorkerPanic {
        /// Index of the smallest-indexed replication whose closure panicked.
        index: usize,
        /// The panic payload rendered as text.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { name, value, constraint } => {
                write!(f, "invalid parameter {name} = {value}: {constraint}")
            }
            SimError::MissingConfiguration(what) => {
                write!(f, "missing configuration: {what} must be provided")
            }
            SimError::NoObservations(msg) => write!(f, "no observations collected: {msg}"),
            SimError::Dist(e) => write!(f, "distribution error: {e}"),
            SimError::WorkerPanic { index, message } => {
                write!(f, "worker panicked at parallel replication {index}: {message}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Dist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for SimError {
    fn from(e: DistError) -> Self {
        SimError::Dist(e)
    }
}

impl From<urs_core::WorkerPanic> for SimError {
    /// Lets [`urs_core::ThreadPool::try_par_map`] convert a contained replication
    /// panic into the simulation error type.
    fn from(p: urs_core::WorkerPanic) -> Self {
        SimError::WorkerPanic { index: p.index, message: p.message }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SimError::InvalidParameter { name: "horizon", value: -1.0, constraint: "positive" };
        assert!(e.to_string().contains("horizon"));
        assert!(SimError::MissingConfiguration("service distribution")
            .to_string()
            .contains("service distribution"));
        assert!(SimError::NoObservations("short run".into()).to_string().contains("short run"));
        let from_dist: SimError = DistError::InsufficientData("x".into()).into();
        assert!(from_dist.source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
