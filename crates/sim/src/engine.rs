//! A minimal, reusable discrete-event simulation engine.
//!
//! The engine is nothing more than a simulation clock plus a pending-event set ordered
//! by firing time (ties broken by insertion order, so the simulation is fully
//! deterministic for a given seed).  Events carry an arbitrary payload type; cancelling
//! is supported through handles so that, for example, a scheduled service completion
//! can be invalidated when the server breaks down.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A handle identifying a scheduled event; can be used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// An entry in the pending-event set.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: f64,
    sequence: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other.time.total_cmp(&self.time).then_with(|| other.sequence.cmp(&self.sequence))
    }
}

/// The pending-event set and simulation clock.
///
/// # Example
///
/// ```
/// use urs_sim::engine::EventQueue;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(2.0, "second");
/// queue.schedule(1.0, "first");
/// assert_eq!(queue.pop().map(|(t, e)| (t, e)), Some((1.0, "first")));
/// assert_eq!(queue.now(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    // urs-analyze: allow(hash_collection, reason = "membership-only set (insert/remove/contains); never iterated, so seeding cannot reach results")
    cancelled: std::collections::HashSet<u64>,
    next_sequence: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            // urs-analyze: allow(hash_collection, reason = "membership-only set (insert/remove/contains); never iterated, so seeding cannot reach results")
            cancelled: std::collections::HashSet::new(),
            next_sequence: 0,
            now: 0.0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty event queue with the clock at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulation time (the firing time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of events still pending (including cancelled ones not yet skipped).
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len().min(self.heap.len())
    }

    /// Returns `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Schedules `payload` to fire at absolute time `time` and returns a cancellation
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or lies in the past (before the current clock).
    pub fn schedule(&mut self, time: f64, payload: T) -> EventHandle {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule an event at {time} before the current time {}",
            self.now
        );
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Scheduled { time, sequence, payload });
        EventHandle(sequence)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, payload: T) -> EventHandle {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event.  Cancelling an already-fired or unknown
    /// handle is a no-op.
    pub fn cancel(&mut self, handle: EventHandle) {
        self.cancelled.insert(handle.0);
    }

    /// Pops the next live event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.sequence) {
                continue;
            }
            self.now = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "late");
        q.schedule(1.0, "early-a");
        q.schedule(1.0, "early-b");
        q.schedule(3.0, "middle");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["early-a", "early-b", "middle", "late"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        q.schedule(7.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
        q.pop();
        assert_eq!(q.now(), 7.0);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let keep = q.schedule(1.0, "keep");
        let drop = q.schedule(2.0, "drop");
        let _ = keep;
        q.cancel(drop);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("keep"));
        assert!(q.pop().is_none());
        // Cancelling an already-fired handle is harmless.
        q.cancel(keep);
    }

    #[test]
    fn schedule_in_uses_relative_delay() {
        let mut q = EventQueue::new();
        q.schedule(4.0, "first");
        q.pop();
        q.schedule_in(1.5, "second");
        let (t, _) = q.pop().unwrap();
        assert!((t - 5.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(3.0, ());
        q.pop();
        q.schedule(1.0, ());
    }
}
