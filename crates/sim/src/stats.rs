//! Online statistics used by the simulator.

/// Time-weighted average of a piecewise-constant quantity (e.g. the number of jobs in
/// the system): each observed value is weighted by how long it persisted.
///
/// # Example
///
/// ```
/// use urs_sim::TimeWeightedAverage;
///
/// let mut avg = TimeWeightedAverage::new(0.0);
/// avg.record(0.0, 2.0); // value 2 from t = 0
/// avg.record(1.0, 4.0); // value 4 from t = 1
/// assert_eq!(avg.mean_until(2.0), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeightedAverage {
    start_time: f64,
    last_time: f64,
    last_value: f64,
    integral: f64,
}

impl TimeWeightedAverage {
    /// Creates an accumulator that starts measuring at `start_time` with value 0.
    pub fn new(start_time: f64) -> Self {
        TimeWeightedAverage { start_time, last_time: start_time, last_value: 0.0, integral: 0.0 }
    }

    /// Records that the tracked quantity changed to `value` at time `time`.
    ///
    /// Changes reported before the start time simply update the current value without
    /// accumulating area (used to seed the state at the end of the warm-up period).
    pub fn record(&mut self, time: f64, value: f64) {
        if time <= self.start_time {
            self.last_time = self.start_time;
            self.last_value = value;
            return;
        }
        let effective_last = self.last_time.max(self.start_time);
        self.integral += self.last_value * (time - effective_last);
        self.last_time = time;
        self.last_value = value;
    }

    /// The time-weighted mean over `[start_time, end_time]`.
    ///
    /// Returns 0 if the interval has zero length.
    pub fn mean_until(&self, end_time: f64) -> f64 {
        let duration = end_time - self.start_time;
        if duration <= 0.0 {
            return 0.0;
        }
        let effective_last = self.last_time.max(self.start_time);
        let total = self.integral + self.last_value * (end_time - effective_last);
        total / duration
    }

    /// The current value of the tracked quantity.
    pub fn current_value(&self) -> f64 {
        self.last_value
    }
}

/// Welford's online algorithm for the mean and variance of a stream of observations.
///
/// # Example
///
/// ```
/// use urs_sim::WelfordAccumulator;
///
/// let mut acc = WelfordAccumulator::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 5.0);
/// assert!((acc.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WelfordAccumulator {
    count: u64,
    mean: f64,
    m2: f64,
}

impl WelfordAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`; 0 with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_average_basic() {
        let mut avg = TimeWeightedAverage::new(0.0);
        avg.record(0.0, 1.0);
        avg.record(2.0, 3.0);
        avg.record(3.0, 0.0);
        // ∫ = 1·2 + 3·1 + 0·1 = 5 over 4 time units
        assert!((avg.mean_until(4.0) - 1.25).abs() < 1e-12);
        assert_eq!(avg.current_value(), 0.0);
    }

    #[test]
    fn warmup_changes_do_not_accumulate() {
        let mut avg = TimeWeightedAverage::new(10.0);
        avg.record(2.0, 5.0); // before the measurement window
        avg.record(12.0, 1.0);
        // Between t=10 and t=12 the value was 5; then 1 until t=14.
        assert!((avg.mean_until(14.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_mean_is_zero() {
        let avg = TimeWeightedAverage::new(5.0);
        assert_eq!(avg.mean_until(5.0), 0.0);
        assert_eq!(avg.mean_until(4.0), 0.0);
    }

    #[test]
    fn welford_matches_direct_computation() {
        let data = [1.5, -2.0, 3.25, 0.0, 7.5, 7.5, -1.25];
        let mut acc = WelfordAccumulator::new();
        for &x in &data {
            acc.push(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.sample_variance() - var).abs() < 1e-12);
        assert_eq!(acc.count(), data.len() as u64);
        assert!(acc.standard_error() > 0.0);
    }

    #[test]
    fn welford_edge_cases() {
        let mut acc = WelfordAccumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
        assert_eq!(acc.standard_error(), 0.0);
        acc.push(3.0);
        assert_eq!(acc.mean(), 3.0);
        assert_eq!(acc.sample_variance(), 0.0);
    }
}
