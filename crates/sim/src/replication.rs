//! Independent replications and confidence intervals.
//!
//! Replications are statistically independent by construction (consecutive seeds feed
//! independent RNG streams), so [`Replications::run`] fans them out across the worker
//! threads of a [`ThreadPool`]: replication `i` always uses seed `base_seed + i` and
//! the per-replication results are aggregated in replication order, making the summary
//! bit-identical for every thread count.

use urs_core::ThreadPool;

use crate::error::SimError;
use crate::queue_sim::{BreakdownQueueSimulation, SimulationResult};
use crate::stats::WelfordAccumulator;
use crate::Result;

/// A two-sided confidence interval for a mean estimated from independent replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (mean across replications).
    pub mean: f64,
    /// Half-width of the interval at the requested confidence level.
    pub half_width: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Lower bound of the interval.
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Returns `true` if the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower() && value <= self.upper()
    }

    /// Relative half-width (half-width divided by |mean|; infinite for a zero mean).
    pub fn relative_half_width(&self) -> f64 {
        // urs-analyze: allow(float_cmp, reason = "exact-zero guard against division by zero; any non-zero mean, however small, has a well-defined ratio")
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Two-sided Student-t critical value for the given degrees of freedom at the 95%
/// confidence level (values for small `df` tabulated, asymptotic 1.96 beyond).
fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        TABLE[(df - 1) as usize]
    } else if df <= 60 {
        2.0
    } else {
        1.96
    }
}

/// Summary of a set of independent replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationSummary {
    /// Number of replications performed.
    pub replications: usize,
    /// 95% confidence interval for the mean queue length `L`.
    pub mean_queue_length: ConfidenceInterval,
    /// 95% confidence interval for the mean response time `W`.
    pub mean_response_time: ConfidenceInterval,
    /// 95% confidence interval for the average number of operative servers.
    pub mean_operative_servers: ConfidenceInterval,
}

/// Runs independent replications of a simulation with consecutive seeds and aggregates
/// them into confidence intervals.
///
/// # Example
///
/// ```no_run
/// use urs_dist::Exponential;
/// use urs_sim::{BreakdownQueueSimulation, Replications, SimulationConfig};
///
/// # fn main() -> Result<(), urs_sim::SimError> {
/// let config = SimulationConfig::builder(2, 1.0)
///     .service(Exponential::new(1.0)?)
///     .operative(Exponential::with_mean(100.0)?)
///     .inoperative(Exponential::with_mean(1.0)?)
///     .build()?;
/// let summary = Replications::new(10, 1).run(&BreakdownQueueSimulation::new(config))?;
/// println!("L = {} ± {}", summary.mean_queue_length.mean, summary.mean_queue_length.half_width);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replications {
    count: usize,
    base_seed: u64,
}

impl Replications {
    /// Creates a replication runner performing `count` replications seeded
    /// `base_seed, base_seed+1, …`.
    pub fn new(count: usize, base_seed: u64) -> Self {
        Replications { count, base_seed }
    }

    /// Runs the replications — in parallel on the default [`ThreadPool`] — and
    /// aggregates the results.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when fewer than two replications are
    /// requested (no variance estimate is possible), and propagates failures of the
    /// individual runs.
    pub fn run(&self, simulation: &BreakdownQueueSimulation) -> Result<ReplicationSummary> {
        self.run_with(simulation, &ThreadPool::default())
    }

    /// [`run`](Self::run) with an explicit worker pool.
    ///
    /// Replication `i` is always seeded `base_seed + i` and the summary aggregates
    /// results in replication order, so the outcome is bit-identical for every thread
    /// count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Self::run).
    pub fn run_with(
        &self,
        simulation: &BreakdownQueueSimulation,
        pool: &ThreadPool,
    ) -> Result<ReplicationSummary> {
        if self.count < 2 {
            return Err(SimError::InvalidParameter {
                name: "replications",
                value: self.count as f64,
                constraint: "at least 2 replications are needed for a confidence interval",
            });
        }
        let seeds: Vec<u64> = (0..self.count as u64).map(|i| self.base_seed + i).collect();
        let results: Vec<SimulationResult> =
            pool.try_par_map(&seeds, |&seed| simulation.run(seed))?;
        Ok(ReplicationSummary {
            replications: self.count,
            mean_queue_length: interval(results.iter().map(|r| r.mean_queue_length())),
            mean_response_time: interval(results.iter().map(|r| r.mean_response_time())),
            mean_operative_servers: interval(results.iter().map(|r| r.mean_operative_servers())),
        })
    }
}

/// A response-time percentile estimated across independent replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentileCi {
    /// The percentile fraction (e.g. `0.99` for P99).
    pub fraction: f64,
    /// 95% confidence interval of the per-replication percentile estimates.
    pub interval: ConfidenceInterval,
}

impl Replications {
    /// Runs the replications and estimates response-time percentiles with 95%
    /// confidence intervals, one [`PercentileCi`] per requested fraction.
    ///
    /// Each replication contributes one type-7 interpolated quantile (see
    /// [`SimulationResult::response_time_percentile`]); the interval is the Student-t
    /// interval over those independent per-replication estimates, which is the
    /// standard replication/deletion construction — and the yardstick the analytic
    /// percentiles of `urs_core`'s `response` module are validated against.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run), plus [`SimError::InvalidParameter`] for fractions
    /// outside `(0, 1]` and [`SimError::NoObservations`] when a replication completed
    /// no job after its warm-up (no percentile exists).
    pub fn run_percentiles(
        &self,
        simulation: &BreakdownQueueSimulation,
        fractions: &[f64],
    ) -> Result<Vec<PercentileCi>> {
        self.run_percentiles_with(simulation, fractions, &ThreadPool::default())
    }

    /// [`run_percentiles`](Self::run_percentiles) with an explicit worker pool;
    /// bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// As [`run_percentiles`](Self::run_percentiles).
    pub fn run_percentiles_with(
        &self,
        simulation: &BreakdownQueueSimulation,
        fractions: &[f64],
        pool: &ThreadPool,
    ) -> Result<Vec<PercentileCi>> {
        if self.count < 2 {
            return Err(SimError::InvalidParameter {
                name: "replications",
                value: self.count as f64,
                constraint: "at least 2 replications are needed for a confidence interval",
            });
        }
        for &fraction in fractions {
            if !(fraction > 0.0 && fraction <= 1.0) {
                return Err(SimError::InvalidParameter {
                    name: "fraction",
                    value: fraction,
                    constraint: "percentile fractions must lie in (0, 1]",
                });
            }
        }
        let seeds: Vec<u64> = (0..self.count as u64).map(|i| self.base_seed + i).collect();
        let results: Vec<SimulationResult> =
            pool.try_par_map(&seeds, |&seed| simulation.run(seed))?;
        fractions
            .iter()
            .map(|&fraction| {
                let estimates = results
                    .iter()
                    .map(|r| {
                        r.response_time_percentile(fraction).ok_or_else(|| {
                            SimError::NoObservations(
                                "a replication completed no job after its warm-up, so no \
                                 response-time percentile exists"
                                    .into(),
                            )
                        })
                    })
                    .collect::<Result<Vec<f64>>>()?;
                Ok(PercentileCi { fraction, interval: interval(estimates.into_iter()) })
            })
            .collect()
    }
}

fn interval(values: impl Iterator<Item = f64>) -> ConfidenceInterval {
    let mut acc = WelfordAccumulator::new();
    for v in values {
        acc.push(v);
    }
    let df = acc.count().saturating_sub(1);
    ConfidenceInterval {
        mean: acc.mean(),
        half_width: t_critical_95(df) * acc.standard_error(),
        level: 0.95,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue_sim::SimulationConfig;
    use urs_dist::Exponential;

    fn quick_simulation(lambda: f64) -> BreakdownQueueSimulation {
        let config = SimulationConfig::builder(1, lambda)
            .service(Exponential::new(1.0).unwrap())
            .operative(Exponential::with_mean(1e9).unwrap())
            .inoperative(Exponential::with_mean(1e-6).unwrap())
            .warmup(500.0)
            .horizon(15_000.0)
            .build()
            .unwrap();
        BreakdownQueueSimulation::new(config)
    }

    #[test]
    fn confidence_interval_arithmetic() {
        let ci = ConfidenceInterval { mean: 10.0, half_width: 1.5, level: 0.95 };
        assert_eq!(ci.lower(), 8.5);
        assert_eq!(ci.upper(), 11.5);
        assert!(ci.contains(9.0));
        assert!(!ci.contains(12.0));
        assert!((ci.relative_half_width() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn t_table_monotone_towards_normal() {
        assert!(t_critical_95(1) > t_critical_95(5));
        assert!(t_critical_95(5) > t_critical_95(30));
        assert_eq!(t_critical_95(1000), 1.96);
        assert_eq!(t_critical_95(0), f64::INFINITY);
    }

    #[test]
    fn replications_cover_the_true_mm1_value() {
        // M/M/1 with ρ = 0.5: L = 1.
        let summary = Replications::new(8, 42).run(&quick_simulation(0.5)).unwrap();
        assert_eq!(summary.replications, 8);
        assert!(
            summary.mean_queue_length.contains(1.0),
            "interval [{}, {}] should contain 1.0",
            summary.mean_queue_length.lower(),
            summary.mean_queue_length.upper()
        );
        assert!(summary.mean_response_time.mean > 0.0);
        assert!((summary.mean_operative_servers.mean - 1.0).abs() < 1e-3);
    }

    #[test]
    fn parallel_replications_bit_identical_to_serial() {
        // Per-replication seeding is by index, so the summary must not depend on the
        // thread count — down to the last bit.
        let simulation = quick_simulation(0.7);
        let runner = Replications::new(6, 13);
        let serial = runner.run_with(&simulation, &ThreadPool::serial()).unwrap();
        for threads in [2, 4] {
            let parallel = runner.run_with(&simulation, &ThreadPool::new(threads)).unwrap();
            assert_eq!(serial, parallel, "thread count {threads} changed the summary");
        }
        // The implicit-pool entry point agrees as well.
        assert_eq!(serial, runner.run(&simulation).unwrap());
    }

    #[test]
    fn percentile_intervals_cover_mm1_theory_and_are_deterministic() {
        // M/M/1 at ρ = 0.5: response time is Exp(0.5), so P90 = ln(10)/0.5.
        let simulation = quick_simulation(0.5);
        let runner = Replications::new(6, 7);
        let fractions = [0.5, 0.9];
        let cis = runner.run_percentiles(&simulation, &fractions).unwrap();
        assert_eq!(cis.len(), 2);
        assert_eq!(cis[0].fraction, 0.5);
        let p90 = &cis[1];
        let expected = 10.0_f64.ln() / 0.5;
        assert!(
            (p90.interval.mean - expected).abs()
                < 3.0 * p90.interval.half_width.max(0.05 * expected),
            "P90 {} ± {} vs theory {expected}",
            p90.interval.mean,
            p90.interval.half_width
        );
        assert!(cis[0].interval.mean < cis[1].interval.mean);
        // Thread-count invariance, like the mean summaries.
        let serial =
            runner.run_percentiles_with(&simulation, &fractions, &ThreadPool::serial()).unwrap();
        let parallel =
            runner.run_percentiles_with(&simulation, &fractions, &ThreadPool::new(3)).unwrap();
        assert_eq!(serial, parallel);
        // Degenerate inputs are rejected.
        assert!(runner.run_percentiles(&simulation, &[0.0]).is_err());
        assert!(runner.run_percentiles(&simulation, &[1.2]).is_err());
        assert!(Replications::new(1, 0).run_percentiles(&simulation, &[0.5]).is_err());
    }

    #[test]
    fn too_few_replications_rejected() {
        assert!(matches!(
            Replications::new(1, 0).run(&quick_simulation(0.5)),
            Err(SimError::InvalidParameter { .. })
        ));
    }
}
