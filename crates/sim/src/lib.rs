//! Discrete-event simulation of multi-server queues with server breakdowns and repairs.
//!
//! The analytic model of the paper assumes Poisson arrivals, exponential service and
//! phase-type (hyperexponential) operative/inoperative periods.  The simulator in this
//! crate relaxes all of those assumptions — any [`urs_dist::ContinuousDistribution`]
//! can be used for service, operative and inoperative periods — which serves two
//! purposes:
//!
//! 1. **independent validation** of the exact spectral-expansion solution (the
//!    simulator shares no code with the analytic solvers beyond the distribution
//!    types), and
//! 2. **experiments the analytic model cannot express**, such as the deterministic
//!    (`C² = 0`) operative periods that provide the first point of each curve in the
//!    paper's Figure 6.
//!
//! The crate is split into a small reusable discrete-event [`engine`], the
//! breakdown-queue model itself ([`BreakdownQueueSimulation`]), and replication /
//! confidence-interval machinery ([`Replications`]).
//!
//! # Paper map
//!
//! | Paper artefact | Here |
//! |---|---|
//! | validation of the exact solution (Table, §3) | [`BreakdownQueueSimulation`] vs `urs_core` |
//! | deterministic `C² = 0` point of Figure 6 | [`urs_dist::Deterministic`] operative periods |
//! | simulation confidence intervals | [`Replications`], [`ConfidenceInterval`] |
//! | §6 future work: distinct server classes | [`SimulationConfig::heterogeneous`] (fastest-first dispatch, work-based preempt-resume, migration to faster repaired servers) |
//!
//! Replications run in parallel by default: they are independent by construction
//! (consecutive seeds), so [`Replications::run`] fans them out over a
//! [`urs_core::ThreadPool`] while keeping per-replication seeding and result order
//! fixed — summaries are bit-identical for every thread count.  Use
//! [`Replications::run_with`] to control the pool explicitly.
//!
//! # Example
//!
//! ```
//! use urs_dist::{Exponential, HyperExponential};
//! use urs_sim::{BreakdownQueueSimulation, SimulationConfig};
//!
//! # fn main() -> Result<(), urs_sim::SimError> {
//! let config = SimulationConfig::builder(2, 0.8)
//!     .service(Exponential::new(1.0)?)
//!     .operative(HyperExponential::new(&[0.7246, 0.2754], &[0.1663, 0.0091])?)
//!     .inoperative(Exponential::with_mean(0.04)?)
//!     .warmup(1_000.0)
//!     .horizon(20_000.0)
//!     .build()?;
//! let result = BreakdownQueueSimulation::new(config).run(42)?;
//! assert!(result.mean_queue_length() > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod error;
mod queue_sim;
mod replication;
mod stats;

pub mod engine;

pub use error::SimError;
pub use queue_sim::{
    BreakdownQueueSimulation, HeterogeneousConfigBuilder, SimulationConfig,
    SimulationConfigBuilder, SimulationResult,
};
pub use replication::{ConfidenceInterval, PercentileCi, ReplicationSummary, Replications};
pub use stats::{TimeWeightedAverage, WelfordAccumulator};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;
