//! End-to-end contracts of the `urs-server` binary:
//!
//! * **Restart determinism** — replaying one trace of ≥1,000 mixed queries against
//!   a fresh process produces a byte-identical response log, for 1 and 4 worker
//!   threads alike (cache state, batching boundaries and thread count must never
//!   leak into answers).
//! * **Malformed-input robustness** — a fuzz pile of broken lines gets one error
//!   response each, the process never panics, and queries after garbage still
//!   answer correctly.

use std::io::Write;
use std::process::{Child, Command, Stdio};

fn spawn_server(threads: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_urs-server"))
        .env("URS_THREADS", threads)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("failed to spawn urs-server")
}

/// Feeds `input` to a fresh server process and returns its stdout.  The writer
/// runs on its own thread so a full stdout pipe can never deadlock the test.
fn run_server(threads: &str, input: String) -> String {
    let mut child = spawn_server(threads);
    let mut stdin = child.stdin.take().expect("stdin piped");
    let writer = std::thread::spawn(move || {
        let _ = stdin.write_all(input.as_bytes());
        // dropping stdin closes the pipe → server drains and exits
    });
    let output = child.wait_with_output().expect("server did not exit");
    writer.join().expect("writer thread panicked");
    assert!(output.status.success(), "server exited with {:?}", output.status);
    String::from_utf8(output.stdout).expect("responses must be UTF-8")
}

fn lifecycle(index: usize) -> String {
    match index % 3 {
        0 => "\"paper\"".to_string(),
        1 => {
            let xi = 0.05 + 0.05 * (index % 4) as f64;
            format!("{{\"breakdown_rate\":{xi},\"repair_rate\":2.0}}")
        }
        _ => "{\"operative_mean\":34.62,\"operative_scv\":4.6,\"repair_rate\":0.2}".to_string(),
    }
}

fn config(servers: usize, lambda: f64, lifecycle_index: usize) -> String {
    format!(
        "{{\"servers\":{servers},\"arrival_rate\":{lambda},\"service_rate\":1.0,\
         \"lifecycle\":{}}}",
        lifecycle(lifecycle_index)
    )
}

/// A deterministic trace of `n` mixed queries over a handful of skeletons, so the
/// shared cache gets both hits and misses.  No `stats` queries: those are the
/// documented exception to byte-identical replay.
fn trace(n: usize) -> String {
    let mut lines = Vec::with_capacity(n);
    for i in 0..n {
        let servers = 3 + i % 3;
        let lambda = 0.4 + 0.3 * ((i / 3) % 5) as f64;
        let line = match i % 17 {
            13 => format!(
                "{{\"type\":\"cost_sweep\",\"config\":{},\"holding_cost\":4.0,\
                 \"server_cost\":1.0,\"min_servers\":3,\"max_servers\":5}}",
                config(4, 1.2, i)
            ),
            14 => format!(
                "{{\"type\":\"provisioning\",\"config\":{},\"min_servers\":3,\
                 \"max_servers\":5}}",
                config(4, 1.2, i)
            ),
            15 => format!(
                "{{\"type\":\"percentiles\",\"config\":{},\"fractions\":[0.5,0.95]}}",
                config(3, 0.8, i)
            ),
            16 => format!(
                "{{\"type\":\"sla_sweep\",\"config\":{},\"server_counts\":[3,4],\
                 \"fractions\":[0.9]}}",
                config(3, 0.8, i)
            ),
            _ => format!("{{\"type\":\"solve\",\"config\":{}}}", config(servers, lambda, i)),
        };
        lines.push(line);
    }
    lines.join("\n") + "\n"
}

#[test]
fn replaying_a_trace_is_byte_identical_across_restarts_and_thread_counts() {
    let input = trace(1000);
    let reference = run_server("1", input.clone());
    assert_eq!(reference.lines().count(), 1000, "one response line per query");
    assert!(
        reference.lines().all(|l| !l.starts_with("{\"error\"")),
        "the trace contains only valid queries"
    );
    // Fresh process, same thread count: the response log must not depend on
    // process history (cache warm-up order, batch boundaries).
    let restarted = run_server("1", input.clone());
    assert_eq!(reference, restarted, "restart changed the response log");
    // Fresh process, four workers: parallel fan-out must not change a byte.
    let parallel = run_server("4", input);
    assert_eq!(reference, parallel, "URS_THREADS=4 changed the response log");
}

#[test]
fn malformed_input_fuzz_never_panics_and_always_answers() {
    let mut lines: Vec<String> = vec![
        String::new(),
        " ".to_string(),
        "null".to_string(),
        "true".to_string(),
        "[]".to_string(),
        "{}".to_string(),
        "}{".to_string(),
        "{\"type\":}".to_string(),
        "{\"type\":\"solve\"".to_string(),
        "{\"type\":\"solve\",\"config\":{}}".to_string(),
        "{\"type\":\"solve\",\"config\":[]}".to_string(),
        "{\"type\":\"solve\",\"config\":{\"servers\":-3,\"arrival_rate\":1.0,\
         \"service_rate\":1.0,\"lifecycle\":\"paper\"}}"
            .to_string(),
        "{\"type\":\"solve\",\"config\":{\"servers\":1e9,\"arrival_rate\":1.0,\
         \"service_rate\":1.0,\"lifecycle\":\"paper\"}}"
            .to_string(),
        "{\"type\":\"solve\",\"config\":{\"servers\":2,\"arrival_rate\":1e999,\
         \"service_rate\":1.0,\"lifecycle\":\"paper\"}}"
            .to_string(),
        "{\"type\":\"percentiles\",\"config\":{\"servers\":2,\"arrival_rate\":0.5,\
         \"service_rate\":1.0,\"lifecycle\":\"paper\"},\"fractions\":[2.0]}"
            .to_string(),
        "\u{0}\u{1}\u{2}".to_string(),
        "\"unterminated".to_string(),
        "{\"a\":\"\\udc00\"}".to_string(),
        format!("{}{}", "[".repeat(2000), "]".repeat(2000)),
        "9".repeat(5000),
        format!("{{\"type\":\"solve\",\"padding\":\"{}\"}}", "x".repeat(100_000)),
    ];
    // Interleave a known-good query so we can check the server stays healthy
    // after every piece of garbage.
    let good = "{\"type\":\"solve\",\"config\":{\"servers\":3,\"arrival_rate\":1.0,\
                \"service_rate\":1.0,\"lifecycle\":\"paper\"}}";
    let garbage_count = lines.len();
    let mut interleaved = Vec::new();
    for line in lines.drain(..) {
        interleaved.push(line);
        interleaved.push(good.to_string());
    }
    let input = interleaved.join("\n") + "\n";
    let output = run_server("2", input);
    let responses: Vec<&str> = output.lines().collect();
    assert_eq!(responses.len(), garbage_count * 2, "one response per line, even for garbage");
    let mut good_response = None;
    for pair in responses.chunks(2) {
        let [garbage, good] = pair else { panic!("odd response count") };
        assert!(garbage.starts_with("{\"error\""), "garbage got a non-error reply: {garbage}");
        assert!(good.contains("\"type\":\"solution\""), "good query failed after garbage: {good}");
        let expected = good_response.get_or_insert(good.to_string()).clone();
        assert_eq!(*good, expected, "the good query's answer drifted");
    }
}

#[test]
fn stats_queries_report_cache_and_latency_metrics() {
    let mut input = trace(34);
    input.push_str("{\"type\":\"stats\"}\n");
    let output = run_server("1", input);
    let last = output.lines().last().expect("stats response missing");
    assert!(last.contains("\"type\":\"stats\""), "unexpected stats line: {last}");
    assert!(last.contains("\"total_hit_rate\""));
    assert!(last.contains("\"server\":{"));
    assert!(last.contains("\"p99_micros\""));
}

#[test]
fn tcp_mode_answers_over_a_socket() {
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    let mut child = Command::new(env!("CARGO_BIN_EXE_urs-server"))
        .args(["--tcp", "127.0.0.1:0"])
        .env("URS_THREADS", "1")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("failed to spawn urs-server --tcp");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).expect("read listen banner");
    let addr = banner.trim().strip_prefix("listening on ").expect("listen banner").to_string();

    let mut stream = TcpStream::connect(&addr).expect("connect to urs-server");
    let good = "{\"type\":\"solve\",\"config\":{\"servers\":3,\"arrival_rate\":1.0,\
                \"service_rate\":1.0,\"lifecycle\":\"paper\"}}\n";
    stream.write_all(good.as_bytes()).expect("send query");
    stream.write_all(b"garbage\n").expect("send garbage");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut first = String::new();
    reader.read_line(&mut first).expect("read solution");
    assert!(first.contains("\"type\":\"solution\""), "unexpected reply: {first}");
    let mut second = String::new();
    reader.read_line(&mut second).expect("read error reply");
    assert!(second.starts_with("{\"error\""), "unexpected reply: {second}");

    child.kill().expect("stop server");
    let _ = child.wait();
}
