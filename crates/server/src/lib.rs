//! The serving layer over [`urs_core::Engine`]: a persistent process answering
//! newline-delimited JSON queries (see [`urs_core::engine`] for the grammar) from
//! one long-lived solver cache.
//!
//! The library owns everything that must be **panic-free**: line parsing, batch
//! assembly, response rendering and the metrics bookkeeping.  The `urs-server`
//! binary is a thin I/O loop (stdin/stdout or TCP) that feeds batches of raw lines
//! to [`Server::respond_batch`] and measures wall-clock latency — the only thing
//! the library cannot do deterministically.
//!
//! # Contracts
//!
//! * **No panic, whatever the input.**  Malformed lines become
//!   `{"error":…,"type":"error"}` responses; so do queries the model layer
//!   rejects.  A bad query never disturbs its batch-mates and never poisons the
//!   engine.
//! * **Byte-identical replay.**  For every query except `stats`, the response is a
//!   deterministic function of the query alone: replaying a trace against a fresh
//!   process — at any `URS_THREADS`, with any batch boundaries — reproduces the
//!   response log byte for byte.  `stats` responses depend on cache and latency
//!   history and are excluded from the contract.
//!
//! Two cache layers serve a repeated query: the engine's [`SolverCache`]
//! (skeletons, eigensystems, solutions, transforms) makes *related* queries cheap,
//! and the server's response memo answers an *exactly repeated* query — keyed by
//! its canonical parameter digest, so whitespace and key order don't matter — from
//! the stored bytes of its first response.  Memoisation cannot break replay: the
//! first rendering is deterministic, and the memo returns those exact bytes.
//!
//! [`SolverCache`]: urs_core::SolverCache

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use urs_core::engine::json::{self, Value};
use urs_core::engine::{Query, QueryResult};
use urs_core::Engine;

/// Upper bound on how many in-flight lines the binary coalesces into one
/// [`Server::respond_batch`] call (and therefore one engine plan).
pub const MAX_BATCH: usize = 64;

/// Rendered responses memoised by canonical query key.  Sized so a steady serving
/// mix of sweeps and solves stays resident; beyond that the oldest entry is evicted.
const RESPONSE_MEMO_CAPACITY: usize = 4096;

/// Number of power-of-two latency buckets (bucket `i` holds samples whose
/// microsecond latency has `i` significant bits, i.e. `[2^(i-1), 2^i)`).
const LATENCY_BUCKETS: usize = 40;

/// Request counters and a power-of-two latency histogram, all lock-free.
///
/// The library counts requests, errors and batches itself; latencies are measured
/// by the binary (the library never reads the clock) and fed in via
/// [`record_latency`](Self::record_latency).
#[derive(Debug)]
pub struct Metrics {
    requests: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    response_hits: AtomicU64,
    response_misses: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            response_hits: AtomicU64::new(0),
            response_misses: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A point-in-time copy of the [`Metrics`] counters with derived quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Total queries answered (including error responses).
    pub requests: u64,
    /// Responses that reported an error.
    pub errors: u64,
    /// Number of batches executed.
    pub batches: u64,
    /// Queries answered verbatim from the response memo.
    pub response_hits: u64,
    /// Cacheable queries that had to be computed (and were then memoised).
    pub response_misses: u64,
    /// Latency samples recorded so far.
    pub latency_samples: u64,
    /// Median per-request latency in microseconds (upper bucket bound).
    pub p50_micros: u64,
    /// 99th-percentile per-request latency in microseconds (upper bucket bound).
    pub p99_micros: u64,
}

impl Metrics {
    /// A fresh, all-zero metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    fn bucket_index(micros: u64) -> usize {
        let bits = (u64::BITS - micros.leading_zeros()) as usize;
        bits.min(LATENCY_BUCKETS - 1)
    }

    /// Records `samples` requests that each took `micros` microseconds (the
    /// binary attributes an equal share of a batch's wall time to each request in
    /// it).
    pub fn record_latency(&self, micros: u64, samples: u64) {
        if let Some(bucket) = self.latency_buckets.get(Self::bucket_index(micros)) {
            bucket.fetch_add(samples, Ordering::Relaxed);
        }
    }

    fn quantile(counts: &[u64], rank: u64) -> u64 {
        let mut seen = 0u64;
        for (index, &count) in counts.iter().enumerate() {
            seen = seen.saturating_add(count);
            if seen >= rank && count > 0 {
                // Upper bound of bucket `index`: 2^index (bucket 0 is `0`).
                return if index == 0 { 0 } else { 1u64 << index };
            }
        }
        0
    }

    /// A consistent-enough snapshot of the counters (each counter is read once;
    /// concurrent writers may land between reads, which only skews a live `stats`
    /// query, never a replayed computation).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counts: Vec<u64> =
            self.latency_buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let samples: u64 = counts.iter().fold(0u64, |acc, &c| acc.saturating_add(c));
        let p50_rank = samples.div_ceil(2).max(1);
        let p99_rank = samples.saturating_mul(99).div_ceil(100).max(1);
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            response_hits: self.response_hits.load(Ordering::Relaxed),
            response_misses: self.response_misses.load(Ordering::Relaxed),
            latency_samples: samples,
            p50_micros: Self::quantile(&counts, p50_rank),
            p99_micros: Self::quantile(&counts, p99_rank),
        }
    }

    /// The snapshot as a JSON object (embedded in `stats` responses).
    pub fn to_json(&self) -> Value {
        let snapshot = self.snapshot();
        let memo_lookups = snapshot.response_hits + snapshot.response_misses;
        let memo_hit_rate = if memo_lookups > 0 {
            snapshot.response_hits as f64 / memo_lookups as f64
        } else {
            0.0
        };
        json::object([
            ("requests", Value::Number(snapshot.requests as f64)),
            ("errors", Value::Number(snapshot.errors as f64)),
            ("batches", Value::Number(snapshot.batches as f64)),
            (
                "response_memo",
                json::object([
                    ("hits", Value::Number(snapshot.response_hits as f64)),
                    ("misses", Value::Number(snapshot.response_misses as f64)),
                    ("hit_rate", Value::Number(memo_hit_rate)),
                ]),
            ),
            (
                "latency",
                json::object([
                    ("samples", Value::Number(snapshot.latency_samples as f64)),
                    ("p50_micros", Value::Number(snapshot.p50_micros as f64)),
                    ("p99_micros", Value::Number(snapshot.p99_micros as f64)),
                ]),
            ),
        ])
    }
}

/// A bounded FIFO memo of rendered response lines, keyed by the query's canonical
/// parameter digest ([`Query::canonical_key`]).
///
/// One mutex guards both the map and the insertion order; the critical section is
/// a lookup or an insert, so contention is negligible next to the engine work a
/// miss implies.  A poisoned lock (a panicking thread mid-insert, which the
/// panic-free contract should make unreachable) is recovered by clearing the memo:
/// losing memoised responses only costs recomputation, never correctness.
#[derive(Debug, Default)]
struct ResponseMemo {
    inner: Mutex<MemoState>,
}

#[derive(Debug, Default)]
struct MemoState {
    map: BTreeMap<u64, String>,
    order: VecDeque<u64>,
}

impl ResponseMemo {
    fn lock(&self) -> MutexGuard<'_, MemoState> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poison) => {
                self.inner.clear_poison();
                let mut guard = poison.into_inner();
                guard.map.clear();
                guard.order.clear();
                guard
            }
        }
    }

    fn lookup(&self, key: u64) -> Option<String> {
        self.lock().map.get(&key).cloned()
    }

    fn store(&self, key: u64, response: &str) {
        let mut state = self.lock();
        if state.map.contains_key(&key) {
            return;
        }
        if state.map.len() >= RESPONSE_MEMO_CAPACITY {
            if let Some(oldest) = state.order.pop_front() {
                state.map.remove(&oldest);
            }
        }
        state.map.insert(key, response.to_string());
        state.order.push_back(key);
    }
}

/// The serving core: one [`Engine`] (one shared cache) plus request metrics and
/// the response memo.
#[derive(Debug)]
pub struct Server {
    engine: Engine,
    metrics: Metrics,
    memo: ResponseMemo,
}

impl Default for Server {
    fn default() -> Self {
        Server::new()
    }
}

impl Server {
    /// A server over a fresh engine (new shared cache, default pool — honours
    /// `URS_THREADS`).
    pub fn new() -> Self {
        Server::with_engine(Engine::new())
    }

    /// A server over an existing engine.
    pub fn with_engine(engine: Engine) -> Self {
        Server { engine, metrics: Metrics::new(), memo: ResponseMemo::default() }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The request metrics (fed by the binary's latency measurements).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Answers one line; equivalent to a one-line batch.
    pub fn respond_line(&self, line: &str) -> String {
        self.respond_batch(std::slice::from_ref(&line.to_string()))
            .into_iter()
            .next()
            .unwrap_or_else(|| error_response("internal: empty batch response"))
    }

    /// Answers a batch of raw protocol lines, one response line per input line, in
    /// input order.
    ///
    /// A query already answered once is served verbatim from the response memo
    /// (keyed by canonical parameters, so formatting differences still hit).  The
    /// remaining queries are planned together ([`urs_core::engine::plan`]) so
    /// batch-mates with the same QBD skeleton share cache entries and one pool
    /// fan-out; results are bit-identical to answering each line alone.  Malformed
    /// lines and failing queries yield `{"error":…,"type":"error"}` without
    /// affecting their neighbours.  Never panics.
    pub fn respond_batch(&self, lines: &[String]) -> Vec<String> {
        let mut responses: Vec<Option<String>> = lines.iter().map(|_| None).collect();
        let mut pending: Vec<(usize, Query, Option<u64>)> = Vec::with_capacity(lines.len());
        for (index, line) in lines.iter().enumerate() {
            let query = match Query::parse_line(line) {
                Ok(query) => query,
                Err(error) => {
                    if let Some(slot) = responses.get_mut(index) {
                        *slot = Some(error_response(&error.to_string()));
                    }
                    continue;
                }
            };
            // `stats` responses are live, never memoised; a query whose key cannot
            // be digested is simply computed without memoisation.
            let key = if matches!(query, Query::Stats) {
                None
            } else {
                query.canonical_key().ok().map(|key| key.digest())
            };
            if let Some(key) = key {
                if let Some(hit) = self.memo.lookup(key) {
                    self.metrics.response_hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(slot) = responses.get_mut(index) {
                        *slot = Some(hit);
                    }
                    continue;
                }
                self.metrics.response_misses.fetch_add(1, Ordering::Relaxed);
            }
            pending.push((index, query, key));
        }
        let queries: Vec<Query> = pending.iter().map(|(_, q, _)| q.clone()).collect();
        let results = self.engine.execute_batch(&queries);
        for ((index, query, key), result) in pending.iter().zip(results) {
            let response = match result {
                Ok(result) => {
                    let response = self.render(query, result);
                    if let Some(key) = key {
                        self.memo.store(*key, &response);
                    }
                    response
                }
                Err(error) => error_response(&error.to_string()),
            };
            if let Some(slot) = responses.get_mut(*index) {
                *slot = Some(response);
            }
        }
        self.metrics.batches.fetch_add(1, Ordering::Relaxed);
        self.metrics.requests.fetch_add(lines.len() as u64, Ordering::Relaxed);
        let rendered: Vec<String> = responses
            .into_iter()
            .map(|slot| slot.unwrap_or_else(|| error_response("internal: unanswered query")))
            .collect();
        let errors = rendered.iter().filter(|r| r.starts_with("{\"error\"")).count() as u64;
        self.metrics.errors.fetch_add(errors, Ordering::Relaxed);
        rendered
    }

    fn render(&self, query: &Query, result: QueryResult) -> String {
        let mut value = result.to_json();
        if matches!(query, Query::Stats) {
            if let Value::Object(members) = &mut value {
                members.insert("server".to_string(), self.metrics.to_json());
            }
        }
        value.serialise()
    }
}

/// Renders an error response line (`{"error":…,"type":"error"}`).
pub fn error_response(message: &str) -> String {
    json::object([
        ("error", Value::String(message.to_string())),
        ("type", Value::String("error".to_string())),
    ])
    .serialise()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_line(servers: usize, lambda: f64) -> String {
        format!(
            "{{\"type\":\"solve\",\"config\":{{\"servers\":{servers},\"arrival_rate\":{lambda},\
             \"service_rate\":1.0,\"lifecycle\":\"paper\"}}}}"
        )
    }

    #[test]
    fn malformed_lines_get_error_responses_and_good_lines_still_answer() {
        let server = Server::new();
        let lines = vec![
            "not json".to_string(),
            solve_line(4, 2.0),
            "{\"type\":\"warp\"}".to_string(),
            String::new(),
        ];
        let responses = server.respond_batch(&lines);
        assert_eq!(responses.len(), 4);
        assert!(responses[0].starts_with("{\"error\""));
        assert!(responses[1].contains("\"type\":\"solution\""));
        assert!(responses[2].starts_with("{\"error\""));
        assert!(responses[3].starts_with("{\"error\""));
        let snapshot = server.metrics().snapshot();
        assert_eq!(snapshot.requests, 4);
        assert_eq!(snapshot.errors, 3);
        assert_eq!(snapshot.batches, 1);
    }

    #[test]
    fn batched_responses_match_one_at_a_time_responses() {
        let lines: Vec<String> =
            vec![solve_line(4, 2.0), solve_line(5, 2.5), solve_line(4, 1.0), solve_line(4, 2.0)];
        let batched = Server::new().respond_batch(&lines);
        let singly = Server::new();
        for (line, batched) in lines.iter().zip(&batched) {
            assert_eq!(&singly.respond_line(line), batched);
        }
    }

    #[test]
    fn stats_responses_embed_server_metrics() {
        let server = Server::new();
        server.respond_line(&solve_line(4, 2.0));
        server.metrics().record_latency(1500, 1);
        let stats = server.respond_line("{\"type\":\"stats\"}");
        assert!(stats.contains("\"server\":{"), "missing server block: {stats}");
        assert!(stats.contains("\"p99_micros\""));
        assert!(stats.contains("\"total_hit_rate\""));
        json::Value::parse(&stats).expect("stats response must be valid JSON");
    }

    #[test]
    fn repeated_queries_hit_the_response_memo_with_identical_bytes() {
        let server = Server::new();
        let first = server.respond_line(&solve_line(4, 2.0));
        let second = server.respond_line(&solve_line(4, 2.0));
        assert_eq!(first, second);
        let snapshot = server.metrics().snapshot();
        assert_eq!(snapshot.response_misses, 1);
        assert_eq!(snapshot.response_hits, 1);
    }

    #[test]
    fn the_memo_keys_on_canonical_parameters_not_line_formatting() {
        let server = Server::new();
        server.respond_line(&solve_line(4, 2.0));
        // Same query, different key order and whitespace.
        let reordered = "{ \"config\": {\"arrival_rate\": 2.0, \"lifecycle\": \"paper\", \
                          \"servers\": 4, \"service_rate\": 1.0}, \"type\": \"solve\" }";
        server.respond_line(reordered);
        assert_eq!(server.metrics().snapshot().response_hits, 1);
    }

    #[test]
    fn stats_queries_are_never_memoised() {
        let server = Server::new();
        server.respond_line("{\"type\":\"stats\"}");
        server.respond_line("{\"type\":\"stats\"}");
        let snapshot = server.metrics().snapshot();
        assert_eq!(snapshot.response_hits, 0);
        assert_eq!(snapshot.response_misses, 0);
    }

    #[test]
    fn the_memo_evicts_its_oldest_entry_at_capacity() {
        let memo = ResponseMemo::default();
        for key in 0..RESPONSE_MEMO_CAPACITY as u64 + 1 {
            memo.store(key, "response");
        }
        assert!(memo.lookup(0).is_none(), "oldest entry should have been evicted");
        assert!(memo.lookup(1).is_some());
        assert_eq!(memo.lock().map.len(), RESPONSE_MEMO_CAPACITY);
    }

    #[test]
    fn latency_quantiles_come_from_the_histogram() {
        let metrics = Metrics::new();
        for _ in 0..99 {
            metrics.record_latency(100, 1); // bucket upper bound 128
        }
        metrics.record_latency(1_000_000, 1); // one slow outlier
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.latency_samples, 100);
        assert_eq!(snapshot.p50_micros, 128);
        assert!(snapshot.p99_micros <= 128, "p99 rank 99 still lands in the fast bucket");
    }
}
