//! `urs-server`: a persistent query server over the `urs-core` engine.
//!
//! Reads newline-delimited JSON queries (grammar in `urs_core::engine`) and writes
//! one JSON response line per query, in input order.  One solver cache lives for
//! the whole process, so repeated and related queries get cheaper over time.
//!
//! ```text
//! urs-server                 # serve stdin → stdout
//! urs-server --tcp ADDR      # serve TCP connections (e.g. 127.0.0.1:7411)
//! ```
//!
//! In-flight queries are coalesced into batches of up to `MAX_BATCH` lines: a batch
//! is whatever has already arrived when the previous batch finished, so batching
//! boundaries depend on timing — but responses never do (the byte-identical replay
//! contract of `urs_server`).  `URS_THREADS` bounds the worker pool.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread;
// urs-analyze: allow(wall_clock, reason = "request latency metrics, reporting only; results never depend on the clock")
use std::time::Instant;

use urs_server::{Server, MAX_BATCH};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let server = Arc::new(Server::new());
    match args.split_first() {
        None => serve_stdio(&server),
        Some((flag, rest)) if flag == "--tcp" => match rest.first() {
            Some(addr) => serve_tcp(&server, addr),
            None => usage_error("--tcp requires an address (e.g. --tcp 127.0.0.1:7411)"),
        },
        Some((flag, _)) if flag == "--help" || flag == "-h" => {
            println!("usage: urs-server [--tcp ADDR]");
            println!("  (no args)   answer newline-delimited JSON queries from stdin on stdout");
            println!("  --tcp ADDR  listen on ADDR; each connection speaks the same protocol");
        }
        Some((flag, _)) => usage_error(&format!("unknown argument `{flag}`")),
    }
}

fn usage_error(message: &str) -> ! {
    eprintln!("urs-server: {message}");
    eprintln!("usage: urs-server [--tcp ADDR]");
    std::process::exit(2);
}

fn serve_stdio(server: &Arc<Server>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(MAX_BATCH * 4);
    spawn_reader(BufReader::new(std::io::stdin()), tx);
    let stdout = std::io::stdout();
    pump(server, &rx, stdout.lock());
}

fn serve_tcp(server: &Arc<Server>, addr: &str) {
    let listener = match TcpListener::bind(addr) {
        Ok(listener) => listener,
        Err(error) => {
            eprintln!("urs-server: cannot listen on {addr}: {error}");
            std::process::exit(1);
        }
    };
    if let Ok(local) = listener.local_addr() {
        // Printed (and flushed) so test harnesses binding port 0 learn the port.
        println!("listening on {local}");
        let _ = std::io::stdout().flush();
    }
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(server);
        thread::spawn(move || serve_connection(&server, stream));
    }
}

fn serve_connection(server: &Arc<Server>, stream: TcpStream) {
    let Ok(reader) = stream.try_clone() else { return };
    let (tx, rx) = std::sync::mpsc::sync_channel(MAX_BATCH * 4);
    spawn_reader(BufReader::new(reader), tx);
    pump(server, &rx, stream);
}

/// Forwards lines from `reader` into the channel until EOF or a read error; the
/// sender hanging up ends the pump loop.
fn spawn_reader<R: Read + Send + 'static>(reader: BufReader<R>, tx: SyncSender<String>) {
    thread::spawn(move || {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
}

/// The serve loop: block for one line, drain whatever else has already arrived
/// (up to `MAX_BATCH`), answer the batch, flush, repeat.
fn pump(server: &Arc<Server>, rx: &Receiver<String>, mut out: impl Write) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < MAX_BATCH {
            match rx.try_recv() {
                Ok(line) => batch.push(line),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        // urs-analyze: allow(wall_clock, reason = "batch latency measurement for the stats histogram; responses are computed before and independently of it")
        let started = Instant::now();
        let responses = server.respond_batch(&batch);
        let micros = started.elapsed().as_micros() as u64 / batch.len().max(1) as u64;
        server.metrics().record_latency(micros, batch.len() as u64);
        for response in &responses {
            if writeln!(out, "{response}").is_err() {
                return; // client hung up
            }
        }
        if out.flush().is_err() {
            return;
        }
    }
}
