//! Parallel-vs-serial and cached-vs-uncached equivalence.
//!
//! The performance subsystem promises that neither the [`ThreadPool`] nor the
//! [`SolverCache`] changes any result: every parallelised sweep must return exactly —
//! bit for bit — what the serial path returns, in the same order, and a cached solver
//! must reproduce the uncached solution.  These tests pin that contract, including
//! property tests over randomly drawn configurations.

use std::sync::Arc;

use proptest::prelude::*;
use urs_core::sweeps::{
    queue_length_vs_load_with, queue_length_vs_operative_scv_with, queue_length_vs_repair_time_with,
};
use urs_core::{
    CostModel, CostSweep, GeometricApproximation, MatrixGeometricSolver, ProvisioningSweep,
    QueueSolution, ResponseAnalysis, ServerLifecycle, SolverCache, SpectralExpansionSolver,
    SystemConfig, ThreadPool, TruncatedCtmcSolver,
};
use urs_dist::HyperExponential;
use urs_linalg::{
    BlockTridiagonal, CMatrix, CluDecomposition, Complex, LuDecomposition, Matrix, Workspace,
};

fn paper_base(servers: usize, lambda: f64, repair_rate: f64) -> SystemConfig {
    let operative = HyperExponential::with_mean_and_scv(34.62, 4.6).unwrap();
    let lifecycle = ServerLifecycle::with_exponential_repair(operative, repair_rate).unwrap();
    SystemConfig::new(servers, lambda, 1.0, lifecycle).unwrap()
}

fn pools() -> Vec<ThreadPool> {
    vec![ThreadPool::new(2), ThreadPool::new(4), ThreadPool::new(7)]
}

#[test]
fn scv_sweep_is_thread_count_invariant() {
    let solver = SpectralExpansionSolver::default();
    let base = paper_base(5, 4.2, 0.2);
    let grid = [1.0, 2.0, 4.0, 8.0, 12.0];
    let serial =
        queue_length_vs_operative_scv_with(&solver, &base, 34.62, &grid, &ThreadPool::serial())
            .unwrap();
    for pool in pools() {
        let parallel =
            queue_length_vs_operative_scv_with(&solver, &base, 34.62, &grid, &pool).unwrap();
        assert_eq!(serial, parallel, "{} threads changed the sweep", pool.threads());
    }
}

#[test]
fn repair_sweep_is_thread_count_invariant() {
    let solver = SpectralExpansionSolver::default();
    let operative = HyperExponential::with_mean_and_scv(34.62, 4.6).unwrap();
    let base = paper_base(5, 3.5, 1.0);
    let grid = [0.5, 1.0, 1.5, 2.0];
    let serial =
        queue_length_vs_repair_time_with(&solver, &base, &operative, &grid, &ThreadPool::serial())
            .unwrap();
    for pool in pools() {
        let parallel =
            queue_length_vs_repair_time_with(&solver, &base, &operative, &grid, &pool).unwrap();
        assert_eq!(serial, parallel);
    }
}

#[test]
fn load_sweep_is_thread_count_invariant() {
    let exact = SpectralExpansionSolver::default();
    let approx = GeometricApproximation::default();
    let base = paper_base(5, 3.0, 25.0);
    let grid = [0.85, 0.9, 0.93, 0.96];
    let serial =
        queue_length_vs_load_with(&exact, &approx, &base, &grid, &ThreadPool::serial()).unwrap();
    for pool in pools() {
        let parallel = queue_length_vs_load_with(&exact, &approx, &base, &grid, &pool).unwrap();
        assert_eq!(serial, parallel);
    }
}

#[test]
fn cost_sweep_is_thread_count_invariant_and_skips_unstable_counts() {
    let solver = SpectralExpansionSolver::default();
    let cost = CostModel::paper_figure5();
    // λ = 7 makes N = 5..=7 unstable: the skip logic must also be order-preserving.
    let base = paper_base(5, 7.0, 25.0);
    let serial =
        CostSweep::evaluate_with(&solver, &base, &cost, 5..=12, &ThreadPool::serial()).unwrap();
    assert!(serial.points().iter().all(|p| p.servers >= 8));
    for pool in pools() {
        let parallel = CostSweep::evaluate_with(&solver, &base, &cost, 5..=12, &pool).unwrap();
        assert_eq!(serial, parallel);
    }
}

#[test]
fn provisioning_sweep_is_thread_count_invariant() {
    let solver = SpectralExpansionSolver::default();
    let base = paper_base(8, 6.0, 25.0);
    let serial =
        ProvisioningSweep::evaluate_with(&solver, &base, 7..=12, &ThreadPool::serial()).unwrap();
    for pool in pools() {
        let parallel = ProvisioningSweep::evaluate_with(&solver, &base, 7..=12, &pool).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(
            serial.min_servers_for_response_time(2.0),
            parallel.min_servers_for_response_time(2.0)
        );
    }
}

#[test]
fn cached_solver_is_bit_identical_to_uncached() {
    let plain = SpectralExpansionSolver::default();
    let cached = SpectralExpansionSolver::default().with_cache(SolverCache::shared());
    let base = paper_base(4, 2.5, 25.0);
    for lambda in [1.0, 2.5, 3.5] {
        let config = base.with_arrival_rate(lambda).unwrap();
        let expected = plain.solve_detailed(&config).unwrap();
        // First call populates the cache (skeleton reused after λ = 1.0), the second is
        // answered from the solution cache; both must match the uncached bits.
        for _ in 0..2 {
            let got = cached.solve_detailed(&config).unwrap();
            assert_eq!(expected.mean_queue_length().to_bits(), got.mean_queue_length().to_bits());
            assert_eq!(expected.boundary_levels(), got.boundary_levels());
            assert_eq!(expected.eigenvalues(), got.eigenvalues());
        }
    }
    let stats = cached.cache().unwrap().stats();
    assert_eq!(stats.skeleton_misses, 1, "one lifecycle, one skeleton build");
    assert_eq!(stats.solution_hits, 3);
}

#[test]
fn cached_sweep_matches_uncached_sweep() {
    let plain = SpectralExpansionSolver::default();
    let cached = SpectralExpansionSolver::default().with_cache(SolverCache::shared());
    let approx = GeometricApproximation::default();
    let base = paper_base(5, 3.0, 25.0);
    let grid = [0.85, 0.9, 0.95];
    let without =
        queue_length_vs_load_with(&plain, &approx, &base, &grid, &ThreadPool::serial()).unwrap();
    let with =
        queue_length_vs_load_with(&cached, &approx, &base, &grid, &ThreadPool::new(3)).unwrap();
    assert_eq!(without, with);
    // The whole sweep shares one skeleton.  (Assert on the cache contents, not the
    // miss counter: threads racing through the empty-cache window each count a miss.)
    assert_eq!(cached.cache().unwrap().len().skeletons, 1);
}

#[test]
fn shared_cache_works_across_solvers_and_threads() {
    let cache = SolverCache::shared();
    let solver_a = SpectralExpansionSolver::default().with_cache(Arc::clone(&cache));
    let solver_b = SpectralExpansionSolver::default().with_cache(Arc::clone(&cache));
    let base = paper_base(6, 4.0, 25.0);
    let grid: Vec<f64> = (0..8).map(|i| 0.80 + i as f64 * 0.02).collect();
    let a = queue_length_vs_load_with(
        &solver_a,
        &SpectralExpansionSolver::default(),
        &base,
        &grid,
        &ThreadPool::new(4),
    )
    .unwrap();
    let b = queue_length_vs_load_with(
        &solver_b,
        &SpectralExpansionSolver::default(),
        &base,
        &grid,
        &ThreadPool::serial(),
    )
    .unwrap();
    assert_eq!(a, b);
    // One skeleton in the cache (the miss counter can exceed 1 when threads race
    // through the empty-cache window, so assert on the contents).
    assert_eq!(cache.len().skeletons, 1);
    // The second, serial sweep re-solves the identical configurations: all hits.
    assert!(cache.stats().solution_hits >= grid.len() as u64);
}

// ---------------------------------------------------------------------------
// Thread-matrix suite: every intra-solve parallel kernel and every pooled
// solver must be bit-identical — compared through `f64::to_bits`, not `==` —
// across worker counts {1, 2, 3, 8}.  Pools are injected directly so the
// tests never mutate `URS_THREADS`.
// ---------------------------------------------------------------------------

const THREAD_MATRIX: [usize; 4] = [1, 2, 3, 8];

/// Deterministic pseudo-random stream in `[-0.5, 0.5)` (PCG-style LCG step).
fn lcg(state: &mut u64) -> f64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / (1u64 << 53) as f64 - 0.5
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(rows, cols, |_, _| lcg(&mut state))
}

fn random_cmatrix(rows: usize, cols: usize, seed: u64) -> CMatrix {
    let mut state = seed;
    CMatrix::from_fn(rows, cols, |_, _| Complex::new(lcg(&mut state), lcg(&mut state)))
}

/// A diagonally dominant (hence comfortably non-singular) random matrix.
fn dominant_matrix(n: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(n, n, |i, j| {
        let v = lcg(&mut state);
        if i == j {
            v + n as f64
        } else {
            v
        }
    })
}

fn dominant_cmatrix(n: usize, seed: u64) -> CMatrix {
    let mut state = seed;
    CMatrix::from_fn(n, n, |i, j| {
        let v = Complex::new(lcg(&mut state), lcg(&mut state));
        if i == j {
            v + Complex::from_real(n as f64)
        } else {
            v
        }
    })
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn cbits(m: &CMatrix) -> Vec<(u64, u64)> {
    m.as_slice().iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
}

fn vec_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn gemm_is_bit_identical_across_the_thread_matrix() {
    // 97·61·83 ≈ 491k flops: well past the parallel cut-over, with every
    // dimension deliberately off the KB = 64 / JB = 256 tile boundaries.
    let a = random_matrix(97, 61, 11);
    let b = random_matrix(61, 83, 12);
    let initial = random_matrix(97, 83, 13);
    let mut expected = initial.clone();
    expected.gemm(0.75, &a, &b, -0.25).unwrap();
    for threads in THREAD_MATRIX {
        let pool = ThreadPool::new(threads);
        let mut c = initial.clone();
        c.gemm_with(0.75, &a, &b, -0.25, &pool).unwrap();
        assert_eq!(bits(&expected), bits(&c), "{threads} threads changed gemm");
    }
}

#[test]
fn complex_gemm_is_bit_identical_across_the_thread_matrix() {
    let a = random_cmatrix(53, 41, 31);
    let b = random_cmatrix(41, 37, 32);
    let initial = random_cmatrix(53, 37, 33);
    let alpha = Complex::new(0.6, -0.2);
    let beta = Complex::new(-0.3, 0.1);
    let mut expected = initial.clone();
    expected.gemm(alpha, &a, &b, beta).unwrap();
    for threads in THREAD_MATRIX {
        let pool = ThreadPool::new(threads);
        let mut c = initial.clone();
        c.gemm_with(alpha, &a, &b, beta, &pool).unwrap();
        assert_eq!(cbits(&expected), cbits(&c), "{threads} threads changed complex gemm");
    }
}

#[test]
fn blocked_lu_is_bit_identical_across_the_thread_matrix() {
    // n = 137 crosses the 48-column panel boundary twice, with a ragged tail.
    let n = 137;
    let a = dominant_matrix(n, 21);
    let rhs = random_matrix(64, n, 22);
    let serial = LuDecomposition::from_matrix(a.clone()).unwrap();
    let serial_packed = LuDecomposition::from_matrix(a.clone()).unwrap().into_matrix();
    let mut ws = Workspace::new();
    let mut serial_right = Matrix::zeros(64, n);
    serial.solve_right_matrix_into(&rhs, &mut serial_right, &mut ws).unwrap();
    for threads in THREAD_MATRIX {
        let pool = ThreadPool::new(threads);
        let lu = LuDecomposition::from_matrix_with(a.clone(), &pool).unwrap();
        let packed = LuDecomposition::from_matrix_with(a.clone(), &pool).unwrap().into_matrix();
        assert_eq!(bits(&serial_packed), bits(&packed), "{threads} threads changed the LU factor");
        assert_eq!(serial.determinant().to_bits(), lu.determinant().to_bits());
        let mut right = Matrix::zeros(64, n);
        lu.solve_right_matrix_into_with(&rhs, &mut right, &mut ws, &pool).unwrap();
        assert_eq!(bits(&serial_right), bits(&right), "{threads} threads changed the right-solve");
    }
}

#[test]
fn complex_blocked_lu_is_bit_identical_across_the_thread_matrix() {
    // n = 61 crosses the complex 24-column panel boundary twice.
    let n = 61;
    let a = dominant_cmatrix(n, 41);
    let rhs = random_cmatrix(40, n, 42);
    let serial = CluDecomposition::from_matrix(a.clone()).unwrap();
    let serial_packed = CluDecomposition::from_matrix(a.clone()).unwrap().into_matrix();
    let mut ws = Workspace::new();
    let mut serial_right = CMatrix::zeros(40, n);
    serial.solve_right_matrix_into(&rhs, &mut serial_right, &mut ws).unwrap();
    for threads in THREAD_MATRIX {
        let pool = ThreadPool::new(threads);
        let lu = CluDecomposition::from_matrix_with(a.clone(), &pool).unwrap();
        let packed = CluDecomposition::from_matrix_with(a.clone(), &pool).unwrap().into_matrix();
        assert_eq!(cbits(&serial_packed), cbits(&packed), "{threads} threads changed complex LU");
        let (sd, pd) = (serial.determinant(), lu.determinant());
        assert_eq!((sd.re.to_bits(), sd.im.to_bits()), (pd.re.to_bits(), pd.im.to_bits()));
        assert_eq!(serial.smallest_pivot().to_bits(), lu.smallest_pivot().to_bits());
        let mut right = CMatrix::zeros(40, n);
        lu.solve_right_matrix_into_with(&rhs, &mut right, &mut ws, &pool).unwrap();
        assert_eq!(cbits(&serial_right), cbits(&right), "{threads} threads changed right-solve");
    }
}

#[test]
fn block_tridiagonal_solve_is_bit_identical_across_the_thread_matrix() {
    // Block size 40 puts the per-block gemm and right-solve work past the
    // parallel cut-over, so the pooled path genuinely fans out.
    let (rows, s) = (4, 40);
    let mut system = BlockTridiagonal::new(rows, s).unwrap();
    for i in 0..rows {
        system.set_diagonal(i, dominant_cmatrix(s, 100 + i as u64)).unwrap();
        if i > 0 {
            system.set_lower(i, random_cmatrix(s, s, 200 + i as u64)).unwrap();
        }
        if i + 1 < rows {
            system.set_upper(i, random_cmatrix(s, s, 300 + i as u64)).unwrap();
        }
        let mut state = 400 + i as u64;
        let rhs: Vec<Complex> =
            (0..s).map(|_| Complex::new(lcg(&mut state), lcg(&mut state))).collect();
        system.set_rhs(i, rhs).unwrap();
    }
    let serial = system.solve().unwrap();
    for threads in THREAD_MATRIX {
        let parallel = system.solve_with(&ThreadPool::new(threads)).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (xs, ys) in serial.iter().zip(&parallel) {
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(
                    (x.re.to_bits(), x.im.to_bits()),
                    (y.re.to_bits(), y.im.to_bits()),
                    "{threads} threads changed the block-tridiagonal solve",
                );
            }
        }
    }
}

#[test]
fn spectral_solver_is_bit_identical_across_the_thread_matrix() {
    let config = paper_base(5, 4.2, 0.2);
    let serial = SpectralExpansionSolver::default().solve_detailed(&config).unwrap();
    for threads in THREAD_MATRIX {
        let solver = SpectralExpansionSolver::default().with_pool(ThreadPool::new(threads));
        let got = solver.solve_detailed(&config).unwrap();
        assert_eq!(serial.mean_queue_length().to_bits(), got.mean_queue_length().to_bits());
        assert_eq!(serial.boundary_levels(), got.boundary_levels());
        assert_eq!(serial.eigenvalues(), got.eigenvalues());
        assert_eq!(vec_bits(&serial.mode_marginal()), vec_bits(&got.mode_marginal()));
    }
}

#[test]
fn matrix_geometric_solver_is_bit_identical_across_the_thread_matrix() {
    // 7 servers with a 2-phase operative + 1-phase repair lifecycle give
    // C(9,2) = 36 modes, so the 36×36 gemm and LU calls inside the logarithmic
    // reduction are past the parallel cut-over and actually split into bands.
    let config = paper_base(7, 4.0, 25.0);
    let serial = MatrixGeometricSolver::default().solve_detailed(&config).unwrap();
    for threads in THREAD_MATRIX {
        let solver = MatrixGeometricSolver::default().with_pool(ThreadPool::new(threads));
        let got = solver.solve_detailed(&config).unwrap();
        assert_eq!(serial.mean_queue_length().to_bits(), got.mean_queue_length().to_bits());
        assert_eq!(bits(serial.rate_matrix()), bits(got.rate_matrix()));
        assert_eq!(serial.reduction_depth(), got.reduction_depth());
        for level in [0, 1, 7, 20] {
            assert_eq!(
                vec_bits(&serial.level_vector(level)),
                vec_bits(&got.level_vector(level)),
                "{threads} threads changed level {level}",
            );
        }
    }
}

#[test]
fn truncated_solver_is_bit_identical_across_the_thread_matrix() {
    let config = paper_base(5, 4.0, 25.0);
    let serial = TruncatedCtmcSolver::default().solve_detailed(&config).unwrap();
    for threads in THREAD_MATRIX {
        let solver = TruncatedCtmcSolver::default().with_pool(ThreadPool::new(threads));
        let got = solver.solve_detailed(&config).unwrap();
        assert_eq!(serial.mean_queue_length().to_bits(), got.mean_queue_length().to_bits());
        assert_eq!(serial.max_level(), got.max_level());
        assert_eq!(serial.truncation_mass().to_bits(), got.truncation_mass().to_bits());
        for level in 0..10 {
            assert_eq!(
                serial.level_probability(level).to_bits(),
                got.level_probability(level).to_bits(),
            );
        }
    }
}

#[test]
fn response_time_percentile_is_bit_identical_across_the_thread_matrix() {
    let config = paper_base(5, 4.2, 25.0);
    let serial = ResponseAnalysis::new(&config).unwrap();
    let p95 = serial.response_time_percentile(0.95).unwrap();
    let mean = serial.mean_response_time();
    let cdf = serial.response_time_cdf(2.0 * mean).unwrap();
    for threads in THREAD_MATRIX {
        let pooled = ResponseAnalysis::new(&config).unwrap().with_pool(ThreadPool::new(threads));
        assert_eq!(
            p95.to_bits(),
            pooled.response_time_percentile(0.95).unwrap().to_bits(),
            "{threads} threads changed the 95th percentile",
        );
        assert_eq!(mean.to_bits(), pooled.mean_response_time().to_bits());
        assert_eq!(cdf.to_bits(), pooled.response_time_cdf(2.0 * mean).unwrap().to_bits());
    }
}

/// Strategy: a stable paper-like configuration with 2–5 servers and varied lifecycle.
fn config_strategy() -> impl Strategy<Value = SystemConfig> {
    (2_usize..=5, 1.5_f64..8.0, 0.3_f64..0.9, 0.3_f64..30.0).prop_map(
        |(servers, scv, utilisation, repair_rate)| {
            let operative = HyperExponential::with_mean_and_scv(34.62, scv).unwrap();
            let lifecycle =
                ServerLifecycle::with_exponential_repair(operative, repair_rate).unwrap();
            let base = SystemConfig::new(servers, 1.0, 1.0, lifecycle).unwrap();
            let arrival = (utilisation * base.effective_servers()).max(1e-3);
            base.with_arrival_rate(arrival).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random configurations, random utilisation grids: parallel load sweeps are
    /// bit-identical to serial ones, cached or not.
    #[test]
    fn random_load_sweeps_are_thread_and_cache_invariant(
        config in config_strategy(),
        threads in 2_usize..6,
    ) {
        let grid = [0.75, 0.85, 0.92];
        let exact = SpectralExpansionSolver::default();
        let cached = SpectralExpansionSolver::default().with_cache(SolverCache::shared());
        let approx = GeometricApproximation::default();
        let serial =
            queue_length_vs_load_with(&exact, &approx, &config, &grid, &ThreadPool::serial())
                .unwrap();
        let parallel =
            queue_length_vs_load_with(&exact, &approx, &config, &grid, &ThreadPool::new(threads))
                .unwrap();
        let parallel_cached =
            queue_length_vs_load_with(&cached, &approx, &config, &grid, &ThreadPool::new(threads))
                .unwrap();
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial, &parallel_cached);
    }

    /// Random provisioning sweeps: same contract for the server-count grids of
    /// Figures 5 and 9.
    #[test]
    fn random_provisioning_sweeps_are_thread_invariant(
        config in config_strategy(),
        threads in 2_usize..6,
    ) {
        let lo = config.servers();
        let solver = SpectralExpansionSolver::default();
        let serial =
            ProvisioningSweep::evaluate_with(&solver, &config, lo..=lo + 4, &ThreadPool::serial())
                .unwrap();
        let parallel = ProvisioningSweep::evaluate_with(
            &solver,
            &config,
            lo..=lo + 4,
            &ThreadPool::new(threads),
        )
        .unwrap();
        prop_assert_eq!(serial, parallel);
    }
}
