//! Parallel-vs-serial and cached-vs-uncached equivalence.
//!
//! The performance subsystem promises that neither the [`ThreadPool`] nor the
//! [`SolverCache`] changes any result: every parallelised sweep must return exactly —
//! bit for bit — what the serial path returns, in the same order, and a cached solver
//! must reproduce the uncached solution.  These tests pin that contract, including
//! property tests over randomly drawn configurations.

use std::sync::Arc;

use proptest::prelude::*;
use urs_core::sweeps::{
    queue_length_vs_load_with, queue_length_vs_operative_scv_with, queue_length_vs_repair_time_with,
};
use urs_core::{
    CostModel, CostSweep, GeometricApproximation, ProvisioningSweep, QueueSolution,
    ServerLifecycle, SolverCache, SpectralExpansionSolver, SystemConfig, ThreadPool,
};
use urs_dist::HyperExponential;

fn paper_base(servers: usize, lambda: f64, repair_rate: f64) -> SystemConfig {
    let operative = HyperExponential::with_mean_and_scv(34.62, 4.6).unwrap();
    let lifecycle = ServerLifecycle::with_exponential_repair(operative, repair_rate).unwrap();
    SystemConfig::new(servers, lambda, 1.0, lifecycle).unwrap()
}

fn pools() -> Vec<ThreadPool> {
    vec![ThreadPool::new(2), ThreadPool::new(4), ThreadPool::new(7)]
}

#[test]
fn scv_sweep_is_thread_count_invariant() {
    let solver = SpectralExpansionSolver::default();
    let base = paper_base(5, 4.2, 0.2);
    let grid = [1.0, 2.0, 4.0, 8.0, 12.0];
    let serial =
        queue_length_vs_operative_scv_with(&solver, &base, 34.62, &grid, &ThreadPool::serial())
            .unwrap();
    for pool in pools() {
        let parallel =
            queue_length_vs_operative_scv_with(&solver, &base, 34.62, &grid, &pool).unwrap();
        assert_eq!(serial, parallel, "{} threads changed the sweep", pool.threads());
    }
}

#[test]
fn repair_sweep_is_thread_count_invariant() {
    let solver = SpectralExpansionSolver::default();
    let operative = HyperExponential::with_mean_and_scv(34.62, 4.6).unwrap();
    let base = paper_base(5, 3.5, 1.0);
    let grid = [0.5, 1.0, 1.5, 2.0];
    let serial =
        queue_length_vs_repair_time_with(&solver, &base, &operative, &grid, &ThreadPool::serial())
            .unwrap();
    for pool in pools() {
        let parallel =
            queue_length_vs_repair_time_with(&solver, &base, &operative, &grid, &pool).unwrap();
        assert_eq!(serial, parallel);
    }
}

#[test]
fn load_sweep_is_thread_count_invariant() {
    let exact = SpectralExpansionSolver::default();
    let approx = GeometricApproximation::default();
    let base = paper_base(5, 3.0, 25.0);
    let grid = [0.85, 0.9, 0.93, 0.96];
    let serial =
        queue_length_vs_load_with(&exact, &approx, &base, &grid, &ThreadPool::serial()).unwrap();
    for pool in pools() {
        let parallel = queue_length_vs_load_with(&exact, &approx, &base, &grid, &pool).unwrap();
        assert_eq!(serial, parallel);
    }
}

#[test]
fn cost_sweep_is_thread_count_invariant_and_skips_unstable_counts() {
    let solver = SpectralExpansionSolver::default();
    let cost = CostModel::paper_figure5();
    // λ = 7 makes N = 5..=7 unstable: the skip logic must also be order-preserving.
    let base = paper_base(5, 7.0, 25.0);
    let serial =
        CostSweep::evaluate_with(&solver, &base, &cost, 5..=12, &ThreadPool::serial()).unwrap();
    assert!(serial.points().iter().all(|p| p.servers >= 8));
    for pool in pools() {
        let parallel = CostSweep::evaluate_with(&solver, &base, &cost, 5..=12, &pool).unwrap();
        assert_eq!(serial, parallel);
    }
}

#[test]
fn provisioning_sweep_is_thread_count_invariant() {
    let solver = SpectralExpansionSolver::default();
    let base = paper_base(8, 6.0, 25.0);
    let serial =
        ProvisioningSweep::evaluate_with(&solver, &base, 7..=12, &ThreadPool::serial()).unwrap();
    for pool in pools() {
        let parallel = ProvisioningSweep::evaluate_with(&solver, &base, 7..=12, &pool).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(
            serial.min_servers_for_response_time(2.0),
            parallel.min_servers_for_response_time(2.0)
        );
    }
}

#[test]
fn cached_solver_is_bit_identical_to_uncached() {
    let plain = SpectralExpansionSolver::default();
    let cached = SpectralExpansionSolver::default().with_cache(SolverCache::shared());
    let base = paper_base(4, 2.5, 25.0);
    for lambda in [1.0, 2.5, 3.5] {
        let config = base.with_arrival_rate(lambda).unwrap();
        let expected = plain.solve_detailed(&config).unwrap();
        // First call populates the cache (skeleton reused after λ = 1.0), the second is
        // answered from the solution cache; both must match the uncached bits.
        for _ in 0..2 {
            let got = cached.solve_detailed(&config).unwrap();
            assert_eq!(expected.mean_queue_length().to_bits(), got.mean_queue_length().to_bits());
            assert_eq!(expected.boundary_levels(), got.boundary_levels());
            assert_eq!(expected.eigenvalues(), got.eigenvalues());
        }
    }
    let stats = cached.cache().unwrap().stats();
    assert_eq!(stats.skeleton_misses, 1, "one lifecycle, one skeleton build");
    assert_eq!(stats.solution_hits, 3);
}

#[test]
fn cached_sweep_matches_uncached_sweep() {
    let plain = SpectralExpansionSolver::default();
    let cached = SpectralExpansionSolver::default().with_cache(SolverCache::shared());
    let approx = GeometricApproximation::default();
    let base = paper_base(5, 3.0, 25.0);
    let grid = [0.85, 0.9, 0.95];
    let without =
        queue_length_vs_load_with(&plain, &approx, &base, &grid, &ThreadPool::serial()).unwrap();
    let with =
        queue_length_vs_load_with(&cached, &approx, &base, &grid, &ThreadPool::new(3)).unwrap();
    assert_eq!(without, with);
    // The whole sweep shares one skeleton.  (Assert on the cache contents, not the
    // miss counter: threads racing through the empty-cache window each count a miss.)
    assert_eq!(cached.cache().unwrap().len().0, 1);
}

#[test]
fn shared_cache_works_across_solvers_and_threads() {
    let cache = SolverCache::shared();
    let solver_a = SpectralExpansionSolver::default().with_cache(Arc::clone(&cache));
    let solver_b = SpectralExpansionSolver::default().with_cache(Arc::clone(&cache));
    let base = paper_base(6, 4.0, 25.0);
    let grid: Vec<f64> = (0..8).map(|i| 0.80 + i as f64 * 0.02).collect();
    let a = queue_length_vs_load_with(
        &solver_a,
        &SpectralExpansionSolver::default(),
        &base,
        &grid,
        &ThreadPool::new(4),
    )
    .unwrap();
    let b = queue_length_vs_load_with(
        &solver_b,
        &SpectralExpansionSolver::default(),
        &base,
        &grid,
        &ThreadPool::serial(),
    )
    .unwrap();
    assert_eq!(a, b);
    // One skeleton in the cache (the miss counter can exceed 1 when threads race
    // through the empty-cache window, so assert on the contents).
    assert_eq!(cache.len().0, 1);
    // The second, serial sweep re-solves the identical configurations: all hits.
    assert!(cache.stats().solution_hits >= grid.len() as u64);
}

/// Strategy: a stable paper-like configuration with 2–5 servers and varied lifecycle.
fn config_strategy() -> impl Strategy<Value = SystemConfig> {
    (2_usize..=5, 1.5_f64..8.0, 0.3_f64..0.9, 0.3_f64..30.0).prop_map(
        |(servers, scv, utilisation, repair_rate)| {
            let operative = HyperExponential::with_mean_and_scv(34.62, scv).unwrap();
            let lifecycle =
                ServerLifecycle::with_exponential_repair(operative, repair_rate).unwrap();
            let base = SystemConfig::new(servers, 1.0, 1.0, lifecycle).unwrap();
            let arrival = (utilisation * base.effective_servers()).max(1e-3);
            base.with_arrival_rate(arrival).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random configurations, random utilisation grids: parallel load sweeps are
    /// bit-identical to serial ones, cached or not.
    #[test]
    fn random_load_sweeps_are_thread_and_cache_invariant(
        config in config_strategy(),
        threads in 2_usize..6,
    ) {
        let grid = [0.75, 0.85, 0.92];
        let exact = SpectralExpansionSolver::default();
        let cached = SpectralExpansionSolver::default().with_cache(SolverCache::shared());
        let approx = GeometricApproximation::default();
        let serial =
            queue_length_vs_load_with(&exact, &approx, &config, &grid, &ThreadPool::serial())
                .unwrap();
        let parallel =
            queue_length_vs_load_with(&exact, &approx, &config, &grid, &ThreadPool::new(threads))
                .unwrap();
        let parallel_cached =
            queue_length_vs_load_with(&cached, &approx, &config, &grid, &ThreadPool::new(threads))
                .unwrap();
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial, &parallel_cached);
    }

    /// Random provisioning sweeps: same contract for the server-count grids of
    /// Figures 5 and 9.
    #[test]
    fn random_provisioning_sweeps_are_thread_invariant(
        config in config_strategy(),
        threads in 2_usize..6,
    ) {
        let lo = config.servers();
        let solver = SpectralExpansionSolver::default();
        let serial =
            ProvisioningSweep::evaluate_with(&solver, &config, lo..=lo + 4, &ThreadPool::serial())
                .unwrap();
        let parallel = ProvisioningSweep::evaluate_with(
            &solver,
            &config,
            lo..=lo + 4,
            &ThreadPool::new(threads),
        )
        .unwrap();
        prop_assert_eq!(serial, parallel);
    }
}
