//! Pins the engine's concurrency contract: many threads hammering one shared
//! [`Engine`] (one sharded cache, one pool) observe results bit-identical to a
//! serial engine answering the same queries one at a time — cache races may change
//! *who* computes an entry, never *what* it contains.

use std::sync::Arc;

use urs_core::engine::{json, Query, QueryResult};
use urs_core::{CostModel, Engine, ServerLifecycle, SolverCache, SystemConfig, ThreadPool};

fn paper_config(servers: usize, lambda: f64) -> SystemConfig {
    SystemConfig::new(servers, lambda, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap()
}

/// A mixed workload touching every cache level: plain solves at several arrival
/// rates over few skeletons, sweeps, and percentile queries.
fn workload() -> Vec<Query> {
    let mut queries = Vec::new();
    for servers in [4usize, 5, 6] {
        for step in 0..4 {
            let lambda = 0.5 + 0.4 * step as f64;
            queries.push(Query::Solve { config: paper_config(servers, lambda) });
        }
    }
    queries.push(Query::CostSweep {
        config: paper_config(5, 2.0),
        cost: CostModel::new(4.0, 1.0).unwrap(),
        min_servers: 4,
        max_servers: 7,
    });
    queries.push(Query::Provisioning {
        config: paper_config(5, 2.0),
        min_servers: 4,
        max_servers: 7,
    });
    queries
        .push(Query::Percentiles { config: paper_config(4, 1.5), fractions: vec![0.5, 0.9, 0.99] });
    queries
}

fn serial_answers(queries: &[Query]) -> Vec<String> {
    let engine = Engine::with_parts(SolverCache::shared(), ThreadPool::serial());
    queries
        .iter()
        .map(|q| engine.execute(q).expect("serial execution failed").to_json().serialise())
        .collect()
}

#[test]
fn concurrent_queries_on_one_shared_engine_are_bit_identical_to_serial() {
    let queries = workload();
    let expected = serial_answers(&queries);

    // One engine, one sharded cache, hammered from 8 threads; every thread walks
    // the workload in a different rotation so cache hits and misses interleave.
    let engine = Arc::new(Engine::with_parts(SolverCache::shared(), ThreadPool::serial()));
    let threads = 8;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let engine = Arc::clone(&engine);
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for i in 0..queries.len() {
                        let index = (i + t * 3) % queries.len();
                        let result = engine
                            .execute(&queries[index])
                            .expect("concurrent execution failed")
                            .to_json()
                            .serialise();
                        assert_eq!(
                            result, expected[index],
                            "thread {t} diverged from the serial engine on query {index}"
                        );
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("worker panicked");
        }
    });
}

#[test]
fn batched_execution_under_a_parallel_pool_matches_the_serial_engine() {
    let queries = workload();
    let expected = serial_answers(&queries);
    for threads in [1usize, 4] {
        let pool = ThreadPool::new(threads);
        let engine = Engine::with_parts(SolverCache::shared(), pool);
        let results = engine.execute_batch(&queries);
        for (index, (result, expected)) in results.iter().zip(&expected).enumerate() {
            let rendered = result.as_ref().expect("batched execution failed").to_json().serialise();
            assert_eq!(
                &rendered, expected,
                "pool with {threads} thread(s) diverged on query {index}"
            );
        }
    }
}

#[test]
fn repeated_execution_on_a_warm_cache_returns_identical_bytes() {
    let queries = workload();
    let engine = Engine::with_parts(SolverCache::shared(), ThreadPool::serial());
    let cold: Vec<String> =
        queries.iter().map(|q| engine.execute(q).unwrap().to_json().serialise()).collect();
    let warm: Vec<String> =
        queries.iter().map(|q| engine.execute(q).unwrap().to_json().serialise()).collect();
    assert_eq!(cold, warm, "a cache hit changed an answer");
    let stats = engine.cache().stats();
    assert!(stats.solution_hits > 0, "warm pass should hit the solution cache");
}

#[test]
fn query_results_survive_a_json_round_trip_of_their_query() {
    // Serialise each query, re-parse it, execute both forms: identical bytes.
    let queries = workload();
    let engine = Engine::with_parts(SolverCache::shared(), ThreadPool::serial());
    for query in &queries {
        let reparsed = Query::parse_line(&query.to_json().serialise()).unwrap();
        let a = engine.execute(query).unwrap().to_json().serialise();
        let b = engine.execute(&reparsed).unwrap().to_json().serialise();
        assert_eq!(a, b);
    }
}

#[test]
fn stats_are_the_only_nondeterministic_result() {
    let engine = Engine::with_parts(SolverCache::shared(), ThreadPool::serial());
    let solve = Query::Solve { config: paper_config(4, 1.0) };
    engine.execute(&solve).unwrap();
    let first = engine.execute(&Query::Stats).unwrap();
    engine.execute(&solve).unwrap(); // a hit changes the counters
    let second = engine.execute(&Query::Stats).unwrap();
    let (QueryResult::Stats(first), QueryResult::Stats(second)) = (first, second) else {
        panic!("expected stats results")
    };
    assert!(second.cache.solution_hits > first.cache.solution_hits);
    // …and the stats JSON still parses as well-formed, deterministic-key JSON.
    let rendered = QueryResult::Stats(second).to_json().serialise();
    json::Value::parse(&rendered).expect("stats JSON must round-trip");
}
