//! Integration tests of the cost-aware fleet-mix optimisation: the search must agree
//! with brute-force enumeration, the approximation-screened path must agree with the
//! all-exact path, and the cost/provisioning sweeps must handle heterogeneous base
//! configurations by uniform scaling.

use std::sync::Arc;

use urs_core::{
    ClassCostModel, CostModel, CostSweep, MixBounds, MixSearch, MixSearchOptions,
    ProvisioningSweep, QueueSolver, ServerClass, ServerLifecycle, SolverCache,
    SpectralExpansionSolver, SystemConfig,
};

fn fast_class() -> ServerClass {
    ServerClass::new(1, 1.5, ServerLifecycle::exponential(0.1, 2.0).unwrap()).unwrap()
}

fn steady_class() -> ServerClass {
    ServerClass::new(1, 1.0, ServerLifecycle::exponential(0.01, 5.0).unwrap()).unwrap()
}

fn two_class_search(arrival_rate: f64, max_servers: usize) -> MixSearch {
    MixSearch::new(
        arrival_rate,
        vec![fast_class(), steady_class()],
        ClassCostModel::new(4.0, vec![1.4, 1.0]).unwrap(),
        MixBounds::up_to(max_servers).unwrap(),
    )
    .unwrap()
}

/// Brute force reference: solve every feasible composition exactly with a fresh
/// solver and pick the minimum by (cost, fleet size, lexicographic counts).
fn brute_force_optimum(search: &MixSearch) -> (Vec<usize>, f64) {
    let solver = SpectralExpansionSolver::default();
    let mut best: Option<(Vec<usize>, f64, usize)> = None;
    for counts in search.candidate_mixes().unwrap() {
        let classes: Vec<ServerClass> = search
            .classes()
            .iter()
            .zip(&counts)
            .filter(|(_, &n)| n > 0)
            .map(|(c, &n)| c.with_count(n).unwrap())
            .collect();
        let config = SystemConfig::heterogeneous(2.5, classes).unwrap();
        if !config.is_stable() {
            continue;
        }
        let l = solver.solve(&config).unwrap().mean_queue_length();
        let cost = search.cost_model().evaluate(l, &counts);
        if !cost.is_finite() {
            continue;
        }
        let servers = counts.iter().sum::<usize>();
        let better = match &best {
            None => true,
            Some((best_counts, best_cost, best_servers)) => match cost.total_cmp(best_cost) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => (servers, &counts) < (*best_servers, best_counts),
            },
        };
        if better {
            best = Some((counts, cost, servers));
        }
    }
    let (counts, cost, _) = best.expect("some composition is stable");
    (counts, cost)
}

#[test]
fn search_matches_brute_force_enumeration() {
    let search = two_class_search(2.5, 6);
    let (expected_counts, expected_cost) = brute_force_optimum(&search);

    let result = search.run().unwrap();
    assert!(!result.was_screened(), "27 candidates fall under the exhaustive limit");
    let best = result.optimum().expect("a stable mix exists");
    assert_eq!(best.counts(), expected_counts.as_slice());
    assert_eq!(best.cost().to_bits(), expected_cost.to_bits(), "exact solves must agree bitwise");

    // The forced all-exact entry point is the same computation.
    let exhaustive = search.run_exhaustive().unwrap();
    assert_eq!(exhaustive.optimum(), result.optimum());
}

#[test]
fn screened_path_agrees_with_the_all_exact_path_on_the_top_candidate() {
    let search = two_class_search(2.5, 6);
    let exact = search.run_exhaustive().unwrap();

    // Force the screening path on the same (small) space.
    let screened = search
        .clone()
        .with_options(MixSearchOptions { exhaustive_limit: 0, ..Default::default() })
        .run()
        .unwrap();
    assert!(screened.was_screened());
    assert!(screened.ranked().len() <= MixSearchOptions::default().screen_max_verified);
    assert!(screened.ranked().len() < screened.candidates(), "screening must actually prune");

    let exact_best = exact.optimum().unwrap();
    let screened_best = screened.optimum().unwrap();
    assert_eq!(screened_best.counts(), exact_best.counts());
    // The shortlisted candidates are verified exactly, so the winning cost is the
    // same number, not merely close.
    assert_eq!(screened_best.cost().to_bits(), exact_best.cost().to_bits());
    assert_eq!(
        screened_best.mean_queue_length().to_bits(),
        exact_best.mean_queue_length().to_bits()
    );
}

#[test]
fn screening_reuses_the_cached_factorisations_for_verification() {
    let cache = SolverCache::shared();
    let search = two_class_search(2.5, 6)
        .with_cache(Arc::clone(&cache))
        .with_options(MixSearchOptions { exhaustive_limit: 0, ..Default::default() });
    search.run().unwrap();
    let stats = cache.stats();
    // Every composition the verification pass touched had already been screened, so
    // the exact pass found its skeletons and eigensystems in the shared cache instead
    // of rebuilding them.
    assert!(stats.eigen_hits >= 1, "stats: {stats:?}");
    assert!(stats.skeleton_hits >= 1, "stats: {stats:?}");
    assert_eq!(stats.eigen_evictions, 0, "the run cache must hold the whole space");
}

#[test]
fn budget_bound_constrains_the_optimum() {
    let unbounded = two_class_search(2.5, 6).run().unwrap();
    let unbounded_best = unbounded.optimum().unwrap();
    let fleet_cost =
        ClassCostModel::new(4.0, vec![1.4, 1.0]).unwrap().fleet_cost(unbounded_best.counts());

    // A budget just below the unbounded winner's hardware cost forces a different,
    // costlier-overall composition.
    let budget = fleet_cost - 0.05;
    let bounded = MixSearch::new(
        2.5,
        vec![fast_class(), steady_class()],
        ClassCostModel::new(4.0, vec![1.4, 1.0]).unwrap(),
        MixBounds::up_to(6).unwrap().with_budget(budget).unwrap(),
    )
    .unwrap()
    .run()
    .unwrap();
    let bounded_best = bounded.optimum().expect("a within-budget mix is still stable");
    assert!(
        ClassCostModel::new(4.0, vec![1.4, 1.0]).unwrap().fleet_cost(bounded_best.counts())
            <= budget
    );
    assert_ne!(bounded_best.counts(), unbounded_best.counts());
    assert!(bounded_best.cost() >= unbounded_best.cost());
}

#[test]
fn heterogeneous_cost_sweep_scales_the_mix_uniformly() {
    // A 1:2 fast:steady mix costed over total fleet sizes — the sweep must succeed
    // (it used to error out on any heterogeneous configuration) and every point must
    // equal a by-hand solve of the uniformly scaled mix.
    let base = SystemConfig::heterogeneous(
        3.0,
        vec![fast_class().with_count(1).unwrap(), steady_class().with_count(2).unwrap()],
    )
    .unwrap();
    let solver = SpectralExpansionSolver::default();
    let sweep = CostSweep::evaluate(&solver, &base, &CostModel::paper_figure5(), 4..=8).unwrap();
    assert!(!sweep.points().is_empty());
    for point in sweep.points() {
        let scaled = base.with_total_servers(point.servers).unwrap();
        assert_eq!(scaled.servers(), point.servers);
        let l = solver.solve(&scaled).unwrap().mean_queue_length();
        assert_eq!(point.mean_queue_length.to_bits(), l.to_bits());
        assert_eq!(
            point.cost.to_bits(),
            CostModel::paper_figure5().evaluate(l, point.servers).to_bits()
        );
    }
    assert!(sweep.optimum().is_some());
}

#[test]
fn heterogeneous_provisioning_sweep_answers_the_figure9_question() {
    let base = SystemConfig::heterogeneous(
        3.5,
        vec![fast_class().with_count(1).unwrap(), steady_class().with_count(2).unwrap()],
    )
    .unwrap();
    let sweep =
        ProvisioningSweep::evaluate(&SpectralExpansionSolver::default(), &base, 4..=9).unwrap();
    assert!(!sweep.points().is_empty());
    let generous = sweep.min_servers_for_response_time(50.0);
    assert_eq!(generous, Some(sweep.points()[0].servers));
    assert_eq!(sweep.min_servers_for_response_time(1e-9), None);
}

#[test]
fn homogeneous_class_cost_model_reproduces_the_flat_cost_sweep() {
    // A one-class mix search under ClassCostModel::uniform must agree with the plain
    // Figure-5 cost sweep over the same totals, bit for bit.
    let lifecycle = ServerLifecycle::paper_fitted().unwrap();
    let base = SystemConfig::new(5, 4.0, 1.0, lifecycle.clone()).unwrap();
    let flat = CostModel::paper_figure5();
    let sweep =
        CostSweep::evaluate(&SpectralExpansionSolver::default(), &base, &flat, 5..=10).unwrap();
    let sweep_best = sweep.optimum().unwrap();

    let search = MixSearch::new(
        4.0,
        vec![ServerClass::new(1, 1.0, lifecycle).unwrap()],
        ClassCostModel::uniform(&flat, 1).unwrap(),
        MixBounds::up_to(10).unwrap().with_min_servers(5).unwrap(),
    )
    .unwrap();
    let best = search.run().unwrap();
    let best = best.optimum().unwrap();
    assert_eq!(best.counts(), &[sweep_best.servers]);
    assert_eq!(best.cost().to_bits(), sweep_best.cost.to_bits());
    assert_eq!(best.mean_queue_length().to_bits(), sweep_best.mean_queue_length.to_bits());
}
