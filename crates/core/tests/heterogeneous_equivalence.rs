//! Heterogeneous-server-class equivalence and cache-sharing guarantees.
//!
//! 1. Splitting a homogeneous fleet into several classes with *identical* parameters
//!    must reproduce the homogeneous solution **bit for bit** for every solver: the
//!    canonicalisation in [`SystemConfig::heterogeneous`] merges equal classes, so the
//!    solvers see exactly the homogeneous model.
//! 2. Genuinely mixed classes must agree *across* solvers (spectral vs
//!    matrix-geometric vs truncated CTMC) and with the product-form environment
//!    distribution.
//! 3. Sharing one [`SolverCache`] between the spectral solver and the geometric
//!    approximation must eliminate the duplicated quadratic eigensolve (the fig8/fig9
//!    pattern), bit-identically.

use std::sync::Arc;

use urs_core::{
    consistency_violations, sweeps::queue_length_vs_load, GeometricApproximation,
    MatrixGeometricSolver, ModeSpace, QbdMatrices, QueueSolution, ServerClass, ServerLifecycle,
    SolverCache, SpectralExpansionSolver, SystemConfig, TruncatedCtmcSolver, TruncatedOptions,
};

fn paper_lifecycle() -> ServerLifecycle {
    ServerLifecycle::paper_fitted().unwrap()
}

/// A 6-server homogeneous configuration and the same fleet split into three
/// equal-parameter classes.
fn split_pair(lambda: f64) -> (SystemConfig, SystemConfig) {
    let homogeneous = SystemConfig::new(6, lambda, 1.0, paper_lifecycle()).unwrap();
    let split = SystemConfig::heterogeneous(
        lambda,
        vec![
            ServerClass::new(2, 1.0, paper_lifecycle()).unwrap(),
            ServerClass::new(1, 1.0, paper_lifecycle()).unwrap(),
            ServerClass::new(3, 1.0, paper_lifecycle()).unwrap(),
        ],
    )
    .unwrap();
    (homogeneous, split)
}

/// A genuinely mixed two-class configuration with a small product mode space.
fn mixed_config(lambda: f64) -> SystemConfig {
    SystemConfig::heterogeneous(
        lambda,
        vec![
            ServerClass::new(3, 1.5, ServerLifecycle::exponential(0.05, 1.0).unwrap()).unwrap(),
            ServerClass::new(3, 1.0, ServerLifecycle::exponential(0.02, 0.5).unwrap()).unwrap(),
        ],
    )
    .unwrap()
}

#[test]
fn equal_parameter_classes_canonicalise_to_the_homogeneous_config() {
    let (homogeneous, split) = split_pair(4.0);
    assert_eq!(homogeneous, split, "equal classes must merge into the homogeneous config");
    assert!(split.is_homogeneous());
    assert_eq!(split.servers(), 6);
    assert_eq!(split.environment_states(), homogeneous.environment_states());
}

#[test]
fn equal_rate_classes_bit_match_homogeneous_spectral() {
    let (homogeneous, split) = split_pair(4.5);
    let solver = SpectralExpansionSolver::default();
    let a = solver.solve_detailed(&homogeneous).unwrap();
    let b = solver.solve_detailed(&split).unwrap();
    assert_eq!(a.mean_queue_length().to_bits(), b.mean_queue_length().to_bits());
    assert_eq!(a.dominant_eigenvalue().to_bits(), b.dominant_eigenvalue().to_bits());
    for level in 0..40 {
        assert_eq!(
            a.level_probability(level).to_bits(),
            b.level_probability(level).to_bits(),
            "level {level}"
        );
    }
}

#[test]
fn equal_rate_classes_bit_match_homogeneous_matrix_geometric() {
    let (homogeneous, split) = split_pair(4.5);
    let solver = MatrixGeometricSolver::default();
    let a = solver.solve_detailed(&homogeneous).unwrap();
    let b = solver.solve_detailed(&split).unwrap();
    assert_eq!(a.mean_queue_length().to_bits(), b.mean_queue_length().to_bits());
    for level in 0..40 {
        assert_eq!(
            a.level_probability(level).to_bits(),
            b.level_probability(level).to_bits(),
            "level {level}"
        );
    }
}

#[test]
fn equal_rate_classes_bit_match_homogeneous_approximation() {
    let (homogeneous, split) = split_pair(5.2);
    let solver = GeometricApproximation::default();
    let a = solver.solve_detailed(&homogeneous).unwrap();
    let b = solver.solve_detailed(&split).unwrap();
    assert_eq!(a.decay_rate().to_bits(), b.decay_rate().to_bits());
    let (ma, mb) = (a.mode_marginal(), b.mode_marginal());
    assert_eq!(ma.len(), mb.len());
    for (x, y) in ma.iter().zip(&mb) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn product_mode_space_has_the_expected_structure() {
    let config = mixed_config(4.0);
    let modes = ModeSpace::for_classes(config.classes()).unwrap();
    // Exponential lifecycles: n = m = 1 per class, so each class contributes
    // C(3+1, 1) = 4 occupancy vectors and the product space has 16 modes.
    assert_eq!(modes.len(), 16);
    assert_eq!(modes.len(), config.environment_states());
    assert_eq!(modes.class_count(), 2);
    assert_eq!(modes.class_servers(0) + modes.class_servers(1), 6);
    for (i, mode) in modes.iter().enumerate() {
        assert_eq!(mode.total_servers(), 6);
        let per_class: usize = (0..2).map(|c| modes.class_operative_count(i, c)).sum::<usize>();
        assert_eq!(per_class, mode.operative_count());
    }
    // The stationary distribution is the product of per-class multinomials: it must
    // sum to 1 and reproduce Σ_c N_c·a_c.
    let pi = modes.stationary_distribution_classes(config.classes());
    assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    let expected_operative: f64 =
        pi.iter().enumerate().map(|(i, p)| p * modes.mode(i).operative_count() as f64).sum();
    assert!((expected_operative - config.effective_servers()).abs() < 1e-9);
}

#[test]
fn mixed_classes_agree_across_all_solvers() {
    let config = mixed_config(5.0);
    assert!(config.is_stable());
    let spectral = SpectralExpansionSolver::default().solve_detailed(&config).unwrap();
    assert!(consistency_violations(&spectral, 60, 1e-7).is_empty());

    let mg = MatrixGeometricSolver::default().solve_detailed(&config).unwrap();
    assert!(
        (spectral.mean_queue_length() - mg.mean_queue_length()).abs()
            / spectral.mean_queue_length()
            < 1e-8,
        "spectral {} vs matrix-geometric {}",
        spectral.mean_queue_length(),
        mg.mean_queue_length()
    );
    for level in 0..30 {
        assert!(
            (spectral.level_probability(level) - mg.level_probability(level)).abs() < 1e-9,
            "level {level}"
        );
    }

    let truncated = TruncatedCtmcSolver::new(TruncatedOptions {
        max_level: 250,
        ..TruncatedOptions::default()
    })
    .solve_detailed(&config)
    .unwrap();
    assert!(
        (spectral.mean_queue_length() - truncated.mean_queue_length()).abs()
            / spectral.mean_queue_length()
            < 1e-5,
        "spectral {} vs truncated {}",
        spectral.mean_queue_length(),
        truncated.mean_queue_length()
    );

    // The environment marginal is the product-form multinomial distribution.
    let qbd = QbdMatrices::new(&config).unwrap();
    let expected = qbd.modes().stationary_distribution_classes(config.classes());
    for (got, want) in spectral.mode_marginal().iter().zip(&expected) {
        assert!((got - want).abs() < 1e-6, "mode marginal {got} vs {want}");
    }
}

#[test]
fn faster_servers_first_beats_reversed_class_order() {
    // The greedy fastest-first allocation is what the canonical order encodes; a
    // hand-built skeleton with the classes reversed (slow servers first) must yield a
    // *larger* mean queue, confirming the allocation matters and is applied.
    let fast = ServerClass::new(2, 2.0, ServerLifecycle::exponential(0.05, 1.0).unwrap()).unwrap();
    let slow = ServerClass::new(2, 0.5, ServerLifecycle::exponential(0.05, 1.0).unwrap()).unwrap();
    let lambda = 2.0;
    let canonical = SystemConfig::heterogeneous(lambda, vec![slow.clone(), fast.clone()]).unwrap();
    assert_eq!(canonical.classes()[0].service_rate(), 2.0, "canonical order is fastest-first");
    let l_fast_first =
        SpectralExpansionSolver::default().solve_detailed(&canonical).unwrap().mean_queue_length();

    // Build the reversed allocation directly through the skeleton API.
    let reversed = urs_core::QbdSkeleton::for_classes(&[slow, fast]).unwrap();
    let qbd = urs_core::QbdMatrices::with_skeleton(Arc::new(reversed), lambda);
    // Mean departure rate at level 1 (one job) differs: canonical serves it at the
    // fast rate in every mode where a fast server is up.
    let canonical_qbd = QbdMatrices::new(&canonical).unwrap();
    let mut canonical_total = 0.0;
    let mut reversed_total = 0.0;
    for i in 0..qbd.order() {
        reversed_total += qbd.c_level(1)[(i, i)];
    }
    for i in 0..canonical_qbd.order() {
        canonical_total += canonical_qbd.c_level(1)[(i, i)];
    }
    assert!(
        canonical_total > reversed_total,
        "fastest-first must serve a lone job faster: {canonical_total} vs {reversed_total}"
    );
    assert!(l_fast_first > 0.0);
}

#[test]
fn shared_cache_eliminates_the_duplicated_eigensolve() {
    // The fig8 pattern: one cache shared by the exact solver and the approximation
    // over a λ-only load sweep.
    let cache = SolverCache::shared();
    let spectral = SpectralExpansionSolver::default().with_cache(Arc::clone(&cache));
    let approx = GeometricApproximation::default().with_cache(Arc::clone(&cache));
    let base = SystemConfig::new(5, 3.0, 1.0, paper_lifecycle()).unwrap();
    let utilisations = [0.80, 0.85, 0.90, 0.95];
    let points = queue_length_vs_load(&spectral, &approx, &base, &utilisations).unwrap();
    assert_eq!(points.len(), 4);

    let stats = cache.stats();
    // The spectral solver (which now also *consumes* eigensystem entries, for the
    // screen-then-verify pattern of the mix search) missed once per grid point and
    // published its factorisation; the approximation then found every one of them.
    // Four misses and four hits for four points means zero duplicated eigensolves.
    assert_eq!(stats.eigen_misses, 4, "stats: {stats:?}");
    assert_eq!(stats.eigen_hits, 4, "stats: {stats:?}");
    // And the skeleton was built exactly once for the whole sweep.
    assert_eq!(stats.skeleton_misses, 1, "stats: {stats:?}");

    // Bit-identical to the uncached approximation at every grid point.
    for point in &points {
        let config = base.with_arrival_rate(point.arrival_rate).unwrap();
        let uncached = GeometricApproximation::default().solve_detailed(&config).unwrap();
        let cached = approx.solve_detailed(&config).unwrap();
        assert_eq!(cached.decay_rate().to_bits(), uncached.decay_rate().to_bits());
        assert_eq!(cached.mean_queue_length().to_bits(), uncached.mean_queue_length().to_bits());
    }
}

#[test]
fn approximation_populates_the_eigen_cache_for_itself() {
    // Approximation-first order (the fig9 pattern run in reverse): the first solve
    // misses and stores, the second hits its own entry.
    let cache = SolverCache::shared();
    let approx = GeometricApproximation::default().with_cache(Arc::clone(&cache));
    let config = SystemConfig::new(4, 2.5, 1.0, paper_lifecycle()).unwrap();
    let first = approx.solve_detailed(&config).unwrap();
    let second = approx.solve_detailed(&config).unwrap();
    assert_eq!(first.decay_rate().to_bits(), second.decay_rate().to_bits());
    let stats = cache.stats();
    assert_eq!((stats.eigen_misses, stats.eigen_hits), (1, 1), "stats: {stats:?}");
}

#[test]
fn spectral_consumes_the_approximations_eigensystem_bit_identically() {
    // Approximation-first order — the screening pass of a mix search.  The spectral
    // verification must reuse the cached eigenvalues (one eigen hit, no second
    // quadratic eigensolve) and still produce the bit-identical solution.
    let cache = SolverCache::shared();
    let approx = GeometricApproximation::default().with_cache(Arc::clone(&cache));
    let spectral = SpectralExpansionSolver::default().with_cache(Arc::clone(&cache));
    let config = SystemConfig::new(4, 3.1, 1.0, paper_lifecycle()).unwrap();
    approx.solve_detailed(&config).unwrap();
    assert_eq!(cache.stats().eigen_misses, 1);
    let cached = spectral.solve_detailed(&config).unwrap();
    let stats = cache.stats();
    assert_eq!((stats.eigen_misses, stats.eigen_hits), (1, 1), "stats: {stats:?}");
    let fresh = SpectralExpansionSolver::default().solve_detailed(&config).unwrap();
    assert_eq!(cached.mean_queue_length().to_bits(), fresh.mean_queue_length().to_bits());
    assert_eq!(cached.boundary_levels(), fresh.boundary_levels());
    assert_eq!(cached.eigenvalues(), fresh.eigenvalues());
}

#[test]
fn with_margin_rejects_invalid_margins() {
    assert!(GeometricApproximation::with_margin(1e-9).is_ok());
    assert!((GeometricApproximation::with_margin(1e-6).unwrap().margin() - 1e-6).abs() == 0.0);
    assert!((GeometricApproximation::default().margin() - 1e-9).abs() == 0.0);
    for bad in [0.0, -1e-9, f64::NAN, f64::INFINITY] {
        assert!(GeometricApproximation::with_margin(bad).is_err(), "margin {bad} must be rejected");
    }
}

#[test]
fn with_servers_refuses_heterogeneous_configs() {
    let config = mixed_config(4.0);
    assert!(config.with_servers(8).is_err());
    let (homogeneous, _) = split_pair(4.0);
    assert_eq!(homogeneous.with_servers(8).unwrap().servers(), 8);
}

#[test]
fn class_mix_sweep_connects_the_homogeneous_endpoints() {
    use urs_core::sweeps::queue_length_vs_class_mix;
    let lifecycle = ServerLifecycle::exponential(0.05, 1.0).unwrap();
    let primary = ServerClass::new(1, 1.0, lifecycle.clone()).unwrap();
    let secondary = ServerClass::new(1, 1.5, lifecycle.clone()).unwrap();
    let solver = SpectralExpansionSolver::default();
    let points = queue_length_vs_class_mix(&solver, 2.5, &primary, &secondary, 4).unwrap();
    // λ = 2.5 against 4 servers at µ = 1 with availability ≈ 0.952: the all-primary
    // endpoint is stable, so every mix (which only adds capacity) appears.
    assert_eq!(points.len(), 5);
    // Endpoint 0 is the homogeneous primary fleet.
    let homogeneous = SystemConfig::new(4, 2.5, 1.0, lifecycle.clone()).unwrap();
    let direct = solver.solve_detailed(&homogeneous).unwrap().mean_queue_length();
    assert_eq!(points[0].mean_queue_length.to_bits(), direct.to_bits());
    // Replacing servers with strictly faster ones shortens the queue monotonically.
    for pair in points.windows(2) {
        assert!(
            pair[1].mean_queue_length < pair[0].mean_queue_length + 1e-12,
            "faster mix must not lengthen the queue: {pair:?}"
        );
    }
}
