//! Equivalence guarantees for the logarithmic-reduction `R`-matrix solver.
//!
//! The rewrite of [`MatrixGeometricSolver`] from the natural fixed-point iteration to
//! Latouche–Ramaswamy logarithmic reduction must be a pure speed change: the `R`
//! matrix, and everything derived from it, has to agree with the legacy iteration
//! (retained as [`MatrixGeometricSolver::rate_matrix_fixed_point`]) to solver
//! tolerance on arbitrary stable configurations — homogeneous and heterogeneous —
//! and the full solution has to keep matching the spectral expansion, including at
//! the `N = 24` heterogeneous scale the old kernels could not reach comfortably.

use proptest::prelude::*;
use urs_core::{
    MatrixGeometricSolver, QbdMatrices, QueueSolution, ServerClass, ServerLifecycle,
    SpectralExpansionSolver, SystemConfig,
};

fn paper_config(servers: usize, lambda: f64) -> SystemConfig {
    SystemConfig::new(servers, lambda, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap()
}

/// A genuinely mixed two-class fleet of `2·half` servers with exponential lifecycles
/// (small per-class phase spaces, so the product mode space stays `(half+1)²`).
fn mixed_fleet(half: usize, lambda: f64) -> SystemConfig {
    SystemConfig::heterogeneous(
        lambda,
        vec![
            ServerClass::new(half, 1.4, ServerLifecycle::exponential(0.05, 1.0).unwrap()).unwrap(),
            ServerClass::new(half, 0.8, ServerLifecycle::exponential(0.02, 0.5).unwrap()).unwrap(),
        ],
    )
    .unwrap()
}

#[test]
fn reduction_and_fixed_point_agree_on_the_paper_model() {
    for (servers, lambda) in [(2usize, 1.0), (3, 2.0), (4, 3.3), (5, 2.5)] {
        let qbd = QbdMatrices::new(&paper_config(servers, lambda)).unwrap();
        let solver = MatrixGeometricSolver::default();
        let (lr, depth) = solver.rate_matrix_with_depth(&qbd).unwrap();
        let (fp, iterations) = solver.rate_matrix_fixed_point(&qbd).unwrap();
        let diff = (&lr - &fp).max_abs();
        assert!(diff < 1e-10, "N={servers}, λ={lambda}: |R_lr − R_fp| = {diff}");
        assert!(
            depth <= iterations,
            "logarithmic reduction ({depth}) must not need more steps than \
             the fixed point ({iterations})"
        );
    }
}

#[test]
fn reduction_and_fixed_point_agree_on_mixed_fleets() {
    let qbd = QbdMatrices::new(&mixed_fleet(3, 4.0)).unwrap();
    let solver = MatrixGeometricSolver::default();
    let (lr, _) = solver.rate_matrix_with_depth(&qbd).unwrap();
    let (fp, _) = solver.rate_matrix_fixed_point(&qbd).unwrap();
    assert!((&lr - &fp).max_abs() < 1e-10);
    // Both must satisfy the defining quadratic to solver accuracy.
    let residual = &(&qbd.q0() + &lr.matmul(&qbd.q1()).unwrap())
        + &lr.matmul(&lr).unwrap().matmul(&qbd.q2()).unwrap();
    assert!(residual.max_abs() < 1e-10, "residual {}", residual.max_abs());
}

#[test]
fn cross_solver_agreement_at_n24_heterogeneous() {
    // 24 servers in two classes: a 13×13 = 169-mode product space.  The point of the
    // kernel rewrite is that *both* exact solvers handle this comfortably and still
    // agree with each other.
    let config = mixed_fleet(12, 18.0);
    assert_eq!(config.servers(), 24);
    let mg = MatrixGeometricSolver::default().solve_detailed(&config).unwrap();
    let spectral = SpectralExpansionSolver::default().solve_detailed(&config).unwrap();
    let rel = (mg.mean_queue_length() - spectral.mean_queue_length()).abs()
        / spectral.mean_queue_length();
    assert!(rel < 1e-7, "mean queue length disagreement: {rel}");
    for level in 0..40 {
        assert!(
            (mg.level_probability(level) - spectral.level_probability(level)).abs() < 1e-8,
            "level {level}"
        );
    }
    // Observability: the reduction depth is reported and small (quadratic convergence).
    assert!(mg.reduction_depth() > 0 && mg.reduction_depth() < 64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On random stable homogeneous configurations the two R algorithms coincide and
    /// the reduction is never slower (in iteration count) than the fixed point.
    #[test]
    fn reduction_matches_fixed_point_on_random_configs(
        servers in 1usize..5,
        utilisation in 0.2_f64..0.9,
    ) {
        let lifecycle = ServerLifecycle::paper_fitted().unwrap();
        let lambda = utilisation * servers as f64 * lifecycle.availability();
        let config = SystemConfig::new(servers, lambda, 1.0, lifecycle).unwrap();
        let qbd = QbdMatrices::new(&config).unwrap();
        let solver = MatrixGeometricSolver::default();
        let (lr, depth) = solver.rate_matrix_with_depth(&qbd).unwrap();
        let (fp, iterations) = solver.rate_matrix_fixed_point(&qbd).unwrap();
        prop_assert!((&lr - &fp).max_abs() < 1e-9);
        prop_assert!(depth <= iterations);
    }
}
