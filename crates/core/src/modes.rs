//! Enumeration of the operational modes of the Markovian environment.
//!
//! The environment state of the queue records how many servers sit in each operative
//! phase and in each inoperative phase: a *mode* is a pair of occupancy vectors
//! `(X, Y)` with `x₁+…+x_n + y₁+…+y_m = N`.  The number of modes is
//! `s = C(N+n+m−1, n+m−1)` (paper, equation 12); this module enumerates them in a
//! deterministic order, maps between modes and indices, and computes the stationary
//! distribution of the environment (which is independent of the queue and has a simple
//! multinomial product form — a useful cross-check for the solvers).

use std::collections::HashMap;

use crate::config::{binomial, ServerLifecycle};
use crate::error::ModelError;
use crate::Result;

/// One operational mode: the numbers of servers in each operative and inoperative phase.
///
/// # Example
///
/// ```
/// use urs_core::{Mode, ModeSpace, ServerLifecycle};
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let lifecycle = ServerLifecycle::paper_fitted()?;
/// let modes = ModeSpace::new(2, &lifecycle)?;
/// assert_eq!(modes.len(), 6); // (N+2)(N+1)/2 for n = 2, m = 1
/// let all_operative_phase1 = Mode::new(vec![2, 0], vec![0]);
/// assert!(modes.index_of(&all_operative_phase1).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mode {
    operative: Vec<usize>,
    inoperative: Vec<usize>,
}

impl Mode {
    /// Creates a mode from explicit occupancy vectors.
    pub fn new(operative: Vec<usize>, inoperative: Vec<usize>) -> Self {
        Mode { operative, inoperative }
    }

    /// Occupancies of the operative phases (`x_j`).
    pub fn operative(&self) -> &[usize] {
        &self.operative
    }

    /// Occupancies of the inoperative phases (`y_k`).
    pub fn inoperative(&self) -> &[usize] {
        &self.inoperative
    }

    /// Total number of operative servers `x = Σ_j x_j`.
    pub fn operative_count(&self) -> usize {
        self.operative.iter().sum()
    }

    /// Total number of inoperative servers `y = Σ_k y_k`.
    pub fn inoperative_count(&self) -> usize {
        self.inoperative.iter().sum()
    }

    /// Total number of servers represented by the mode.
    pub fn total_servers(&self) -> usize {
        self.operative_count() + self.inoperative_count()
    }
}

/// The full set of operational modes for a system of `N` servers and a given lifecycle.
#[derive(Debug, Clone)]
pub struct ModeSpace {
    servers: usize,
    operative_phases: usize,
    inoperative_phases: usize,
    modes: Vec<Mode>,
    index: HashMap<Mode, usize>,
}

impl ModeSpace {
    /// Enumerates every mode of a system with `servers` servers whose phase structure is
    /// taken from `lifecycle`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `servers == 0`.
    pub fn new(servers: usize, lifecycle: &ServerLifecycle) -> Result<Self> {
        if servers == 0 {
            return Err(ModelError::InvalidParameter {
                name: "servers",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        let n = lifecycle.operative_phases();
        let m = lifecycle.inoperative_phases();
        let mut modes = Vec::with_capacity(binomial(servers + n + m - 1, n + m - 1));
        let mut current = vec![0usize; n + m];
        enumerate_compositions(servers, 0, &mut current, &mut |composition| {
            modes.push(Mode {
                operative: composition[..n].to_vec(),
                inoperative: composition[n..].to_vec(),
            });
        });
        let index = modes.iter().cloned().enumerate().map(|(i, mode)| (mode, i)).collect();
        Ok(ModeSpace { servers, operative_phases: n, inoperative_phases: m, modes, index })
    }

    /// Number of modes `s`.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Returns `true` if the space has no modes (never the case after construction).
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Number of servers `N`.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of operative phases `n`.
    pub fn operative_phases(&self) -> usize {
        self.operative_phases
    }

    /// Number of inoperative phases `m`.
    pub fn inoperative_phases(&self) -> usize {
        self.inoperative_phases
    }

    /// The mode with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn mode(&self, index: usize) -> &Mode {
        &self.modes[index]
    }

    /// All modes in enumeration order.
    pub fn iter(&self) -> impl Iterator<Item = &Mode> {
        self.modes.iter()
    }

    /// Index of a mode, or `None` if it does not belong to this space.
    pub fn index_of(&self, mode: &Mode) -> Option<usize> {
        self.index.get(mode).copied()
    }

    /// Number of operative servers in the mode with the given index.
    pub fn operative_count(&self, index: usize) -> usize {
        self.modes[index].operative_count()
    }

    /// Stationary probability of each mode.
    ///
    /// Because servers break down and are repaired independently of the queue, the
    /// stationary distribution of the environment is multinomial: each server is in
    /// operative phase `j` with probability `(α_j/ξ_j)/(1/ξ+1/η)` and in inoperative
    /// phase `k` with probability `(β_k/η_k)/(1/ξ+1/η)`, independently.  The solvers'
    /// mode marginals must agree with this vector — a strong correctness check.
    pub fn stationary_distribution(&self, lifecycle: &ServerLifecycle) -> Vec<f64> {
        let n = self.operative_phases;
        let m = self.inoperative_phases;
        let phase_probs: Vec<f64> = (0..n)
            .map(|j| lifecycle.operative_phase_probability(j))
            .chain((0..m).map(|k| lifecycle.inoperative_phase_probability(k)))
            .collect();
        self.modes
            .iter()
            .map(|mode| {
                let occupancies: Vec<usize> =
                    mode.operative.iter().chain(mode.inoperative.iter()).copied().collect();
                multinomial_probability(self.servers, &occupancies, &phase_probs)
            })
            .collect()
    }

    /// Expected number of operative servers under the stationary environment
    /// distribution; equals `N · availability`.
    pub fn expected_operative_servers(&self, lifecycle: &ServerLifecycle) -> f64 {
        self.stationary_distribution(lifecycle)
            .iter()
            .zip(&self.modes)
            .map(|(p, mode)| p * mode.operative_count() as f64)
            .sum()
    }
}

/// Recursively enumerates all compositions of `remaining` into the tail of `current`
/// starting at `position`, invoking `emit` for each complete composition.
fn enumerate_compositions(
    remaining: usize,
    position: usize,
    current: &mut Vec<usize>,
    emit: &mut impl FnMut(&[usize]),
) {
    if position + 1 == current.len() {
        current[position] = remaining;
        emit(current);
        return;
    }
    for value in 0..=remaining {
        current[position] = value;
        enumerate_compositions(remaining - value, position + 1, current, emit);
    }
}

/// Multinomial probability `N!/(∏ c_i!) ∏ p_i^{c_i}` computed in log space for
/// robustness with large `N`.
fn multinomial_probability(total: usize, counts: &[usize], probs: &[f64]) -> f64 {
    debug_assert_eq!(counts.len(), probs.len());
    debug_assert_eq!(counts.iter().sum::<usize>(), total);
    let mut log_prob = ln_factorial(total);
    for (&c, &p) in counts.iter().zip(probs) {
        log_prob -= ln_factorial(c);
        if c > 0 {
            if p <= 0.0 {
                return 0.0;
            }
            log_prob += c as f64 * p.ln();
        }
    }
    log_prob.exp()
}

/// Natural log of `n!` by direct summation (adequate for the server counts involved).
fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use urs_dist::HyperExponential;

    fn paper_lifecycle() -> ServerLifecycle {
        ServerLifecycle::paper_fitted().unwrap()
    }

    #[test]
    fn mode_count_matches_equation_12() {
        let lc = paper_lifecycle();
        for servers in [1usize, 2, 5, 10] {
            let space = ModeSpace::new(servers, &lc).unwrap();
            assert_eq!(space.len(), (servers + 2) * (servers + 1) / 2);
            assert!(!space.is_empty());
        }
        // A 2-phase repair distribution increases the composition dimension.
        let lc2 = ServerLifecycle::new(
            HyperExponential::new(&[0.7, 0.3], &[0.2, 0.01]).unwrap(),
            HyperExponential::new(&[0.9, 0.1], &[25.0, 1.6]).unwrap(),
        );
        let space = ModeSpace::new(3, &lc2).unwrap();
        // C(3+4-1, 3) = C(6,3) = 20
        assert_eq!(space.len(), 20);
    }

    #[test]
    fn paper_example_n2_has_six_modes() {
        // Paper, Section 3.1: N = 2, n = 2, m = 1 gives 6 operational modes.
        let space = ModeSpace::new(2, &paper_lifecycle()).unwrap();
        assert_eq!(space.len(), 6);
        // Every mode accounts for both servers.
        for mode in space.iter() {
            assert_eq!(mode.total_servers(), 2);
        }
        // The specific modes of the paper's example all exist.
        for (x, y) in [([0, 0], 2), ([1, 0], 1), ([0, 1], 1), ([2, 0], 0), ([1, 1], 0), ([0, 2], 0)]
        {
            let mode = Mode::new(x.to_vec(), vec![y]);
            assert!(space.index_of(&mode).is_some(), "missing mode {mode:?}");
        }
    }

    #[test]
    fn indices_round_trip() {
        let space = ModeSpace::new(4, &paper_lifecycle()).unwrap();
        for i in 0..space.len() {
            let mode = space.mode(i).clone();
            assert_eq!(space.index_of(&mode), Some(i));
        }
        assert_eq!(space.index_of(&Mode::new(vec![9, 0], vec![0])), None);
    }

    #[test]
    fn zero_servers_rejected() {
        assert!(ModeSpace::new(0, &paper_lifecycle()).is_err());
    }

    #[test]
    fn stationary_distribution_is_a_probability_vector() {
        let lc = paper_lifecycle();
        let space = ModeSpace::new(6, &lc).unwrap();
        let pi = space.stationary_distribution(&lc);
        assert_eq!(pi.len(), space.len());
        assert!(pi.iter().all(|p| *p >= 0.0));
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn expected_operative_servers_equals_availability_times_n() {
        let lc = paper_lifecycle();
        for servers in [1usize, 3, 8] {
            let space = ModeSpace::new(servers, &lc).unwrap();
            let expected = space.expected_operative_servers(&lc);
            assert!(
                (expected - servers as f64 * lc.availability()).abs() < 1e-9,
                "servers {servers}: {expected}"
            );
        }
    }

    #[test]
    fn stationary_distribution_for_single_exponential_server() {
        // One server, exponential lifecycle: availability = η/(ξ+η) exactly.
        let lc = ServerLifecycle::exponential(0.5, 2.0).unwrap();
        let space = ModeSpace::new(1, &lc).unwrap();
        let pi = space.stationary_distribution(&lc);
        assert_eq!(space.len(), 2);
        let up_index = (0..space.len()).find(|&i| space.operative_count(i) == 1).unwrap();
        assert!((pi[up_index] - 0.8).abs() < 1e-12);
        assert!((pi[1 - up_index] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn operative_counts_are_consistent() {
        let space = ModeSpace::new(5, &paper_lifecycle()).unwrap();
        for (i, mode) in space.iter().enumerate() {
            assert_eq!(space.operative_count(i), mode.operative_count());
            assert_eq!(mode.operative_count() + mode.inoperative_count(), 5);
        }
    }
}
