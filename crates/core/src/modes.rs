//! Enumeration of the operational modes of the Markovian environment.
//!
//! The environment state of the queue records how many servers sit in each operative
//! phase and in each inoperative phase: a *mode* is a pair of occupancy vectors
//! `(X, Y)` with `x₁+…+x_n + y₁+…+y_m = N`.  The number of modes is
//! `s = C(N+n+m−1, n+m−1)` (paper, equation 12); this module enumerates them in a
//! deterministic order, maps between modes and indices, and computes the stationary
//! distribution of the environment (which is independent of the queue and has a simple
//! multinomial product form — a useful cross-check for the solvers).

use std::collections::BTreeMap;
use std::ops::Range;

use crate::config::{binomial, ServerClass, ServerLifecycle};
use crate::error::ModelError;
use crate::Result;

/// One operational mode: the numbers of servers in each operative and inoperative phase.
///
/// # Example
///
/// ```
/// use urs_core::{Mode, ModeSpace, ServerLifecycle};
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let lifecycle = ServerLifecycle::paper_fitted()?;
/// let modes = ModeSpace::new(2, &lifecycle)?;
/// assert_eq!(modes.len(), 6); // (N+2)(N+1)/2 for n = 2, m = 1
/// let all_operative_phase1 = Mode::new(vec![2, 0], vec![0]);
/// assert!(modes.index_of(&all_operative_phase1).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Mode {
    operative: Vec<usize>,
    inoperative: Vec<usize>,
}

impl Mode {
    /// Creates a mode from explicit occupancy vectors.
    pub fn new(operative: Vec<usize>, inoperative: Vec<usize>) -> Self {
        Mode { operative, inoperative }
    }

    /// Occupancies of the operative phases (`x_j`).
    pub fn operative(&self) -> &[usize] {
        &self.operative
    }

    /// Occupancies of the inoperative phases (`y_k`).
    pub fn inoperative(&self) -> &[usize] {
        &self.inoperative
    }

    /// Total number of operative servers `x = Σ_j x_j`.
    pub fn operative_count(&self) -> usize {
        self.operative.iter().sum()
    }

    /// Total number of inoperative servers `y = Σ_k y_k`.
    pub fn inoperative_count(&self) -> usize {
        self.inoperative.iter().sum()
    }

    /// Total number of servers represented by the mode.
    pub fn total_servers(&self) -> usize {
        self.operative_count() + self.inoperative_count()
    }
}

/// Phase-structure of one server class inside a [`ModeSpace`]: its server count, its
/// phase counts and the offsets of its phase block in the concatenated occupancy
/// vectors of a [`Mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClassLayout {
    count: usize,
    operative_phases: usize,
    inoperative_phases: usize,
    operative_offset: usize,
    inoperative_offset: usize,
}

impl ClassLayout {
    fn total_phases(&self) -> usize {
        self.operative_phases + self.inoperative_phases
    }
}

/// The full set of operational modes for a system of `N` servers.
///
/// For the paper's homogeneous model the occupancy vectors range over the `n`
/// operative and `m` inoperative phases of the single lifecycle.  For heterogeneous
/// server classes ([`ModeSpace::for_classes`]) each class contributes its own phase
/// block, a mode is the concatenation of per-class occupancy vectors, and the space is
/// the cartesian product of the per-class spaces in a deterministic order (class 0
/// varies slowest).
#[derive(Debug, Clone)]
pub struct ModeSpace {
    servers: usize,
    operative_phases: usize,
    inoperative_phases: usize,
    layouts: Vec<ClassLayout>,
    modes: Vec<Mode>,
    index: BTreeMap<Mode, usize>,
}

impl ModeSpace {
    /// Enumerates every mode of a system with `servers` servers whose phase structure is
    /// taken from `lifecycle`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `servers == 0`.
    pub fn new(servers: usize, lifecycle: &ServerLifecycle) -> Result<Self> {
        Self::from_structure(&[(
            servers,
            lifecycle.operative_phases(),
            lifecycle.inoperative_phases(),
        )])
    }

    /// Enumerates the product mode space of heterogeneous server classes, in the order
    /// of the given class list (class 0 varies slowest).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `classes` is empty.
    pub fn for_classes(classes: &[ServerClass]) -> Result<Self> {
        if classes.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "classes",
                value: 0.0,
                constraint: "at least one server class is required",
            });
        }
        let structure: Vec<(usize, usize, usize)> = classes
            .iter()
            .map(|c| {
                (c.count(), c.lifecycle().operative_phases(), c.lifecycle().inoperative_phases())
            })
            .collect();
        Self::from_structure(&structure)
    }

    /// Builds the space from `(count, operative_phases, inoperative_phases)` triples.
    fn from_structure(structure: &[(usize, usize, usize)]) -> Result<Self> {
        let servers: usize = structure.iter().map(|&(count, _, _)| count).sum();
        if servers == 0 {
            return Err(ModelError::InvalidParameter {
                name: "servers",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        let mut layouts = Vec::with_capacity(structure.len());
        let (mut op_offset, mut inop_offset) = (0usize, 0usize);
        for &(count, n, m) in structure {
            layouts.push(ClassLayout {
                count,
                operative_phases: n,
                inoperative_phases: m,
                operative_offset: op_offset,
                inoperative_offset: inop_offset,
            });
            op_offset += n;
            inop_offset += m;
        }
        // Per-class composition lists, each in the deterministic lexicographic order of
        // `enumerate_compositions`.
        let per_class: Vec<Vec<Vec<usize>>> = layouts
            .iter()
            .map(|l| {
                let mut list = Vec::with_capacity(binomial(
                    l.count + l.total_phases() - 1,
                    l.total_phases() - 1,
                ));
                let mut current = vec![0usize; l.total_phases()];
                enumerate_compositions(l.count, 0, &mut current, &mut |c| list.push(c.to_vec()));
                list
            })
            .collect();
        // Cartesian product, class 0 outermost (slowest varying).
        let total: usize = per_class.iter().map(Vec::len).product();
        let mut modes = Vec::with_capacity(total);
        let mut cursor = vec![0usize; layouts.len()];
        loop {
            let mut operative = Vec::with_capacity(op_offset);
            let mut inoperative = Vec::with_capacity(inop_offset);
            for (layout, (choices, &pick)) in
                layouts.iter().zip(per_class.iter().zip(cursor.iter()))
            {
                let composition = &choices[pick];
                operative.extend_from_slice(&composition[..layout.operative_phases]);
                inoperative.extend_from_slice(&composition[layout.operative_phases..]);
            }
            modes.push(Mode { operative, inoperative });
            // Odometer increment, last class fastest.
            let mut position = layouts.len();
            loop {
                if position == 0 {
                    break;
                }
                position -= 1;
                cursor[position] += 1;
                if cursor[position] < per_class[position].len() {
                    break;
                }
                cursor[position] = 0;
            }
            if cursor.iter().all(|&c| c == 0) {
                break;
            }
        }
        let index = modes.iter().cloned().enumerate().map(|(i, mode)| (mode, i)).collect();
        Ok(ModeSpace {
            servers,
            operative_phases: op_offset,
            inoperative_phases: inop_offset,
            layouts,
            modes,
            index,
        })
    }

    /// Number of modes `s`.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Returns `true` if the space has no modes (never the case after construction).
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Number of servers `N`.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of operative phases `n` (summed over classes for heterogeneous spaces).
    pub fn operative_phases(&self) -> usize {
        self.operative_phases
    }

    /// Number of inoperative phases `m` (summed over classes for heterogeneous spaces).
    pub fn inoperative_phases(&self) -> usize {
        self.inoperative_phases
    }

    /// Number of server classes (1 for the paper's homogeneous model).
    pub fn class_count(&self) -> usize {
        self.layouts.len()
    }

    /// Number of servers in class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= self.class_count()`.
    pub fn class_servers(&self, class: usize) -> usize {
        self.layouts[class].count
    }

    /// Range of class `class`'s block inside [`Mode::operative`].
    ///
    /// # Panics
    ///
    /// Panics if `class >= self.class_count()`.
    pub fn class_operative_range(&self, class: usize) -> Range<usize> {
        let l = &self.layouts[class];
        l.operative_offset..l.operative_offset + l.operative_phases
    }

    /// Range of class `class`'s block inside [`Mode::inoperative`].
    ///
    /// # Panics
    ///
    /// Panics if `class >= self.class_count()`.
    pub fn class_inoperative_range(&self, class: usize) -> Range<usize> {
        let l = &self.layouts[class];
        l.inoperative_offset..l.inoperative_offset + l.inoperative_phases
    }

    /// Number of operative servers of class `class` in the mode with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()` or `class >= self.class_count()`.
    pub fn class_operative_count(&self, index: usize, class: usize) -> usize {
        self.modes[index].operative()[self.class_operative_range(class)].iter().sum()
    }

    /// The mode with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn mode(&self, index: usize) -> &Mode {
        &self.modes[index]
    }

    /// All modes in enumeration order.
    pub fn iter(&self) -> impl Iterator<Item = &Mode> {
        self.modes.iter()
    }

    /// Index of a mode, or `None` if it does not belong to this space.
    pub fn index_of(&self, mode: &Mode) -> Option<usize> {
        self.index.get(mode).copied()
    }

    /// Number of operative servers in the mode with the given index.
    pub fn operative_count(&self, index: usize) -> usize {
        self.modes[index].operative_count()
    }

    /// Stationary probability of each mode.
    ///
    /// Because servers break down and are repaired independently of the queue, the
    /// stationary distribution of the environment is multinomial: each server is in
    /// operative phase `j` with probability `(α_j/ξ_j)/(1/ξ+1/η)` and in inoperative
    /// phase `k` with probability `(β_k/η_k)/(1/ξ+1/η)`, independently.  The solvers'
    /// mode marginals must agree with this vector — a strong correctness check.
    /// # Panics
    ///
    /// Panics when the space was built from several heterogeneous classes — use
    /// [`stationary_distribution_classes`](Self::stationary_distribution_classes).
    pub fn stationary_distribution(&self, lifecycle: &ServerLifecycle) -> Vec<f64> {
        assert!(
            self.layouts.len() == 1,
            "stationary_distribution takes one lifecycle; this space has {} classes — \
             use stationary_distribution_classes",
            self.layouts.len()
        );
        self.stationary_distribution_parts(&[lifecycle])
    }

    /// Stationary probability of each mode of a heterogeneous space: classes evolve
    /// independently, so the distribution is the product of per-class multinomials.
    ///
    /// # Panics
    ///
    /// Panics when `classes` does not match the class structure the space was built
    /// from (class count or phase counts differ).
    pub fn stationary_distribution_classes(&self, classes: &[ServerClass]) -> Vec<f64> {
        assert!(
            classes.len() == self.layouts.len(),
            "{} classes supplied for a space with {} classes",
            classes.len(),
            self.layouts.len()
        );
        let lifecycles: Vec<&ServerLifecycle> =
            classes.iter().map(ServerClass::lifecycle).collect();
        self.stationary_distribution_parts(&lifecycles)
    }

    fn stationary_distribution_parts(&self, lifecycles: &[&ServerLifecycle]) -> Vec<f64> {
        let per_class_probs: Vec<Vec<f64>> = self
            .layouts
            .iter()
            .zip(lifecycles)
            .map(|(layout, lifecycle)| {
                assert!(
                    lifecycle.operative_phases() == layout.operative_phases
                        && lifecycle.inoperative_phases() == layout.inoperative_phases,
                    "lifecycle phase structure does not match the mode space"
                );
                (0..layout.operative_phases)
                    .map(|j| lifecycle.operative_phase_probability(j))
                    .chain(
                        (0..layout.inoperative_phases)
                            .map(|k| lifecycle.inoperative_phase_probability(k)),
                    )
                    .collect()
            })
            .collect();
        self.modes
            .iter()
            .map(|mode| {
                let mut probability = 1.0;
                for (class, layout) in self.layouts.iter().enumerate() {
                    let occupancies: Vec<usize> = mode.operative[layout.operative_offset
                        ..layout.operative_offset + layout.operative_phases]
                        .iter()
                        .chain(
                            &mode.inoperative[layout.inoperative_offset
                                ..layout.inoperative_offset + layout.inoperative_phases],
                        )
                        .copied()
                        .collect();
                    probability *= multinomial_probability(
                        layout.count,
                        &occupancies,
                        &per_class_probs[class],
                    );
                }
                probability
            })
            .collect()
    }

    /// Expected number of operative servers under the stationary environment
    /// distribution; equals `N · availability`.
    pub fn expected_operative_servers(&self, lifecycle: &ServerLifecycle) -> f64 {
        self.stationary_distribution(lifecycle)
            .iter()
            .zip(&self.modes)
            .map(|(p, mode)| p * mode.operative_count() as f64)
            .sum()
    }
}

/// Recursively enumerates all compositions of `remaining` into the tail of `current`
/// starting at `position`, invoking `emit` for each complete composition.
fn enumerate_compositions(
    remaining: usize,
    position: usize,
    current: &mut Vec<usize>,
    emit: &mut impl FnMut(&[usize]),
) {
    if position + 1 == current.len() {
        current[position] = remaining;
        emit(current);
        return;
    }
    for value in 0..=remaining {
        current[position] = value;
        enumerate_compositions(remaining - value, position + 1, current, emit);
    }
}

/// Multinomial probability `N!/(∏ c_i!) ∏ p_i^{c_i}` computed in log space for
/// robustness with large `N`.
fn multinomial_probability(total: usize, counts: &[usize], probs: &[f64]) -> f64 {
    debug_assert_eq!(counts.len(), probs.len());
    debug_assert_eq!(counts.iter().sum::<usize>(), total);
    let mut log_prob = ln_factorial(total);
    for (&c, &p) in counts.iter().zip(probs) {
        log_prob -= ln_factorial(c);
        if c > 0 {
            if p <= 0.0 {
                return 0.0;
            }
            log_prob += c as f64 * p.ln();
        }
    }
    log_prob.exp()
}

/// Natural log of `n!` by direct summation (adequate for the server counts involved).
fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use urs_dist::HyperExponential;

    fn paper_lifecycle() -> ServerLifecycle {
        ServerLifecycle::paper_fitted().unwrap()
    }

    #[test]
    fn mode_count_matches_equation_12() {
        let lc = paper_lifecycle();
        for servers in [1usize, 2, 5, 10] {
            let space = ModeSpace::new(servers, &lc).unwrap();
            assert_eq!(space.len(), (servers + 2) * (servers + 1) / 2);
            assert!(!space.is_empty());
        }
        // A 2-phase repair distribution increases the composition dimension.
        let lc2 = ServerLifecycle::new(
            HyperExponential::new(&[0.7, 0.3], &[0.2, 0.01]).unwrap(),
            HyperExponential::new(&[0.9, 0.1], &[25.0, 1.6]).unwrap(),
        );
        let space = ModeSpace::new(3, &lc2).unwrap();
        // C(3+4-1, 3) = C(6,3) = 20
        assert_eq!(space.len(), 20);
    }

    #[test]
    fn enumeration_and_index_are_run_to_run_deterministic() {
        // Two independently built spaces must agree on the enumeration order and
        // on every reverse lookup — the mode index must never depend on map
        // iteration order.
        let lc = paper_lifecycle();
        let a = ModeSpace::new(5, &lc).unwrap();
        let b = ModeSpace::new(5, &lc).unwrap();
        let modes_a: Vec<&Mode> = a.iter().collect();
        let modes_b: Vec<&Mode> = b.iter().collect();
        assert_eq!(modes_a, modes_b);
        for (i, mode) in a.iter().enumerate() {
            assert_eq!(a.index_of(mode), Some(i));
            assert_eq!(b.index_of(mode), Some(i));
        }
    }

    #[test]
    fn paper_example_n2_has_six_modes() {
        // Paper, Section 3.1: N = 2, n = 2, m = 1 gives 6 operational modes.
        let space = ModeSpace::new(2, &paper_lifecycle()).unwrap();
        assert_eq!(space.len(), 6);
        // Every mode accounts for both servers.
        for mode in space.iter() {
            assert_eq!(mode.total_servers(), 2);
        }
        // The specific modes of the paper's example all exist.
        for (x, y) in [([0, 0], 2), ([1, 0], 1), ([0, 1], 1), ([2, 0], 0), ([1, 1], 0), ([0, 2], 0)]
        {
            let mode = Mode::new(x.to_vec(), vec![y]);
            assert!(space.index_of(&mode).is_some(), "missing mode {mode:?}");
        }
    }

    #[test]
    fn indices_round_trip() {
        let space = ModeSpace::new(4, &paper_lifecycle()).unwrap();
        for i in 0..space.len() {
            let mode = space.mode(i).clone();
            assert_eq!(space.index_of(&mode), Some(i));
        }
        assert_eq!(space.index_of(&Mode::new(vec![9, 0], vec![0])), None);
    }

    #[test]
    fn zero_servers_rejected() {
        assert!(ModeSpace::new(0, &paper_lifecycle()).is_err());
    }

    #[test]
    fn stationary_distribution_is_a_probability_vector() {
        let lc = paper_lifecycle();
        let space = ModeSpace::new(6, &lc).unwrap();
        let pi = space.stationary_distribution(&lc);
        assert_eq!(pi.len(), space.len());
        assert!(pi.iter().all(|p| *p >= 0.0));
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn expected_operative_servers_equals_availability_times_n() {
        let lc = paper_lifecycle();
        for servers in [1usize, 3, 8] {
            let space = ModeSpace::new(servers, &lc).unwrap();
            let expected = space.expected_operative_servers(&lc);
            assert!(
                (expected - servers as f64 * lc.availability()).abs() < 1e-9,
                "servers {servers}: {expected}"
            );
        }
    }

    #[test]
    fn stationary_distribution_for_single_exponential_server() {
        // One server, exponential lifecycle: availability = η/(ξ+η) exactly.
        let lc = ServerLifecycle::exponential(0.5, 2.0).unwrap();
        let space = ModeSpace::new(1, &lc).unwrap();
        let pi = space.stationary_distribution(&lc);
        assert_eq!(space.len(), 2);
        let up_index = (0..space.len()).find(|&i| space.operative_count(i) == 1).unwrap();
        assert!((pi[up_index] - 0.8).abs() < 1e-12);
        assert!((pi[1 - up_index] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn operative_counts_are_consistent() {
        let space = ModeSpace::new(5, &paper_lifecycle()).unwrap();
        for (i, mode) in space.iter().enumerate() {
            assert_eq!(space.operative_count(i), mode.operative_count());
            assert_eq!(mode.operative_count() + mode.inoperative_count(), 5);
        }
    }
}
