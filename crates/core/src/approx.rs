//! The geometric (heavy-traffic) approximation (Section 3.2 of the paper).
//!
//! The exact spectral expansion keeps all `s` eigenvalues inside the unit disk.  The
//! approximation discards every term except the one belonging to the eigenvalue with
//! the largest modulus, `z_s` (always real and positive), yielding
//!
//! ```text
//! v_j ≈ u_s/(u_s·1) · (1 − z_s) · z_s^j ,    j = 0, 1, …
//! ```
//!
//! i.e. a geometric queue-length distribution that is *independent* of the operational
//! mode.  The approximation requires only one eigenvalue/eigenvector pair, is immune to
//! the ill-conditioning that affects the exact solution for large `N`, and is
//! asymptotically exact in heavy traffic (Mitrani 2005) — exactly the behaviour
//! reproduced in Figure 8.

use std::sync::Arc;

use urs_linalg::Complex;

use crate::cache::{EigenEntry, SolverCache};
use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::qbd::QbdMatrices;
use crate::solution::{QueueSolution, QueueSolver};
use crate::Result;

/// The geometric approximation solver.
///
/// # Example
///
/// ```
/// use urs_core::{GeometricApproximation, QueueSolver, ServerLifecycle, SystemConfig};
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let config = SystemConfig::new(10, 9.5, 1.0, ServerLifecycle::paper_fitted()?)?;
/// let approx = GeometricApproximation::default().solve(&config)?;
/// assert!(approx.mean_queue_length() > 9.0);
/// # Ok(())
/// # }
/// ```
///
/// When the approximation is compared against the exact solution on the same grid
/// (Figures 8 and 9), attach the *same* [`SolverCache`] to both solvers with
/// [`with_cache`](Self::with_cache): the approximation then reuses the eigensystem
/// the spectral solver factorised for the identical `(skeleton, λ)` instead of
/// re-solving the quadratic eigenproblem.
#[derive(Debug, Clone)]
pub struct GeometricApproximation {
    /// Margin used to separate eigenvalues inside the unit disk from the one at 1.
    unit_disk_margin: f64,
    cache: Option<Arc<SolverCache>>,
}

impl Default for GeometricApproximation {
    fn default() -> Self {
        GeometricApproximation { unit_disk_margin: 1e-9, cache: None }
    }
}

impl GeometricApproximation {
    /// Creates the approximation with an explicit unit-disk classification margin.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when the margin is not positive and
    /// finite (mirroring the validation of
    /// [`SpectralOptions`](crate::SpectralOptions) keys — a non-positive margin would
    /// misclassify the eigenvalue at 1 as "inside the unit disk").
    pub fn with_margin(unit_disk_margin: f64) -> Result<Self> {
        if !(unit_disk_margin.is_finite() && unit_disk_margin > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "unit_disk_margin",
                value: unit_disk_margin,
                constraint: "must be finite and positive",
            });
        }
        Ok(GeometricApproximation { unit_disk_margin, cache: None })
    }

    /// The unit-disk classification margin in use.
    pub fn margin(&self) -> f64 {
        self.unit_disk_margin
    }

    /// Attaches a [`SolverCache`]; share it with a
    /// [`SpectralExpansionSolver`](crate::SpectralExpansionSolver) so the two solvers
    /// factorise each `(skeleton, λ)` eigenproblem once between them.
    pub fn with_cache(mut self, cache: Arc<SolverCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<SolverCache>> {
        self.cache.as_ref()
    }

    /// Solves the model, returning the concrete [`GeometricSolution`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unstable`] for non-ergodic configurations and
    /// [`ModelError::SpectralFailure`] if no admissible dominant eigenvalue is found.
    pub fn solve_detailed(&self, config: &SystemConfig) -> Result<GeometricSolution> {
        config.ensure_stable()?;
        let margin = self.unit_disk_margin;
        let Some(cache) = &self.cache else {
            let qbd = QbdMatrices::new(config)?;
            let problem = urs_linalg::QuadraticEigenProblem::new(qbd.q0(), qbd.q1(), qbd.q2())?;
            let inside: Vec<Complex> =
                problem.eigenvalues_inside_unit_disk(margin)?.iter().map(|e| e.z).collect();
            let dominant = dominant_index(&inside)?;
            let u = problem.left_eigenvector(inside[dominant])?;
            return assemble_solution(config, inside[dominant], &u);
        };
        if let Some(entry) = cache.lookup_eigensystem(config, margin)? {
            let dominant = dominant_index(&entry.eigenvalues)?;
            let z = entry.eigenvalues[dominant];
            let u = match &entry.eigenvectors[dominant] {
                Some(u) => u.clone(),
                None => {
                    // Entry produced without this eigenvector (both current producers
                    // do store it, but a partial entry is legal) — one linear solve,
                    // no repeated eigenvalue factorisation, and the enriched entry is
                    // written back so the solve happens at most once per key.
                    let qbd =
                        QbdMatrices::with_skeleton(cache.skeleton(config)?, config.arrival_rate());
                    let u = urs_linalg::QuadraticEigenProblem::new(qbd.q0(), qbd.q1(), qbd.q2())?
                        .left_eigenvector(z)?;
                    let mut enriched = (*entry).clone();
                    enriched.eigenvectors[dominant] = Some(u.clone());
                    cache.store_eigensystem(config, margin, enriched)?;
                    u
                }
            };
            return assemble_solution(config, z, &u);
        }
        // Miss: factorise once and publish the eigenvalues plus the dominant
        // eigenvector so later solves (either solver) can reuse them.
        let qbd = QbdMatrices::with_skeleton(cache.skeleton(config)?, config.arrival_rate());
        let problem = urs_linalg::QuadraticEigenProblem::new(qbd.q0(), qbd.q1(), qbd.q2())?;
        let inside: Vec<Complex> =
            problem.eigenvalues_inside_unit_disk(margin)?.iter().map(|e| e.z).collect();
        let dominant = dominant_index(&inside)?;
        let u = problem.left_eigenvector(inside[dominant])?;
        let eigenvectors =
            (0..inside.len()).map(|i| if i == dominant { Some(u.clone()) } else { None }).collect();
        cache.store_eigensystem(
            config,
            margin,
            EigenEntry { eigenvalues: inside.clone(), eigenvectors },
        )?;
        assemble_solution(config, inside[dominant], &u)
    }
}

/// Index of the dominant admissible eigenvalue: the largest real positive one.
///
/// # Errors
///
/// Returns [`ModelError::SpectralFailure`] when no real positive eigenvalue exists.
fn dominant_index(eigenvalues: &[Complex]) -> Result<usize> {
    eigenvalues
        .iter()
        .enumerate()
        .filter(|(_, z)| z.im.abs() < 1e-8 && z.re > 0.0)
        .max_by(|(_, a), (_, b)| a.re.total_cmp(&b.re))
        .map(|(i, _)| i)
        .ok_or_else(|| {
            ModelError::SpectralFailure(
                "no real positive eigenvalue found inside the unit disk".into(),
            )
        })
}

/// Normalises the dominant left eigenvector into a probability vector over the modes
/// and assembles the geometric solution.
fn assemble_solution(
    config: &SystemConfig,
    dominant: Complex,
    u: &[Complex],
) -> Result<GeometricSolution> {
    // The eigenvector of a real eigenvalue can be taken real; normalise it to a
    // probability vector over the modes.
    let mut real_u: Vec<f64> = u.iter().map(|c| c.re).collect();
    let sum: f64 = real_u.iter().sum();
    if sum.abs() < 1e-300 {
        return Err(ModelError::SpectralFailure(
            "dominant eigenvector has vanishing component sum".into(),
        ));
    }
    for value in &mut real_u {
        *value /= sum;
    }
    // The stationary mode distribution is non-negative; flip sign conventions if
    // necessary and reject genuinely mixed-sign vectors.
    if real_u.iter().any(|p| *p < -1e-8) {
        return Err(ModelError::SpectralFailure(
            "dominant eigenvector is not a non-negative vector".into(),
        ));
    }
    for value in &mut real_u {
        *value = value.max(0.0);
    }
    Ok(GeometricSolution {
        arrival_rate: config.arrival_rate(),
        decay_rate: dominant.re,
        mode_distribution: real_u,
    })
}

impl QueueSolver for GeometricApproximation {
    fn name(&self) -> &'static str {
        "geometric approximation"
    }

    fn solve(&self, config: &SystemConfig) -> Result<Box<dyn QueueSolution>> {
        Ok(Box::new(self.solve_detailed(config)?))
    }
}

/// The approximate solution: a geometric queue-length distribution with decay rate
/// `z_s`, independent of the operational mode.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometricSolution {
    arrival_rate: f64,
    decay_rate: f64,
    mode_distribution: Vec<f64>,
}

impl GeometricSolution {
    /// The dominant eigenvalue `z_s` (the geometric decay rate of the queue length).
    pub fn decay_rate(&self) -> f64 {
        self.decay_rate
    }
}

impl QueueSolution for GeometricSolution {
    fn mode_count(&self) -> usize {
        self.mode_distribution.len()
    }

    fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    fn state_probability(&self, mode: usize, level: usize) -> f64 {
        if mode >= self.mode_distribution.len() {
            return 0.0;
        }
        self.mode_distribution[mode] * (1.0 - self.decay_rate) * self.decay_rate.powi(level as i32)
    }

    fn level_probability(&self, level: usize) -> f64 {
        (1.0 - self.decay_rate) * self.decay_rate.powi(level as i32)
    }

    fn mode_marginal(&self) -> Vec<f64> {
        self.mode_distribution.clone()
    }

    fn mean_queue_length(&self) -> f64 {
        self.decay_rate / (1.0 - self.decay_rate)
    }

    fn tail_probability(&self, level: usize) -> f64 {
        self.decay_rate.powi(level as i32 + 1)
    }
}

/// Convenience: the dominant eigenvalue used by the approximation, exposed for
/// diagnostics and the Figure 8 experiment without building the full solution object.
///
/// # Errors
///
/// Same conditions as [`GeometricApproximation::solve_detailed`].
pub fn dominant_eigenvalue(config: &SystemConfig) -> Result<f64> {
    Ok(GeometricApproximation::default().solve_detailed(config)?.decay_rate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;
    use crate::solution::consistency_violations;
    use crate::spectral::SpectralExpansionSolver;

    fn paper_config(servers: usize, lambda: f64) -> SystemConfig {
        SystemConfig::new(servers, lambda, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap()
    }

    #[test]
    fn approximation_is_a_valid_distribution() {
        let solution =
            GeometricApproximation::default().solve_detailed(&paper_config(5, 4.0)).unwrap();
        let violations = consistency_violations(&solution, 50, 1e-9);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(solution.decay_rate() > 0.0 && solution.decay_rate() < 1.0);
    }

    #[test]
    fn decay_rate_matches_exact_dominant_eigenvalue() {
        let config = paper_config(4, 3.0);
        let approx = GeometricApproximation::default().solve_detailed(&config).unwrap();
        let exact = SpectralExpansionSolver::default().solve_detailed(&config).unwrap();
        assert!((approx.decay_rate() - exact.dominant_eigenvalue()).abs() < 1e-8);
        assert!((dominant_eigenvalue(&config).unwrap() - approx.decay_rate()).abs() < 1e-12);
    }

    #[test]
    fn approximation_improves_with_load() {
        // Relative error of L should shrink as the load grows (Figure 8's message).
        // The paper's Figure 8 shows a visible gap at ρ ≈ 0.9 that closes only as the
        // load approaches saturation, so the final error bound is deliberately loose.
        let mut previous_error = f64::INFINITY;
        for &lambda in &[6.0, 8.0, 9.3, 9.8, 9.95] {
            let config = paper_config(10, lambda);
            let exact = SpectralExpansionSolver::default()
                .solve_detailed(&config)
                .unwrap()
                .mean_queue_length();
            let approx = GeometricApproximation::default()
                .solve_detailed(&config)
                .unwrap()
                .mean_queue_length();
            let rel_error = (approx - exact).abs() / exact;
            assert!(
                rel_error < previous_error + 1e-9,
                "relative error should not grow with load: {rel_error} after {previous_error}"
            );
            previous_error = rel_error;
        }
        assert!(previous_error < 0.05, "heavy-traffic error should be small: {previous_error}");
    }

    #[test]
    fn unstable_configuration_is_rejected() {
        let config = paper_config(3, 5.0);
        assert!(matches!(
            GeometricApproximation::default().solve_detailed(&config),
            Err(ModelError::Unstable { .. })
        ));
    }

    #[test]
    fn mode_marginal_is_a_probability_vector() {
        let solution =
            GeometricApproximation::default().solve_detailed(&paper_config(6, 5.0)).unwrap();
        let marginal = solution.mode_marginal();
        assert!((marginal.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(marginal.iter().all(|p| *p >= 0.0));
    }
}
