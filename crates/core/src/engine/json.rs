//! A small, dependency-free JSON value type, parser and serialiser.
//!
//! The registry is offline, so `urs-server`'s newline-delimited JSON protocol cannot
//! pull in `serde`; this module mirrors the vendored-crate approach used elsewhere in
//! the workspace and implements exactly the subset the query protocol needs.
//!
//! Design constraints, in order:
//!
//! 1. **Panic-free.**  The parser is the first thing untrusted bytes reach in a
//!    standing server, so it must never index, unwrap or recurse without bound — a
//!    malformed line yields a [`JsonError`], never a crash.  Nesting depth is capped
//!    at [`MAX_DEPTH`].
//! 2. **Deterministic.**  Objects store their members in a [`BTreeMap`], so
//!    serialisation order is the key order, independent of insertion order and of any
//!    hasher seeding — byte-identical response logs across runs and processes.
//! 3. **Bit-exact numbers.**  Numbers serialise through Rust's shortest-round-trip
//!    `f64` formatting, so `parse(serialise(x))` recovers `x` bit for bit; non-finite
//!    numbers have no JSON form and serialise as `null`.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser.  Deep enough for any query in the
/// protocol, shallow enough that a `[[[[…` bomb fails fast instead of overflowing
/// the stack.
pub const MAX_DEPTH: u32 = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; members are ordered by key for deterministic serialisation.
    Object(BTreeMap<String, Value>),
}

/// A parse failure: the byte offset it was detected at and a static description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformed byte; inputs nested
    /// deeper than [`MAX_DEPTH`] are rejected.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.parse_value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Serialises to compact JSON (no whitespace), deterministically: object members
    /// in key order, numbers in shortest-round-trip form, non-finite numbers as
    /// `null`.
    pub fn serialise(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Member lookup on an object; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that represents one
    /// exactly (rejects fractions and anything beyond 2⁵³).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if !(0.0..=9_007_199_254_740_992.0).contains(&n) {
            return None;
        }
        let i = n as u64;
        if (i as f64).to_bits() != n.to_bits() {
            return None;
        }
        usize::try_from(i).ok()
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Convenience constructor: an object from `(key, value)` pairs.
pub fn object<const N: usize>(members: [(&str, Value); N]) -> Value {
    Value::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience constructor: an array of numbers.
pub fn number_array(values: &[f64]) -> Value {
    Value::Array(values.iter().map(|v| Value::Number(*v)).collect())
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write as _;
    if n.is_finite() {
        // Rust's `Display` for f64 is shortest-round-trip: the printed decimal parses
        // back to the identical bits, which the restart-determinism contract needs.
        let _ = write!(out, "{n}");
    } else {
        // NaN/∞ have no JSON representation.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn advance(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.pos += 1;
        Some(byte)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn parse_value(&mut self, depth: u32) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than the supported maximum"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &'static str, value: Value) -> Result<Value, JsonError> {
        if self.bytes.get(self.pos..).is_some_and(|rest| rest.starts_with(keyword.as_bytes())) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error("invalid keyword"))
        }
    }

    fn parse_object(&mut self, depth: u32) -> Result<Value, JsonError> {
        self.consume(b'{', "expected '{'")?;
        let mut members = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.consume(b':', "expected ':' after object key")?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            members.insert(key, value);
            self.skip_whitespace();
            match self.advance() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(members)),
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: u32) -> Result<Value, JsonError> {
        self.consume(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.advance() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.advance() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.advance() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.parse_unicode_escape()?),
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("unescaped control character in string"));
                }
                Some(byte) => {
                    // Re-assemble UTF-8 multi-byte sequences: the input is a &str, so
                    // the bytes are valid UTF-8 by construction.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(byte);
                        let end = start + len;
                        match self.bytes.get(start..end).and_then(|b| std::str::from_utf8(b).ok()) {
                            Some(s) => {
                                out.push_str(s);
                                self.pos = end;
                            }
                            None => return Err(self.error("invalid UTF-8 in string")),
                        }
                    }
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.parse_hex4()?;
        if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.advance() != Some(b'\\') || self.advance() != Some(b'u') {
                return Err(self.error("unpaired surrogate escape"));
            }
            let second = self.parse_hex4()?;
            if !(0xDC00..=0xDFFF).contains(&second) {
                return Err(self.error("invalid low surrogate"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))
        } else {
            char::from_u32(first).ok_or_else(|| self.error("invalid unicode escape"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.advance() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("invalid hex digit in unicode escape")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let integer_digits = self.skip_digits();
        if integer_digits == 0 {
            return Err(self.error("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.skip_digits() == 0 {
                return Err(self.error("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.skip_digits() == 0 {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or_default();
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            Ok(_) => Err(self.error("number overflows an f64")),
            Err(_) => Err(self.error("malformed number")),
        }
    }

    fn skip_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

/// Length of the UTF-8 sequence introduced by `first` (1 for malformed leads; the
/// subsequent `from_utf8` check rejects those).
fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_scalar_forms() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(Value::parse("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quote\" back\\slash tab\t control\u{0007} π ✓ 𝄞";
        let serialised = Value::String(original.into()).serialise();
        assert_eq!(Value::parse(&serialised).unwrap(), Value::String(original.into()));
        // Explicit escape forms parse too, including surrogate pairs.
        assert_eq!(
            Value::parse(r#""\u0041\u00e9\ud834\udd1e""#).unwrap(),
            Value::String("Aé𝄞".into())
        );
    }

    #[test]
    fn numbers_round_trip_bit_for_bit() {
        for x in [0.0, -0.0, 1.0 / 3.0, 6.02e23, 5e-324, f64::MAX, 34.62, 0.1 + 0.2] {
            let serialised = Value::Number(x).serialise();
            let Value::Number(back) = Value::parse(&serialised).unwrap() else {
                panic!("expected a number back");
            };
            assert_eq!(back.to_bits(), x.to_bits(), "{x} serialised as {serialised}");
        }
        assert_eq!(Value::Number(f64::NAN).serialise(), "null");
        assert_eq!(Value::Number(f64::INFINITY).serialise(), "null");
    }

    #[test]
    fn serialisation_is_deterministic_and_key_ordered() {
        let v = Value::parse(r#"{"zeta":1,"alpha":2,"mid":[true,false]}"#).unwrap();
        assert_eq!(v.serialise(), r#"{"alpha":2,"mid":[true,false],"zeta":1}"#);
        assert_eq!(v.serialise(), Value::parse(&v.serialise()).unwrap().serialise());
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[",
            "]",
            "{]",
            "[}",
            "nul",
            "tru",
            "+1",
            "1.",
            ".5",
            "1e",
            "--3",
            "\"",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,]",
            "[1 2]",
            "{1:2}",
            "1 2",
            "1e999",
            "\u{1}",
            "\"a\u{1}b\"",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail to parse");
        }
    }

    #[test]
    fn depth_bomb_is_rejected_not_overflowed() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Value::parse(&deep).is_err());
        // A document at a comfortable depth still parses.
        let ok = "[".repeat(32) + "1" + &"]".repeat(32);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn as_usize_rejects_fractions_and_out_of_range() {
        assert_eq!(Value::Number(7.0).as_usize(), Some(7));
        assert_eq!(Value::Number(0.0).as_usize(), Some(0));
        assert_eq!(Value::Number(7.5).as_usize(), None);
        assert_eq!(Value::Number(-1.0).as_usize(), None);
        assert_eq!(Value::Number(1e300).as_usize(), None);
        assert_eq!(Value::String("7".into()).as_usize(), None);
    }
}
