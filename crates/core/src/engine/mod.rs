//! The query engine: capacity-planning questions as data, planned and executed
//! against one shared cache.
//!
//! Everything below `urs_core` used to be reachable only as a *batch API*: a binary
//! constructs a solver, calls a sweep, exits, and the memoised skeletons,
//! eigensystems and response transforms die with the process.  This module
//! restructures that path into **query → plan → execute**:
//!
//! * [`Query`] — every analysis of the paper as a plain value (solve, cost sweep,
//!   provisioning, percentiles, SLA sweep, mix search, stats), parseable from the
//!   newline-delimited JSON protocol served by `urs-server` and canonically hashable
//!   via [`Query::canonical_key`];
//! * [`plan`] — groups compatible queries (same QBD-skeleton identity) so a batch
//!   shares skeleton/eigensystem/transform lookups and, for plain solves, one
//!   [`ThreadPool`] fan-out;
//! * [`Engine`] — owns the shared [`SolverCache`] and pool, executes queries through
//!   the same `exec` grid executors that back the legacy `*_with` entry points, so
//!   engine results are **bit-identical** to the batch API (pinned by the
//!   `engine_equivalence` suite);
//! * [`QueryResult`] — deterministic result values serialisable to JSON via the
//!   dependency-free [`json`] module: object keys are ordered, numbers round-trip
//!   bit-exactly, so the same trace always produces a byte-identical response log
//!   (the restart-determinism contract; `stats` responses are the documented
//!   exception — counters depend on cache history).
//!
//! # Query grammar (JSON)
//!
//! ```text
//! {"type":"solve","config":CONFIG}
//! {"type":"cost_sweep","config":CONFIG,"holding_cost":4,"server_cost":1,
//!  "min_servers":5,"max_servers":12}
//! {"type":"provisioning","config":CONFIG,"min_servers":7,"max_servers":12}
//! {"type":"percentiles","config":CONFIG,"fractions":[0.9,0.99]}
//! {"type":"sla_sweep","config":CONFIG,"server_counts":[2,3,4],"fractions":[0.95]}
//! {"type":"mix_search","arrival_rate":4.0,"holding_cost":4.0,
//!  "classes":[{"count":1,"service_rate":1.0,"cost":1.0,"lifecycle":LIFECYCLE},…],
//!  "min_servers":1,"max_servers":8,"budget":12.5}          // budget optional
//! {"type":"stats"}
//!
//! CONFIG    = {"servers":10,"arrival_rate":8.0,"service_rate":1.0,
//!              "lifecycle":LIFECYCLE}
//! LIFECYCLE = "paper"                                      // the Sun-trace fit
//!           | {"breakdown_rate":0.1,"repair_rate":2.0}     // exponential phases
//!           | {"operative_mean":34.62,"operative_scv":4.6,"repair_rate":0.2}
//!           | {"operative":DIST,"inoperative":DIST}        // general form
//! DIST      = {"weights":[…],"rates":[…]}                  // hyperexponential
//! ```
//!
//! [`Query::to_json`] emits the general lifecycle form, so serialising and
//! re-parsing a query reproduces it exactly.

pub mod json;

pub(crate) mod exec;

use std::fmt;
use std::sync::Arc;

use urs_dist::HyperExponential;

use crate::cache::{digest_of, skeleton_digest, CacheOccupancy, CacheStats, SolverCache};
use crate::config::{canonical_bits, ServerClass, ServerLifecycle, SystemConfig};
use crate::cost::{ClassCostModel, CostModel, CostPoint, CostSweep};
use crate::error::ModelError;
use crate::mix::{MixBounds, MixCandidate, MixSearch, MixSearchResult};
use crate::parallel::ThreadPool;
use crate::provisioning::{ProvisioningPoint, ProvisioningSweep};
use crate::response::{ResponseAnalysis, ResponseOptions};
use crate::spectral::SpectralExpansionSolver;
use crate::sweeps::SlaPoint;
use crate::Result;

use json::Value;

/// A capacity-planning query: one of the paper's analyses as a plain value.
///
/// Construct directly, or parse from the JSON protocol with [`Query::from_json`] /
/// [`Query::parse_line`].  Parameters are canonicalised by [`SystemConfig`] on
/// construction (class order, merged classes, signed zero), so two queries that
/// denote the same analysis compare equal and share a [`canonical_key`](Self::canonical_key).
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Solve one configuration exactly (spectral expansion).
    Solve {
        /// The system to solve.
        config: SystemConfig,
    },
    /// Sweep the Section-4 cost function `C = c₁·L + c₂·N` over a server range
    /// (Figure 5).
    CostSweep {
        /// Base configuration; the class mix is scaled to each total.
        config: SystemConfig,
        /// Cost coefficients.
        cost: CostModel,
        /// Smallest fleet size to evaluate.
        min_servers: usize,
        /// Largest fleet size to evaluate.
        max_servers: usize,
    },
    /// Sweep performance over a server range (Figure 9 capacity planning).
    Provisioning {
        /// Base configuration; the class mix is scaled to each total.
        config: SystemConfig,
        /// Smallest fleet size to evaluate.
        min_servers: usize,
        /// Largest fleet size to evaluate.
        max_servers: usize,
    },
    /// Certified response-time percentiles of one configuration.
    Percentiles {
        /// The system to analyse.
        config: SystemConfig,
        /// Requested fractions in `(0, 1)`, e.g. `0.99` for P99.
        fractions: Vec<f64>,
    },
    /// Percentiles versus fleet size — the SLA/capacity trade-off.
    SlaSweep {
        /// Base configuration.
        config: SystemConfig,
        /// Fleet sizes to evaluate (unstable ones are skipped).
        server_counts: Vec<usize>,
        /// Requested fractions in `(0, 1)`.
        fractions: Vec<f64>,
    },
    /// Optimise the composition of a heterogeneous fleet under the per-class cost
    /// model.
    MixSearch {
        /// Arrival rate the fleet must serve.
        arrival_rate: f64,
        /// Candidate server classes (template counts are ignored).
        classes: Vec<ServerClass>,
        /// Per-class cost model (one price per class, same order).
        cost: ClassCostModel,
        /// Fleet-size and budget bounds on the searched space.
        bounds: MixBounds,
    },
    /// Report engine cache statistics (hit rates, eviction ages, occupancy).
    ///
    /// The response depends on cache history, so `stats` is excluded from the
    /// byte-identical replay contract that the compute queries honour.
    Stats,
}

/// The canonical, hashable identity of a [`Query`] — equal keys mean "same analysis,
/// answerable by one cache entry".  Derived with the same deterministic FNV-1a hash
/// that assigns cache shards, so keys are stable across runs and processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryKey(u64);

impl QueryKey {
    /// The digest value.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// A failure to parse a protocol line into a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryParseError {
    /// The line is not well-formed JSON.
    Json(json::JsonError),
    /// The JSON does not match the query grammar.
    Grammar(&'static str),
    /// The parameters were rejected by the model layer (e.g. a non-positive rate).
    Model(ModelError),
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryParseError::Json(e) => write!(f, "{e}"),
            QueryParseError::Grammar(msg) => write!(f, "query grammar: {msg}"),
            QueryParseError::Model(e) => write!(f, "invalid parameters: {e}"),
        }
    }
}

impl std::error::Error for QueryParseError {}

impl From<json::JsonError> for QueryParseError {
    fn from(e: json::JsonError) -> Self {
        QueryParseError::Json(e)
    }
}

impl From<ModelError> for QueryParseError {
    fn from(e: ModelError) -> Self {
        QueryParseError::Model(e)
    }
}

fn require<'a>(value: &'a Value, key: &str, missing: &'static str) -> Result2<&'a Value> {
    value.get(key).ok_or(QueryParseError::Grammar(missing))
}

fn require_f64(value: &Value, key: &str, missing: &'static str) -> Result2<f64> {
    require(value, key, missing)?.as_f64().ok_or(QueryParseError::Grammar(missing))
}

fn require_usize(value: &Value, key: &str, missing: &'static str) -> Result2<usize> {
    require(value, key, missing)?.as_usize().ok_or(QueryParseError::Grammar(missing))
}

fn f64_list(value: &Value, missing: &'static str) -> Result2<Vec<f64>> {
    value
        .as_array()
        .ok_or(QueryParseError::Grammar(missing))?
        .iter()
        .map(|v| v.as_f64().ok_or(QueryParseError::Grammar(missing)))
        .collect()
}

type Result2<T> = std::result::Result<T, QueryParseError>;

fn parse_distribution(value: &Value) -> Result2<HyperExponential> {
    let weights = f64_list(
        require(value, "weights", "distribution requires a \"weights\" number array")?,
        "distribution requires a \"weights\" number array",
    )?;
    let rates = f64_list(
        require(value, "rates", "distribution requires a \"rates\" number array")?,
        "distribution requires a \"rates\" number array",
    )?;
    HyperExponential::new(&weights, &rates).map_err(|e| QueryParseError::Model(e.into()))
}

fn parse_lifecycle(value: &Value) -> Result2<ServerLifecycle> {
    if value.as_str() == Some("paper") {
        return Ok(ServerLifecycle::paper_fitted()?);
    }
    if value.get("operative").is_some() {
        let operative = parse_distribution(require(
            value,
            "operative",
            "lifecycle requires an \"operative\" distribution",
        )?)?;
        let inoperative = parse_distribution(require(
            value,
            "inoperative",
            "general lifecycle requires an \"inoperative\" distribution",
        )?)?;
        return Ok(ServerLifecycle::new(operative, inoperative));
    }
    if value.get("operative_mean").is_some() {
        let mean = require_f64(value, "operative_mean", "lifecycle requires \"operative_mean\"")?;
        let scv = require_f64(value, "operative_scv", "lifecycle requires \"operative_scv\"")?;
        let repair = require_f64(value, "repair_rate", "lifecycle requires \"repair_rate\"")?;
        let operative = HyperExponential::with_mean_and_scv(mean, scv)
            .map_err(|e| QueryParseError::Model(e.into()))?;
        return Ok(ServerLifecycle::with_exponential_repair(operative, repair)?);
    }
    if value.get("breakdown_rate").is_some() {
        let breakdown =
            require_f64(value, "breakdown_rate", "lifecycle requires \"breakdown_rate\"")?;
        let repair = require_f64(value, "repair_rate", "lifecycle requires \"repair_rate\"")?;
        return Ok(ServerLifecycle::exponential(breakdown, repair)?);
    }
    Err(QueryParseError::Grammar(
        "lifecycle must be \"paper\", {breakdown_rate, repair_rate}, \
         {operative_mean, operative_scv, repair_rate} or {operative, inoperative}",
    ))
}

fn parse_config(value: &Value) -> Result2<SystemConfig> {
    let servers = require_usize(value, "servers", "config requires an integer \"servers\"")?;
    let arrival = require_f64(value, "arrival_rate", "config requires a numeric \"arrival_rate\"")?;
    let service = require_f64(value, "service_rate", "config requires a numeric \"service_rate\"")?;
    let lifecycle =
        parse_lifecycle(require(value, "lifecycle", "config requires a \"lifecycle\"")?)?;
    Ok(SystemConfig::new(servers, arrival, service, lifecycle)?)
}

fn distribution_to_json(dist: &HyperExponential) -> Value {
    json::object([
        ("weights", json::number_array(dist.weights())),
        ("rates", json::number_array(dist.rates())),
    ])
}

fn lifecycle_to_json(lifecycle: &ServerLifecycle) -> Value {
    json::object([
        ("operative", distribution_to_json(lifecycle.operative())),
        ("inoperative", distribution_to_json(lifecycle.inoperative())),
    ])
}

fn config_to_json(config: &SystemConfig) -> Value {
    json::object([
        ("servers", Value::Number(config.servers() as f64)),
        ("arrival_rate", Value::Number(config.arrival_rate())),
        ("service_rate", Value::Number(config.service_rate())),
        ("lifecycle", lifecycle_to_json(config.lifecycle())),
    ])
}

/// Hashable identity of one server class, from public accessors only.
fn class_bits(class: &ServerClass) -> (usize, u64, Vec<u64>, Vec<u64>) {
    let phase_bits = |dist: &HyperExponential| -> Vec<u64> {
        dist.weights().iter().chain(dist.rates()).map(|&x| canonical_bits(x)).collect()
    };
    (
        class.count(),
        canonical_bits(class.service_rate()),
        phase_bits(class.lifecycle().operative()),
        phase_bits(class.lifecycle().inoperative()),
    )
}

fn classes_bits(classes: &[ServerClass]) -> Vec<(usize, u64, Vec<u64>, Vec<u64>)> {
    classes.iter().map(class_bits).collect()
}

impl Query {
    /// Parses one line of the JSON protocol.
    ///
    /// # Errors
    ///
    /// Returns [`QueryParseError`] for malformed JSON, grammar violations and
    /// parameters the model layer rejects.  Never panics, whatever the input.
    pub fn parse_line(line: &str) -> Result2<Query> {
        Query::from_json(&Value::parse(line)?)
    }

    /// Builds a query from a parsed JSON value (see the module docs for the
    /// grammar).
    ///
    /// # Errors
    ///
    /// As [`parse_line`](Self::parse_line), minus the JSON-syntax cases.
    pub fn from_json(value: &Value) -> Result2<Query> {
        let kind = require(value, "type", "query requires a \"type\" string")?
            .as_str()
            .ok_or(QueryParseError::Grammar("query requires a \"type\" string"))?;
        match kind {
            "solve" => {
                let config =
                    parse_config(require(value, "config", "solve requires a \"config\"")?)?;
                Ok(Query::Solve { config })
            }
            "cost_sweep" => {
                let config =
                    parse_config(require(value, "config", "cost_sweep requires a \"config\"")?)?;
                let holding =
                    require_f64(value, "holding_cost", "cost_sweep requires \"holding_cost\"")?;
                let server =
                    require_f64(value, "server_cost", "cost_sweep requires \"server_cost\"")?;
                let min_servers =
                    require_usize(value, "min_servers", "cost_sweep requires \"min_servers\"")?;
                let max_servers =
                    require_usize(value, "max_servers", "cost_sweep requires \"max_servers\"")?;
                Ok(Query::CostSweep {
                    config,
                    cost: CostModel::new(holding, server)?,
                    min_servers,
                    max_servers,
                })
            }
            "provisioning" => {
                let config =
                    parse_config(require(value, "config", "provisioning requires a \"config\"")?)?;
                let min_servers =
                    require_usize(value, "min_servers", "provisioning requires \"min_servers\"")?;
                let max_servers =
                    require_usize(value, "max_servers", "provisioning requires \"max_servers\"")?;
                Ok(Query::Provisioning { config, min_servers, max_servers })
            }
            "percentiles" => {
                let config =
                    parse_config(require(value, "config", "percentiles requires a \"config\"")?)?;
                let fractions = f64_list(
                    require(value, "fractions", "percentiles requires \"fractions\"")?,
                    "percentiles requires a \"fractions\" number array",
                )?;
                Ok(Query::Percentiles { config, fractions })
            }
            "sla_sweep" => {
                let config =
                    parse_config(require(value, "config", "sla_sweep requires a \"config\"")?)?;
                let counts = require(
                    value,
                    "server_counts",
                    "sla_sweep requires a \"server_counts\" integer array",
                )?
                .as_array()
                .ok_or(QueryParseError::Grammar(
                    "sla_sweep requires a \"server_counts\" integer array",
                ))?
                .iter()
                .map(|v| {
                    v.as_usize().ok_or(QueryParseError::Grammar(
                        "sla_sweep requires a \"server_counts\" integer array",
                    ))
                })
                .collect::<Result2<Vec<usize>>>()?;
                let fractions = f64_list(
                    require(value, "fractions", "sla_sweep requires \"fractions\"")?,
                    "sla_sweep requires a \"fractions\" number array",
                )?;
                Ok(Query::SlaSweep { config, server_counts: counts, fractions })
            }
            "mix_search" => {
                let arrival_rate =
                    require_f64(value, "arrival_rate", "mix_search requires \"arrival_rate\"")?;
                let holding =
                    require_f64(value, "holding_cost", "mix_search requires \"holding_cost\"")?;
                let class_values =
                    require(value, "classes", "mix_search requires a \"classes\" array")?
                        .as_array()
                        .ok_or(QueryParseError::Grammar(
                            "mix_search requires a \"classes\" array",
                        ))?;
                let mut classes = Vec::with_capacity(class_values.len());
                let mut costs = Vec::with_capacity(class_values.len());
                for class in class_values {
                    let count = class.get("count").and_then(Value::as_usize).unwrap_or(1);
                    let rate = require_f64(
                        class,
                        "service_rate",
                        "each mix class requires \"service_rate\"",
                    )?;
                    let cost = require_f64(class, "cost", "each mix class requires \"cost\"")?;
                    let lifecycle = parse_lifecycle(require(
                        class,
                        "lifecycle",
                        "each mix class requires a \"lifecycle\"",
                    )?)?;
                    classes.push(ServerClass::new(count, rate, lifecycle)?);
                    costs.push(cost);
                }
                let max_servers =
                    require_usize(value, "max_servers", "mix_search requires \"max_servers\"")?;
                let mut bounds = MixBounds::up_to(max_servers)?;
                if let Some(min) = value.get("min_servers").and_then(Value::as_usize) {
                    bounds = bounds.with_min_servers(min)?;
                }
                if let Some(budget) = value.get("budget").and_then(Value::as_f64) {
                    bounds = bounds.with_budget(budget)?;
                }
                Ok(Query::MixSearch {
                    arrival_rate,
                    classes,
                    cost: ClassCostModel::new(holding, costs)?,
                    bounds,
                })
            }
            "stats" => Ok(Query::Stats),
            _ => Err(QueryParseError::Grammar(
                "unknown query type (expected solve, cost_sweep, provisioning, percentiles, \
                 sla_sweep, mix_search or stats)",
            )),
        }
    }

    /// Serialises the query back to its protocol form ([`from_json`](Self::from_json)
    /// of the result reproduces the query exactly — JSON numbers round-trip bit for
    /// bit).
    pub fn to_json(&self) -> Value {
        match self {
            Query::Solve { config } => json::object([
                ("type", Value::String("solve".into())),
                ("config", config_to_json(config)),
            ]),
            Query::CostSweep { config, cost, min_servers, max_servers } => json::object([
                ("type", Value::String("cost_sweep".into())),
                ("config", config_to_json(config)),
                ("holding_cost", Value::Number(cost.holding_cost())),
                ("server_cost", Value::Number(cost.server_cost())),
                ("min_servers", Value::Number(*min_servers as f64)),
                ("max_servers", Value::Number(*max_servers as f64)),
            ]),
            Query::Provisioning { config, min_servers, max_servers } => json::object([
                ("type", Value::String("provisioning".into())),
                ("config", config_to_json(config)),
                ("min_servers", Value::Number(*min_servers as f64)),
                ("max_servers", Value::Number(*max_servers as f64)),
            ]),
            Query::Percentiles { config, fractions } => json::object([
                ("type", Value::String("percentiles".into())),
                ("config", config_to_json(config)),
                ("fractions", json::number_array(fractions)),
            ]),
            Query::SlaSweep { config, server_counts, fractions } => json::object([
                ("type", Value::String("sla_sweep".into())),
                ("config", config_to_json(config)),
                (
                    "server_counts",
                    Value::Array(server_counts.iter().map(|&n| Value::Number(n as f64)).collect()),
                ),
                ("fractions", json::number_array(fractions)),
            ]),
            Query::MixSearch { arrival_rate, classes, cost, bounds } => {
                let class_values: Vec<Value> = classes
                    .iter()
                    .zip(cost.server_costs())
                    .map(|(class, &price)| {
                        json::object([
                            ("count", Value::Number(class.count() as f64)),
                            ("service_rate", Value::Number(class.service_rate())),
                            ("cost", Value::Number(price)),
                            ("lifecycle", lifecycle_to_json(class.lifecycle())),
                        ])
                    })
                    .collect();
                let mut members = vec![
                    ("type", Value::String("mix_search".into())),
                    ("arrival_rate", Value::Number(*arrival_rate)),
                    ("holding_cost", Value::Number(cost.holding_cost())),
                    ("classes", Value::Array(class_values)),
                    ("min_servers", Value::Number(bounds.min_servers() as f64)),
                    ("max_servers", Value::Number(bounds.max_servers() as f64)),
                ];
                if let Some(budget) = bounds.budget() {
                    members.push(("budget", Value::Number(budget)));
                }
                Value::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            }
            Query::Stats => json::object([("type", Value::String("stats".into()))]),
        }
    }

    /// The canonical hashable identity of this query: equal keys denote the same
    /// analysis.  Stable across runs and processes (FNV-1a, no hasher seeding).
    ///
    /// # Errors
    ///
    /// Rejects queries whose configuration admits no sound cache key (non-finite
    /// parameters).
    pub fn canonical_key(&self) -> Result<QueryKey> {
        let digest = match self {
            Query::Solve { config } => {
                digest_of(&(0u8, skeleton_digest(config)?, canonical_bits(config.arrival_rate())))
            }
            Query::CostSweep { config, cost, min_servers, max_servers } => digest_of(&(
                1u8,
                skeleton_digest(config)?,
                canonical_bits(config.arrival_rate()),
                canonical_bits(cost.holding_cost()),
                canonical_bits(cost.server_cost()),
                *min_servers,
                *max_servers,
            )),
            Query::Provisioning { config, min_servers, max_servers } => digest_of(&(
                2u8,
                skeleton_digest(config)?,
                canonical_bits(config.arrival_rate()),
                *min_servers,
                *max_servers,
            )),
            Query::Percentiles { config, fractions } => digest_of(&(
                3u8,
                skeleton_digest(config)?,
                canonical_bits(config.arrival_rate()),
                fractions.iter().map(|&f| canonical_bits(f)).collect::<Vec<u64>>(),
            )),
            Query::SlaSweep { config, server_counts, fractions } => digest_of(&(
                4u8,
                skeleton_digest(config)?,
                canonical_bits(config.arrival_rate()),
                server_counts.clone(),
                fractions.iter().map(|&f| canonical_bits(f)).collect::<Vec<u64>>(),
            )),
            Query::MixSearch { arrival_rate, classes, cost, bounds } => digest_of(&(
                5u8,
                canonical_bits(*arrival_rate),
                classes_bits(classes),
                canonical_bits(cost.holding_cost()),
                cost.server_costs().iter().map(|&c| canonical_bits(c)).collect::<Vec<u64>>(),
                bounds.min_servers(),
                bounds.max_servers(),
                bounds.budget().map(canonical_bits),
            )),
            Query::Stats => digest_of(&6u8),
        };
        Ok(QueryKey(digest))
    }

    /// The skeleton-identity digest used for plan grouping: queries with equal
    /// digests share their QBD skeleton (and the cache entries hanging off it).
    /// `None` for queries with no skeleton (`stats`) or with unkeyable parameters.
    pub fn group_digest(&self) -> Option<u64> {
        match self {
            Query::Solve { config }
            | Query::CostSweep { config, .. }
            | Query::Provisioning { config, .. }
            | Query::Percentiles { config, .. }
            | Query::SlaSweep { config, .. } => skeleton_digest(config).ok(),
            Query::MixSearch { classes, .. } => Some(digest_of(&classes_bits(classes))),
            Query::Stats => None,
        }
    }
}

/// One group of a [`QueryPlan`]: queries sharing a skeleton identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanGroup {
    skeleton: Option<u64>,
    indices: Vec<usize>,
}

impl PlanGroup {
    /// The shared skeleton digest (`None` for the group of skeleton-less queries).
    pub fn skeleton_digest(&self) -> Option<u64> {
        self.skeleton
    }

    /// Indices into the planned query slice, in submission order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }
}

/// A deterministic execution plan: queries grouped by skeleton identity, groups in
/// first-appearance order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    groups: Vec<PlanGroup>,
}

impl QueryPlan {
    /// The plan's groups, in first-appearance order of their skeletons.
    pub fn groups(&self) -> &[PlanGroup] {
        &self.groups
    }
}

/// Groups `queries` by skeleton identity (see [`Query::group_digest`]).  The plan
/// depends only on the queries and their order — never on timing — so planned
/// execution is as deterministic as sequential execution.
pub fn plan(queries: &[Query]) -> QueryPlan {
    let mut groups: Vec<PlanGroup> = Vec::new();
    for (index, query) in queries.iter().enumerate() {
        let skeleton = query.group_digest();
        match groups.iter_mut().find(|g| g.skeleton == skeleton) {
            Some(group) => group.indices.push(index),
            None => groups.push(PlanGroup { skeleton, indices: vec![index] }),
        }
    }
    QueryPlan { groups }
}

/// The exact solution of one configuration, summarised for serialisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolutionSummary {
    /// Number of servers.
    pub servers: usize,
    /// Arrival rate λ.
    pub arrival_rate: f64,
    /// Utilisation ρ.
    pub utilisation: f64,
    /// Mean queue length `L`.
    pub mean_queue_length: f64,
    /// Mean response time `W = L/λ`.
    pub mean_response_time: f64,
}

/// Certified percentile report for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PercentileReport {
    /// Mean response time `W`.
    pub mean_response_time: f64,
    /// The requested fractions, echoed in order.
    pub fractions: Vec<f64>,
    /// The certified percentiles, aligned with `fractions`.
    pub percentiles: Vec<f64>,
}

/// Cache statistics as reported by a [`Query::Stats`] query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Counter snapshot of the shared cache.
    pub cache: CacheStats,
    /// Entries currently cached per level.
    pub occupancy: CacheOccupancy,
}

/// The deterministic result of a query, serialisable via [`QueryResult::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Result of [`Query::Solve`].
    Solution(SolutionSummary),
    /// Result of [`Query::CostSweep`].
    CostSweep(CostSweep),
    /// Result of [`Query::Provisioning`].
    Provisioning(ProvisioningSweep),
    /// Result of [`Query::Percentiles`].
    Percentiles(PercentileReport),
    /// Result of [`Query::SlaSweep`].
    SlaSweep(Vec<SlaPoint>),
    /// Result of [`Query::MixSearch`].
    MixSearch(MixSearchResult),
    /// Result of [`Query::Stats`].
    Stats(EngineStats),
}

fn cost_point_to_json(point: &CostPoint) -> Value {
    json::object([
        ("servers", Value::Number(point.servers as f64)),
        ("mean_queue_length", Value::Number(point.mean_queue_length)),
        ("cost", Value::Number(point.cost)),
    ])
}

fn provisioning_point_to_json(point: &ProvisioningPoint) -> Value {
    json::object([
        ("servers", Value::Number(point.servers as f64)),
        ("mean_queue_length", Value::Number(point.mean_queue_length)),
        ("mean_response_time", Value::Number(point.mean_response_time)),
    ])
}

fn sla_point_to_json(point: &SlaPoint) -> Value {
    json::object([
        ("servers", Value::Number(point.servers as f64)),
        ("mean_response_time", Value::Number(point.mean_response_time)),
        ("percentiles", json::number_array(&point.percentiles)),
    ])
}

fn mix_candidate_to_json(candidate: &MixCandidate) -> Value {
    json::object([
        (
            "counts",
            Value::Array(candidate.counts().iter().map(|&n| Value::Number(n as f64)).collect()),
        ),
        ("servers", Value::Number(candidate.servers() as f64)),
        ("mean_queue_length", Value::Number(candidate.mean_queue_length())),
        ("cost", Value::Number(candidate.cost())),
    ])
}

fn level_stats_to_json(stats: &CacheStats) -> Value {
    Value::Array(
        stats
            .levels()
            .iter()
            .map(|level| {
                json::object([
                    ("level", Value::String(level.level.into())),
                    ("hits", Value::Number(level.hits as f64)),
                    ("misses", Value::Number(level.misses as f64)),
                    ("hit_rate", Value::Number(level.hit_rate())),
                    ("evictions", Value::Number(level.evictions as f64)),
                    ("mean_eviction_age", Value::Number(level.mean_eviction_age())),
                ])
            })
            .collect(),
    )
}

impl QueryResult {
    /// Serialises the result for the JSON protocol.  Deterministic: object keys are
    /// ordered and numbers round-trip bit for bit, so equal results serialise to
    /// identical bytes.
    pub fn to_json(&self) -> Value {
        match self {
            QueryResult::Solution(s) => json::object([
                ("type", Value::String("solution".into())),
                ("servers", Value::Number(s.servers as f64)),
                ("arrival_rate", Value::Number(s.arrival_rate)),
                ("utilisation", Value::Number(s.utilisation)),
                ("mean_queue_length", Value::Number(s.mean_queue_length)),
                ("mean_response_time", Value::Number(s.mean_response_time)),
            ]),
            QueryResult::CostSweep(sweep) => json::object([
                ("type", Value::String("cost_sweep".into())),
                ("points", Value::Array(sweep.points().iter().map(cost_point_to_json).collect())),
                ("optimum", sweep.optimum().map_or(Value::Null, |p| cost_point_to_json(&p))),
            ]),
            QueryResult::Provisioning(sweep) => json::object([
                ("type", Value::String("provisioning".into())),
                (
                    "points",
                    Value::Array(sweep.points().iter().map(provisioning_point_to_json).collect()),
                ),
            ]),
            QueryResult::Percentiles(report) => json::object([
                ("type", Value::String("percentiles".into())),
                ("mean_response_time", Value::Number(report.mean_response_time)),
                ("fractions", json::number_array(&report.fractions)),
                ("percentiles", json::number_array(&report.percentiles)),
            ]),
            QueryResult::SlaSweep(points) => json::object([
                ("type", Value::String("sla_sweep".into())),
                ("points", Value::Array(points.iter().map(sla_point_to_json).collect())),
            ]),
            QueryResult::MixSearch(result) => json::object([
                ("type", Value::String("mix_search".into())),
                ("optimum", result.optimum().map_or(Value::Null, mix_candidate_to_json)),
                (
                    "ranked",
                    Value::Array(result.ranked().iter().map(mix_candidate_to_json).collect()),
                ),
                ("candidates", Value::Number(result.candidates() as f64)),
                ("screened", Value::Bool(result.was_screened())),
                ("skipped_unstable", Value::Number(result.skipped_unstable() as f64)),
                ("skipped_non_finite", Value::Number(result.skipped_non_finite() as f64)),
            ]),
            QueryResult::Stats(stats) => json::object([
                ("type", Value::String("stats".into())),
                ("levels", level_stats_to_json(&stats.cache)),
                ("total_hit_rate", Value::Number(stats.cache.total_hit_rate())),
                ("poison_recoveries", Value::Number(stats.cache.poison_recoveries as f64)),
                (
                    "occupancy",
                    json::object([
                        ("skeletons", Value::Number(stats.occupancy.skeletons as f64)),
                        ("solutions", Value::Number(stats.occupancy.solutions as f64)),
                        ("eigensystems", Value::Number(stats.occupancy.eigensystems as f64)),
                        ("transforms", Value::Number(stats.occupancy.transforms as f64)),
                    ]),
                ),
            ]),
        }
    }
}

/// The standing query engine: one shared [`SolverCache`], one [`ThreadPool`], and
/// the grid executors behind every sweep in the crate.
///
/// The engine executes queries through exactly the same `exec` functions that the
/// legacy `CostSweep::evaluate_with` / `sweeps::*_with` wrappers call, so its
/// results are bit-identical to the batch API.  It is `Sync`: the cache is sharded
/// and the pool's scoped fan-outs are index-deterministic, so concurrent callers
/// sharing one engine observe the same values a serial caller would.
#[derive(Debug)]
pub struct Engine {
    cache: Arc<SolverCache>,
    pool: ThreadPool,
    solver: SpectralExpansionSolver,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with a fresh shared cache and the default pool (`URS_THREADS` or
    /// all cores).
    pub fn new() -> Self {
        Engine::with_parts(SolverCache::shared(), ThreadPool::default())
    }

    /// An engine over an existing cache and pool — the form `urs-server` uses so the
    /// cache outlives every request.
    pub fn with_parts(cache: Arc<SolverCache>, pool: ThreadPool) -> Self {
        let solver = SpectralExpansionSolver::default().with_cache(Arc::clone(&cache));
        Engine { cache, pool, solver }
    }

    /// The shared cache (alive across every query this engine answers).
    pub fn cache(&self) -> &Arc<SolverCache> {
        &self.cache
    }

    /// The worker pool queries fan out on.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Executes one query.
    ///
    /// # Errors
    ///
    /// Propagates model/solver errors (invalid ranges, instability, spectral
    /// failures).  Errors are deterministic functions of the query and never poison
    /// the engine: subsequent queries are unaffected.
    pub fn execute(&self, query: &Query) -> Result<QueryResult> {
        match query {
            Query::Solve { config } => {
                let mut summaries =
                    exec::solve_grid(&self.solver, std::slice::from_ref(config), &self.pool)?;
                summaries.pop().map(QueryResult::Solution).ok_or(ModelError::Internal(
                    "solve_grid returned no summary for a one-point grid",
                ))
            }
            Query::CostSweep { config, cost, min_servers, max_servers } => {
                let counts = server_range(*min_servers, *max_servers)?;
                let points = exec::cost_sweep(&self.solver, config, cost, &counts, &self.pool)?;
                Ok(QueryResult::CostSweep(CostSweep::from_points(points)))
            }
            Query::Provisioning { config, min_servers, max_servers } => {
                let counts = server_range(*min_servers, *max_servers)?;
                let points = exec::provisioning_sweep(&self.solver, config, &counts, &self.pool)?;
                Ok(QueryResult::Provisioning(ProvisioningSweep::from_points(points)))
            }
            Query::Percentiles { config, fractions } => {
                let analysis =
                    ResponseAnalysis::with_cache(config, ResponseOptions::default(), &self.cache)?;
                Ok(QueryResult::Percentiles(PercentileReport {
                    mean_response_time: analysis.mean_response_time(),
                    fractions: fractions.clone(),
                    percentiles: analysis.response_time_percentiles(fractions)?,
                }))
            }
            Query::SlaSweep { config, server_counts, fractions } => {
                let points = exec::sla_sweep(
                    config,
                    server_counts,
                    fractions,
                    ResponseOptions::default(),
                    &self.cache,
                    &self.pool,
                )?;
                Ok(QueryResult::SlaSweep(points))
            }
            Query::MixSearch { arrival_rate, classes, cost, bounds } => {
                let search =
                    MixSearch::new(*arrival_rate, classes.clone(), cost.clone(), bounds.clone())?
                        .with_cache(Arc::clone(&self.cache));
                Ok(QueryResult::MixSearch(search.run_with(&self.pool)?))
            }
            Query::Stats => Ok(QueryResult::Stats(EngineStats {
                cache: self.cache.stats(),
                occupancy: self.cache.len(),
            })),
        }
    }

    /// Executes a batch: plans it with [`plan`], shares one pool fan-out across each
    /// group's plain solves, and returns per-query results in submission order.
    ///
    /// Values are bit-identical to executing every query individually — batching
    /// changes scheduling, never results — and one failing query never disturbs its
    /// batch-mates (each gets its own `Result`).
    pub fn execute_batch(&self, queries: &[Query]) -> Vec<Result<QueryResult>> {
        let plan = plan(queries);
        let mut slots: Vec<Option<Result<QueryResult>>> = queries.iter().map(|_| None).collect();
        for group in plan.groups() {
            // Batch the group's plain solves into one fan-out.
            let solve_indices: Vec<usize> = group
                .indices()
                .iter()
                .copied()
                .filter(|&i| matches!(queries.get(i), Some(Query::Solve { .. })))
                .collect();
            if solve_indices.len() > 1 {
                let configs: Vec<SystemConfig> = solve_indices
                    .iter()
                    .filter_map(|&i| match queries.get(i) {
                        Some(Query::Solve { config }) => Some(config.clone()),
                        _ => None,
                    })
                    .collect();
                match exec::solve_grid(&self.solver, &configs, &self.pool) {
                    Ok(summaries) => {
                        for (&i, summary) in solve_indices.iter().zip(summaries) {
                            if let Some(slot) = slots.get_mut(i) {
                                *slot = Some(Ok(QueryResult::Solution(summary)));
                            }
                        }
                    }
                    Err(_) => {
                        // One bad config fails a fanned-out grid as a whole; fall back
                        // to per-query execution so its batch-mates still answer.
                        for &i in &solve_indices {
                            if let (Some(query), Some(slot)) = (queries.get(i), slots.get_mut(i)) {
                                *slot = Some(self.execute(query));
                            }
                        }
                    }
                }
            }
            for &i in group.indices() {
                if let (Some(query), Some(slot @ None)) = (queries.get(i), slots.get_mut(i)) {
                    *slot = Some(self.execute(query));
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or(Err(ModelError::Internal("query missed by the plan executor")))
            })
            .collect()
    }
}

/// The inclusive server range of a sweep query as an explicit grid.
fn server_range(min_servers: usize, max_servers: usize) -> Result<Vec<usize>> {
    if min_servers > max_servers {
        return Err(ModelError::InvalidParameter {
            name: "min_servers",
            value: min_servers as f64,
            constraint: "min_servers must not exceed max_servers",
        });
    }
    Ok((min_servers..=max_servers).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_config(servers: usize, lambda: f64) -> SystemConfig {
        SystemConfig::new(servers, lambda, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap()
    }

    fn solve_line(servers: usize, lambda: f64) -> String {
        format!(
            "{{\"type\":\"solve\",\"config\":{{\"servers\":{servers},\"arrival_rate\":{lambda},\
             \"service_rate\":1.0,\"lifecycle\":\"paper\"}}}}"
        )
    }

    #[test]
    fn queries_round_trip_through_json() {
        let queries = vec![
            Query::Solve { config: paper_config(10, 8.0) },
            Query::CostSweep {
                config: paper_config(10, 8.0),
                cost: CostModel::new(4.0, 1.0).unwrap(),
                min_servers: 9,
                max_servers: 12,
            },
            Query::Provisioning { config: paper_config(10, 8.0), min_servers: 9, max_servers: 12 },
            Query::Percentiles { config: paper_config(4, 2.0), fractions: vec![0.9, 0.99] },
            Query::SlaSweep {
                config: paper_config(4, 2.0),
                server_counts: vec![4, 5],
                fractions: vec![0.95],
            },
            Query::MixSearch {
                arrival_rate: 2.0,
                classes: vec![
                    ServerClass::new(1, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap(),
                    ServerClass::new(1, 2.0, ServerLifecycle::exponential(0.1, 1.0).unwrap())
                        .unwrap(),
                ],
                cost: ClassCostModel::new(4.0, vec![1.0, 2.5]).unwrap(),
                bounds: MixBounds::up_to(4).unwrap().with_budget(10.0).unwrap(),
            },
            Query::Stats,
        ];
        for query in queries {
            let line = query.to_json().serialise();
            let reparsed = Query::parse_line(&line).unwrap();
            assert_eq!(reparsed, query, "round trip changed the query: {line}");
            assert_eq!(
                reparsed.canonical_key().unwrap(),
                query.canonical_key().unwrap(),
                "round trip changed the canonical key"
            );
        }
    }

    #[test]
    fn sugar_lifecycles_parse() {
        let exp = Query::parse_line(
            "{\"type\":\"solve\",\"config\":{\"servers\":3,\"arrival_rate\":1.0,\
             \"service_rate\":1.0,\"lifecycle\":{\"breakdown_rate\":0.1,\"repair_rate\":2.0}}}",
        )
        .unwrap();
        let Query::Solve { config } = &exp else { panic!("expected solve") };
        assert_eq!(config.lifecycle(), &ServerLifecycle::exponential(0.1, 2.0).unwrap());

        let hyper = Query::parse_line(
            "{\"type\":\"solve\",\"config\":{\"servers\":3,\"arrival_rate\":1.0,\
             \"service_rate\":1.0,\"lifecycle\":{\"operative_mean\":34.62,\
             \"operative_scv\":4.6,\"repair_rate\":0.2}}}",
        )
        .unwrap();
        let Query::Solve { config } = &hyper else { panic!("expected solve") };
        let expected = ServerLifecycle::with_exponential_repair(
            HyperExponential::with_mean_and_scv(34.62, 4.6).unwrap(),
            0.2,
        )
        .unwrap();
        assert_eq!(config.lifecycle(), &expected);
    }

    #[test]
    fn malformed_queries_error_without_panicking() {
        let lines = [
            "",
            "not json",
            "42",
            "{}",
            "{\"type\":\"teleport\"}",
            "{\"type\":\"solve\"}",
            "{\"type\":\"solve\",\"config\":{}}",
            "{\"type\":\"solve\",\"config\":{\"servers\":0,\"arrival_rate\":1.0,\
             \"service_rate\":1.0,\"lifecycle\":\"paper\"}}",
            "{\"type\":\"solve\",\"config\":{\"servers\":2,\"arrival_rate\":-1.0,\
             \"service_rate\":1.0,\"lifecycle\":\"paper\"}}",
            "{\"type\":\"percentiles\",\"config\":{\"servers\":2,\"arrival_rate\":1.0,\
             \"service_rate\":1.0,\"lifecycle\":\"paper\"},\"fractions\":[\"p99\"]}",
            "{\"type\":\"cost_sweep\",\"config\":{\"servers\":2,\"arrival_rate\":1.0,\
             \"service_rate\":1.0,\"lifecycle\":\"paper\"},\"holding_cost\":1.0}",
        ];
        for line in lines {
            assert!(Query::parse_line(line).is_err(), "accepted malformed line: {line}");
        }
    }

    #[test]
    fn equivalent_queries_share_a_canonical_key_and_distinct_ones_do_not() {
        let a = Query::parse_line(&solve_line(10, 8.0)).unwrap();
        let b = Query::parse_line(
            "{\"type\":\"solve\",\"config\":{\"servers\":10,\"service_rate\":1.0,\
             \"arrival_rate\":8.0,\"lifecycle\":\"paper\"}}",
        )
        .unwrap();
        assert_eq!(a.canonical_key().unwrap(), b.canonical_key().unwrap());
        let c = Query::parse_line(&solve_line(10, 8.5)).unwrap();
        assert_ne!(a.canonical_key().unwrap(), c.canonical_key().unwrap());
    }

    #[test]
    fn plans_group_by_skeleton_in_first_appearance_order() {
        let queries = vec![
            Query::Solve { config: paper_config(10, 8.0) },
            Query::Solve { config: paper_config(4, 2.0) },
            // Same skeleton as the first query: same classes, different λ only.
            Query::Solve { config: paper_config(10, 7.0) },
            Query::Stats,
            Query::Provisioning { config: paper_config(10, 8.0), min_servers: 9, max_servers: 11 },
        ];
        let plan = plan(&queries);
        let indices: Vec<&[usize]> = plan.groups().iter().map(PlanGroup::indices).collect();
        assert_eq!(indices, vec![&[0, 2, 4][..], &[1][..], &[3][..]]);
        assert!(plan.groups()[0].skeleton_digest().is_some());
        assert!(plan.groups()[2].skeleton_digest().is_none());
    }

    #[test]
    fn batched_execution_matches_individual_execution_bit_for_bit() {
        let engine = Engine::with_parts(SolverCache::shared(), ThreadPool::serial());
        let queries = vec![
            Query::Solve { config: paper_config(10, 8.0) },
            Query::Solve { config: paper_config(10, 7.0) },
            Query::Stats,
            Query::Solve { config: paper_config(4, 2.0) },
        ];
        let batched = engine.execute_batch(&queries);
        // A fresh engine so the cache history cannot leak between the two runs.
        let serial_engine = Engine::with_parts(SolverCache::shared(), ThreadPool::serial());
        for (query, batched) in queries.iter().zip(&batched) {
            let individual = serial_engine.execute(query).unwrap();
            let batched = batched.as_ref().unwrap();
            if matches!(query, Query::Stats) {
                continue; // counters differ by construction; excluded from the contract
            }
            assert_eq!(
                batched.to_json().serialise(),
                individual.to_json().serialise(),
                "batched result diverged for {query:?}"
            );
        }
    }

    #[test]
    fn one_failing_query_does_not_disturb_its_batch_mates() {
        let engine = Engine::with_parts(SolverCache::shared(), ThreadPool::serial());
        // λ = 12 over at most 10·(η/(ξ+η)) < 10 effective servers: unstable.
        let queries = vec![
            Query::Solve { config: paper_config(10, 8.0) },
            Query::Solve { config: paper_config(10, 12.0) },
            Query::Solve { config: paper_config(10, 7.0) },
        ];
        let results = engine.execute_batch(&queries);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn engine_results_match_the_legacy_batch_api() {
        let engine = Engine::with_parts(SolverCache::shared(), ThreadPool::serial());
        let config = paper_config(10, 8.0);
        let cost = CostModel::new(4.0, 1.0).unwrap();

        let engine_sweep = engine
            .execute(&Query::CostSweep {
                config: config.clone(),
                cost,
                min_servers: 9,
                max_servers: 12,
            })
            .unwrap();
        let legacy = CostSweep::evaluate_with(
            &SpectralExpansionSolver::default(),
            &config,
            &cost,
            9..=12,
            &ThreadPool::serial(),
        )
        .unwrap();
        let QueryResult::CostSweep(engine_sweep) = engine_sweep else {
            panic!("expected a cost sweep result")
        };
        assert_eq!(engine_sweep.points().len(), legacy.points().len());
        for (a, b) in engine_sweep.points().iter().zip(legacy.points()) {
            assert_eq!(a.servers, b.servers);
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.mean_queue_length.to_bits(), b.mean_queue_length.to_bits());
        }
    }

    #[test]
    fn stats_query_reports_the_shared_cache() {
        let engine = Engine::new();
        engine.execute(&Query::Solve { config: paper_config(4, 2.0) }).unwrap();
        let QueryResult::Stats(stats) = engine.execute(&Query::Stats).unwrap() else {
            panic!("expected stats")
        };
        assert!(stats.occupancy.total() > 0, "solve should have populated the cache");
        let rendered = QueryResult::Stats(stats).to_json().serialise();
        assert!(rendered.contains("\"total_hit_rate\""));
        assert!(rendered.contains("\"poison_recoveries\""));
    }
}
