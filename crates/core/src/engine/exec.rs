//! Grid executors: the single place every sweep's per-point work is defined.
//!
//! Each function here owns the exact closure body that used to live inline in
//! [`cost`](crate::cost), [`provisioning`](crate::provisioning) and
//! [`sweeps`](crate::sweeps); those modules' `*_with` entry points are now thin
//! wrappers over these executors, and [`Engine`](super::Engine) calls the same
//! executors when running query plans.  One implementation, two front doors — which
//! is what keeps the engine bit-identical to the legacy batch API (pinned by the
//! `parallel_equivalence` and `engine_equivalence` suites).

use std::sync::Arc;

use urs_dist::{ContinuousDistribution as _, HyperExponential};

use crate::cache::SolverCache;
use crate::config::{ServerClass, ServerLifecycle, SystemConfig};
use crate::cost::{CostModel, CostPoint};
use crate::parallel::ThreadPool;
use crate::provisioning::ProvisioningPoint;
use crate::response::{ResponseAnalysis, ResponseOptions};
use crate::solution::QueueSolver;
use crate::sweeps::{ClassMixPoint, LoadPoint, RepairTimePoint, SlaPoint, VariabilityPoint};
use crate::Result;

/// Solves one configuration per grid entry in one pool fan-out — the executor behind
/// batched `solve` queries.  Results are in input order and bit-identical for every
/// thread count (the [`ThreadPool`] contract).
pub(crate) fn solve_grid(
    solver: &dyn QueueSolver,
    configs: &[SystemConfig],
    pool: &ThreadPool,
) -> Result<Vec<super::SolutionSummary>> {
    pool.try_par_map(configs, |config| {
        let solution = solver.solve(config)?;
        Ok(super::SolutionSummary {
            servers: config.servers(),
            arrival_rate: config.arrival_rate(),
            utilisation: config.utilisation(),
            mean_queue_length: solution.mean_queue_length(),
            mean_response_time: solution.mean_response_time(),
        })
    })
}

/// Cost sweep over server counts (Figure 5); unstable counts are skipped.
pub(crate) fn cost_sweep(
    solver: &dyn QueueSolver,
    base_config: &SystemConfig,
    cost_model: &CostModel,
    counts: &[usize],
    pool: &ThreadPool,
) -> Result<Vec<CostPoint>> {
    let points = pool.try_par_map(counts, |&servers| -> Result<Option<CostPoint>> {
        let config = base_config.with_total_servers(servers)?;
        if !config.is_stable() {
            return Ok(None);
        }
        let l = solver.solve(&config)?.mean_queue_length();
        Ok(Some(CostPoint { servers, mean_queue_length: l, cost: cost_model.evaluate(l, servers) }))
    })?;
    Ok(points.into_iter().flatten().collect())
}

/// Provisioning sweep over server counts (Figure 9); unstable counts are skipped.
pub(crate) fn provisioning_sweep(
    solver: &dyn QueueSolver,
    base_config: &SystemConfig,
    counts: &[usize],
    pool: &ThreadPool,
) -> Result<Vec<ProvisioningPoint>> {
    let points = pool.try_par_map(counts, |&servers| -> Result<Option<ProvisioningPoint>> {
        let config = base_config.with_total_servers(servers)?;
        if !config.is_stable() {
            return Ok(None);
        }
        let solution = solver.solve(&config)?;
        Ok(Some(ProvisioningPoint {
            servers,
            mean_queue_length: solution.mean_queue_length(),
            mean_response_time: solution.mean_response_time(),
        }))
    })?;
    Ok(points.into_iter().flatten().collect())
}

/// Operative-period variability sweep (Figure 6).
pub(crate) fn variability_sweep(
    solver: &dyn QueueSolver,
    base_config: &SystemConfig,
    operative_mean: f64,
    scv_values: &[f64],
    pool: &ThreadPool,
) -> Result<Vec<VariabilityPoint>> {
    let inoperative = base_config.lifecycle().inoperative();
    pool.try_par_map(scv_values, |&scv| {
        let operative = HyperExponential::with_mean_and_scv(operative_mean, scv)?;
        let config =
            base_config.with_lifecycle(ServerLifecycle::new(operative, inoperative.clone()));
        let solution = solver.solve(&config)?;
        Ok(VariabilityPoint { scv, mean_queue_length: solution.mean_queue_length() })
    })
}

/// Repair-time sweep comparing exponential and hyperexponential operative periods
/// (Figure 7).
pub(crate) fn repair_time_sweep(
    solver: &dyn QueueSolver,
    base_config: &SystemConfig,
    hyperexponential_operative: &HyperExponential,
    mean_repair_times: &[f64],
    pool: &ThreadPool,
) -> Result<Vec<RepairTimePoint>> {
    let operative_mean = hyperexponential_operative.mean();
    let exponential_operative = HyperExponential::exponential(1.0 / operative_mean)?;
    pool.try_par_map(mean_repair_times, |&repair_time| {
        let repair = HyperExponential::exponential(1.0 / repair_time)?;
        let exp_config = base_config
            .with_lifecycle(ServerLifecycle::new(exponential_operative.clone(), repair.clone()));
        let hyper_config = base_config
            .with_lifecycle(ServerLifecycle::new(hyperexponential_operative.clone(), repair));
        Ok(RepairTimePoint {
            mean_repair_time: repair_time,
            exponential_operative: solver.solve(&exp_config)?.mean_queue_length(),
            hyperexponential_operative: solver.solve(&hyper_config)?.mean_queue_length(),
        })
    })
}

/// Load sweep comparing two solution methods (Figure 8).
pub(crate) fn load_sweep(
    reference: &dyn QueueSolver,
    comparison: &dyn QueueSolver,
    base_config: &SystemConfig,
    utilisations: &[f64],
    pool: &ThreadPool,
) -> Result<Vec<LoadPoint>> {
    let capacity = base_config.effective_capacity();
    pool.try_par_map(utilisations, |&rho| {
        let arrival_rate = rho * capacity;
        let config = base_config.with_arrival_rate(arrival_rate)?;
        Ok(LoadPoint {
            utilisation: rho,
            arrival_rate,
            reference: reference.solve(&config)?.mean_queue_length(),
            comparison: comparison.solve(&config)?.mean_queue_length(),
        })
    })
}

/// Two-class composition sweep at fixed fleet size; unstable mixes are skipped.
pub(crate) fn class_mix_sweep(
    solver: &dyn QueueSolver,
    arrival_rate: f64,
    primary: &ServerClass,
    secondary: &ServerClass,
    total_servers: usize,
    pool: &ThreadPool,
) -> Result<Vec<ClassMixPoint>> {
    let counts: Vec<usize> = (0..=total_servers).collect();
    let points = pool.try_par_map(&counts, |&k| -> Result<Option<ClassMixPoint>> {
        let mut classes = Vec::with_capacity(2);
        if total_servers - k > 0 {
            classes.push(primary.with_count(total_servers - k)?);
        }
        if k > 0 {
            classes.push(secondary.with_count(k)?);
        }
        let config = SystemConfig::heterogeneous(arrival_rate, classes)?;
        if !config.is_stable() {
            return Ok(None);
        }
        let solution = solver.solve(&config)?;
        Ok(Some(ClassMixPoint {
            secondary_servers: k,
            utilisation: config.utilisation(),
            mean_queue_length: solution.mean_queue_length(),
        }))
    })?;
    Ok(points.into_iter().flatten().collect())
}

/// SLA sweep: analytic response-time percentiles versus fleet size; unstable counts
/// are skipped.
pub(crate) fn sla_sweep(
    base_config: &SystemConfig,
    server_counts: &[usize],
    fractions: &[f64],
    options: ResponseOptions,
    cache: &Arc<SolverCache>,
    pool: &ThreadPool,
) -> Result<Vec<SlaPoint>> {
    let points = pool.try_par_map(server_counts, |&servers| -> Result<Option<SlaPoint>> {
        let config = base_config.with_servers(servers)?;
        if !config.is_stable() {
            return Ok(None);
        }
        let analysis = ResponseAnalysis::with_cache(&config, options, cache)?;
        Ok(Some(SlaPoint {
            servers,
            mean_response_time: analysis.mean_response_time(),
            percentiles: analysis.response_time_percentiles(fractions)?,
        }))
    })?;
    Ok(points.into_iter().flatten().collect())
}
