//! Sensitivity sweeps used by the paper's Figures 6, 7 and 8.
//!
//! These helpers hold everything fixed except one quantity — the variability of the
//! operative periods, the mean repair time, or the offered load — and report the mean
//! queue length along the sweep, optionally for several solution methods at once.
//!
//! Grid points are independent, so every sweep fans out over a
//! [`ThreadPool`]: the plain functions use the default pool
//! (all available cores, or `URS_THREADS`), and each has a `*_with` twin taking an
//! explicit pool.  Results are returned in grid order and are bit-identical for every
//! thread count — see the `parallel_equivalence` integration tests.

use std::sync::Arc;

use urs_dist::HyperExponential;

use crate::cache::SolverCache;
use crate::config::{ServerClass, SystemConfig};
use crate::parallel::ThreadPool;
use crate::response::ResponseOptions;
use crate::solution::QueueSolver;
use crate::Result;

/// One point of a variability sweep (Figure 6): the squared coefficient of variation of
/// the operative periods and the resulting mean queue length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariabilityPoint {
    /// Squared coefficient of variation `C²` of the operative periods.
    pub scv: f64,
    /// Mean queue length `L`.
    pub mean_queue_length: f64,
}

/// Sweeps the squared coefficient of variation of the operative periods while keeping
/// their mean fixed (Figure 6).  `scv = 1` is the exponential case; values above 1 use
/// the balanced-means two-phase hyperexponential.
///
/// # Errors
///
/// Propagates construction and solver errors; unstable configurations are reported as
/// [`ModelError::Unstable`](crate::ModelError::Unstable) by the solver.
pub fn queue_length_vs_operative_scv(
    solver: &dyn QueueSolver,
    base_config: &SystemConfig,
    operative_mean: f64,
    scv_values: &[f64],
) -> Result<Vec<VariabilityPoint>> {
    queue_length_vs_operative_scv_with(
        solver,
        base_config,
        operative_mean,
        scv_values,
        &ThreadPool::default(),
    )
}

/// [`queue_length_vs_operative_scv`] with an explicit worker pool.
///
/// # Errors
///
/// Propagates construction and solver errors (first failing grid point).
pub fn queue_length_vs_operative_scv_with(
    solver: &dyn QueueSolver,
    base_config: &SystemConfig,
    operative_mean: f64,
    scv_values: &[f64],
    pool: &ThreadPool,
) -> Result<Vec<VariabilityPoint>> {
    crate::engine::exec::variability_sweep(solver, base_config, operative_mean, scv_values, pool)
}

/// One point of a repair-time sweep (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairTimePoint {
    /// Mean repair (inoperative) time `1/η`.
    pub mean_repair_time: f64,
    /// Mean queue length with exponentially distributed operative periods.
    pub exponential_operative: f64,
    /// Mean queue length with hyperexponentially distributed operative periods of the
    /// same mean.
    pub hyperexponential_operative: f64,
}

/// Sweeps the mean repair time, comparing exponential and hyperexponential operative
/// periods with the same mean (Figure 7).
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn queue_length_vs_repair_time(
    solver: &dyn QueueSolver,
    base_config: &SystemConfig,
    hyperexponential_operative: &HyperExponential,
    mean_repair_times: &[f64],
) -> Result<Vec<RepairTimePoint>> {
    queue_length_vs_repair_time_with(
        solver,
        base_config,
        hyperexponential_operative,
        mean_repair_times,
        &ThreadPool::default(),
    )
}

/// [`queue_length_vs_repair_time`] with an explicit worker pool.
///
/// # Errors
///
/// Propagates construction and solver errors (first failing grid point).
pub fn queue_length_vs_repair_time_with(
    solver: &dyn QueueSolver,
    base_config: &SystemConfig,
    hyperexponential_operative: &HyperExponential,
    mean_repair_times: &[f64],
    pool: &ThreadPool,
) -> Result<Vec<RepairTimePoint>> {
    crate::engine::exec::repair_time_sweep(
        solver,
        base_config,
        hyperexponential_operative,
        mean_repair_times,
        pool,
    )
}

/// One point of a load sweep (Figure 8): the utilisation and the mean queue length for
/// each of two solution methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Utilisation `ρ = (λ/µ)/(N·η/(ξ+η))`.
    pub utilisation: f64,
    /// Arrival rate that produced this utilisation.
    pub arrival_rate: f64,
    /// Mean queue length from the first (reference) solver.
    pub reference: f64,
    /// Mean queue length from the second (comparison) solver.
    pub comparison: f64,
}

/// Sweeps the offered load by varying the arrival rate, solving each point with two
/// methods (used to compare the exact solution with the geometric approximation in
/// Figure 8).
///
/// # Errors
///
/// Propagates solver errors.
pub fn queue_length_vs_load(
    reference: &dyn QueueSolver,
    comparison: &dyn QueueSolver,
    base_config: &SystemConfig,
    utilisations: &[f64],
) -> Result<Vec<LoadPoint>> {
    queue_length_vs_load_with(
        reference,
        comparison,
        base_config,
        utilisations,
        &ThreadPool::default(),
    )
}

/// [`queue_length_vs_load`] with an explicit worker pool.
///
/// Only the arrival rate varies along this sweep, so a
/// [`SolverCache`]-backed solver builds the QBD skeleton once for
/// the whole grid.
///
/// # Errors
///
/// Propagates solver errors (first failing grid point).
pub fn queue_length_vs_load_with(
    reference: &dyn QueueSolver,
    comparison: &dyn QueueSolver,
    base_config: &SystemConfig,
    utilisations: &[f64],
    pool: &ThreadPool,
) -> Result<Vec<LoadPoint>> {
    crate::engine::exec::load_sweep(reference, comparison, base_config, utilisations, pool)
}

/// One point of a class-mix sweep: `secondary_servers` servers of the secondary class
/// replacing primary-class servers at a fixed fleet size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMixPoint {
    /// Number of servers drawn from the secondary class (`0 ..= total`).
    pub secondary_servers: usize,
    /// Utilisation `ρ = λ / (Σ_c N_c·a_c·µ_c)` of the mixed fleet.
    pub utilisation: f64,
    /// Mean queue length `L`.
    pub mean_queue_length: f64,
}

/// Sweeps the composition of a two-class fleet at fixed total size: point `k` replaces
/// `k` primary-class servers with secondary-class servers (`k = 0` and `k = total` are
/// the two homogeneous endpoints).  Mixes for which the system is unstable are
/// skipped, like the unstable counts of a [`CostSweep`](crate::CostSweep).
///
/// The `count` fields of the template classes are ignored; only their service rates
/// and lifecycles matter.
///
/// This sweep reports performance along one slice of the composition space; to
/// *optimise* the composition — over any number of classes, under per-class prices,
/// fleet-size and budget bounds — use [`mix::MixSearch`](crate::mix::MixSearch).
///
/// # Errors
///
/// Propagates construction and solver errors (first failing grid point).
pub fn queue_length_vs_class_mix(
    solver: &dyn QueueSolver,
    arrival_rate: f64,
    primary: &ServerClass,
    secondary: &ServerClass,
    total_servers: usize,
) -> Result<Vec<ClassMixPoint>> {
    queue_length_vs_class_mix_with(
        solver,
        arrival_rate,
        primary,
        secondary,
        total_servers,
        &ThreadPool::default(),
    )
}

/// [`queue_length_vs_class_mix`] with an explicit worker pool.
///
/// # Errors
///
/// Propagates construction and solver errors (first failing grid point).
pub fn queue_length_vs_class_mix_with(
    solver: &dyn QueueSolver,
    arrival_rate: f64,
    primary: &ServerClass,
    secondary: &ServerClass,
    total_servers: usize,
    pool: &ThreadPool,
) -> Result<Vec<ClassMixPoint>> {
    crate::engine::exec::class_mix_sweep(
        solver,
        arrival_rate,
        primary,
        secondary,
        total_servers,
        pool,
    )
}

/// One point of an SLA sweep: the fleet size, the mean response time and the analytic
/// response-time percentiles requested from [`percentile_vs_servers`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlaPoint {
    /// Number of servers at this point.
    pub servers: usize,
    /// Mean response time `W` (Little's law).
    pub mean_response_time: f64,
    /// Certified percentiles, aligned with the `fractions` argument of the sweep.
    pub percentiles: Vec<f64>,
}

/// Sweeps the fleet size and reports analytic response-time percentiles — the
/// SLA-vs-capacity trade-off (P99 versus `N`) that previously required simulation.
/// Server counts for which the system is unstable are skipped, like the unstable
/// counts of a [`CostSweep`](crate::CostSweep).
///
/// Every percentile is certified by the dual-method inversion check of
/// [`ResponseAnalysis`](crate::response::ResponseAnalysis); a divergence anywhere fails the whole sweep rather than
/// returning an untrustworthy number.
///
/// # Errors
///
/// Propagates construction, solver and inversion errors (first failing grid point);
/// rejects heterogeneous base configurations.
pub fn percentile_vs_servers(
    base_config: &SystemConfig,
    server_counts: &[usize],
    fractions: &[f64],
) -> Result<Vec<SlaPoint>> {
    percentile_vs_servers_with(
        base_config,
        server_counts,
        fractions,
        ResponseOptions::default(),
        &SolverCache::shared(),
        &ThreadPool::default(),
    )
}

/// [`percentile_vs_servers`] with explicit options, solver cache and worker pool.
///
/// The cache is shared across the grid points (and any later queries), so repeated
/// sweeps over overlapping fleets reuse both the stationary solutions and the
/// assembled transforms.
///
/// # Errors
///
/// As [`percentile_vs_servers`].
pub fn percentile_vs_servers_with(
    base_config: &SystemConfig,
    server_counts: &[usize],
    fractions: &[f64],
    options: ResponseOptions,
    cache: &Arc<SolverCache>,
    pool: &ThreadPool,
) -> Result<Vec<SlaPoint>> {
    crate::engine::exec::sla_sweep(base_config, server_counts, fractions, options, cache, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::GeometricApproximation;
    use crate::config::ServerLifecycle;
    use crate::solution::QueueSolution as _;
    use crate::spectral::SpectralExpansionSolver;
    use urs_dist::ContinuousDistribution;

    fn base(servers: usize, lambda: f64, repair_rate: f64) -> SystemConfig {
        let operative = HyperExponential::with_mean_and_scv(34.62, 4.6).unwrap();
        let lifecycle = ServerLifecycle::with_exponential_repair(operative, repair_rate).unwrap();
        SystemConfig::new(servers, lambda, 1.0, lifecycle).unwrap()
    }

    #[test]
    fn queue_length_grows_with_operative_variability() {
        // The qualitative message of Figure 6: L grows with C², and the effect is
        // noticeable under load.  Mirrors the paper's setting (mean repair time 5,
        // utilisation well above 0.9) scaled down to 5 servers.
        let base = base(5, 4.2, 0.2);
        let points = queue_length_vs_operative_scv(
            &SpectralExpansionSolver::default(),
            &base,
            34.62,
            &[1.0, 2.0, 4.0, 8.0],
        )
        .unwrap();
        assert_eq!(points.len(), 4);
        for pair in points.windows(2) {
            assert!(
                pair[1].mean_queue_length >= pair[0].mean_queue_length - 1e-9,
                "L should grow with C²: {pair:?}"
            );
        }
        assert!(points[3].mean_queue_length > points[0].mean_queue_length * 1.05);
    }

    #[test]
    fn exponential_assumption_underestimates_queue_length() {
        // The qualitative message of Figure 7: with the same means, the exponential
        // operative-period assumption predicts a smaller queue than the
        // hyperexponential reality, and the gap grows with the repair time.
        let operative = HyperExponential::with_mean_and_scv(34.62, 4.6).unwrap();
        let base = base(5, 3.5, 1.0);
        let points = queue_length_vs_repair_time(
            &SpectralExpansionSolver::default(),
            &base,
            &operative,
            &[0.5, 1.0, 2.0],
        )
        .unwrap();
        for p in &points {
            assert!(
                p.hyperexponential_operative > p.exponential_operative,
                "hyperexponential should give the larger queue: {p:?}"
            );
        }
        let gap_first = points[0].hyperexponential_operative - points[0].exponential_operative;
        let gap_last = points[2].hyperexponential_operative - points[2].exponential_operative;
        assert!(gap_last > gap_first);
    }

    #[test]
    fn approximation_error_shrinks_with_load() {
        let base = base(5, 3.0, 25.0);
        let points = queue_length_vs_load(
            &SpectralExpansionSolver::default(),
            &GeometricApproximation::default(),
            &base,
            &[0.85, 0.92, 0.97],
        )
        .unwrap();
        let errors: Vec<f64> =
            points.iter().map(|p| (p.comparison - p.reference).abs() / p.reference).collect();
        assert!(errors[2] <= errors[0] + 1e-9, "errors {errors:?}");
        // As in Figure 8, the approximation is within a modest relative error near
        // saturation but only becomes exact in the limit.
        assert!(errors[2] < 0.15, "errors {errors:?}");
        // The arrival rates really produce the requested utilisations.
        for p in &points {
            let expected = p.utilisation * base.effective_servers();
            assert!((p.arrival_rate - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn sla_percentiles_fall_as_the_fleet_grows() {
        let lifecycle = ServerLifecycle::paper_fitted().unwrap();
        let base = SystemConfig::new(3, 1.5, 1.0, lifecycle).unwrap();
        // N = 1 is unstable at λ = 1.5 and must be skipped, not fail the sweep.
        let points = percentile_vs_servers(&base, &[1, 2, 3, 4], &[0.9, 0.99]).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].servers, 2);
        for point in &points {
            assert!(point.percentiles[0] < point.percentiles[1], "P90 < P99: {point:?}");
            assert!(point.mean_response_time > 0.0);
        }
        for pair in points.windows(2) {
            assert!(
                pair[1].percentiles[1] < pair[0].percentiles[1],
                "P99 must fall with more servers: {pair:?}"
            );
        }
    }

    #[test]
    fn scv_one_matches_plain_exponential_lifecycle() {
        let base = base(4, 2.5, 1.0);
        let operative_mean = 34.62;
        let sweep = queue_length_vs_operative_scv(
            &SpectralExpansionSolver::default(),
            &base,
            operative_mean,
            &[1.0],
        )
        .unwrap();
        let exp_lifecycle = ServerLifecycle::with_exponential_repair(
            HyperExponential::exponential(1.0 / operative_mean).unwrap(),
            base.lifecycle().repair_rate(),
        )
        .unwrap();
        assert!((exp_lifecycle.operative().scv() - 1.0).abs() < 1e-12);
        let direct = SpectralExpansionSolver::default()
            .solve_detailed(&base.with_lifecycle(exp_lifecycle))
            .unwrap()
            .mean_queue_length();
        assert!((sweep[0].mean_queue_length - direct).abs() < 1e-8);
    }
}
