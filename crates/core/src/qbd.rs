//! Generator matrices of the Markov-modulated queue (quasi-birth-death process).
//!
//! Following Section 3.1 of the paper, the state of the system is `(i, j)` where `i` is
//! the operational mode and `j` the number of jobs present.  The transition rates are
//! collected in the matrices
//!
//! * `A`  — mode changes that leave the queue untouched (breakdowns and repairs;
//!   with heterogeneous classes, each class acts on its own phase block),
//! * `B = λI` — arrivals (the mode does not change),
//! * `C_j` — departures at queue length `j`: `diag(min(x_i, j)·µ)` for the paper's
//!   homogeneous model, and in general the greedy fastest-first allocation of `j`
//!   jobs to the operative servers (`Σ_c busy_c·µ_c`); either way `C_j` stops
//!   depending on `j` once `j ≥ N`,
//! * `Dᴬ` — the diagonal matrix of row sums of `A`.
//!
//! For `j ≥ N` the balance equations become the constant-coefficient vector difference
//! equation with characteristic matrix polynomial `Q(z) = Q0 + Q1·z + Q2·z²`,
//! `Q0 = B`, `Q1 = A − Dᴬ − B − C`, `Q2 = C` — exactly the quantities exposed here.
//!
//! Of those matrices only `B = λI` depends on the arrival rate; everything else is a
//! function of the server classes (`N`, `µ`, lifecycle per class) alone.
//! [`QbdSkeleton`] captures that λ-independent part so that parameter sweeps varying
//! only λ (the load sweep of Figure 8, for instance) can build it once — typically
//! via [`SolverCache`](crate::SolverCache) — and stamp out a [`QbdMatrices`] per grid
//! point for the price of one diagonal matrix.

use std::sync::Arc;

use urs_linalg::{banded_profitable, BandedMatrix, Matrix};

use crate::config::{ServerClass, ServerLifecycle, SystemConfig};
use crate::modes::{Mode, ModeSpace};
use crate::{ModelError, Result};

/// The λ-independent part of the QBD generator matrices: the mode space, the
/// mode-change matrix `A` with its row-sum diagonal `Dᴬ`, and the level-dependent
/// departure matrices `C_0 … C_N`.
///
/// A skeleton is immutable once built and is shared behind an [`Arc`], so one build
/// can serve every arrival rate of a sweep — and every worker thread of a
/// [`ThreadPool`](crate::ThreadPool) — simultaneously.
#[derive(Debug)]
pub struct QbdSkeleton {
    modes: ModeSpace,
    classes: Vec<ServerClass>,
    servers: usize,
    a: Matrix,
    da: Matrix,
    /// `A − Dᴬ − C`: the arrival-free part of `Q1`, precomputed once.
    q1_base: Matrix,
    /// `C_j` for `j = 0..=N`; `C_N` is the repeating-level `C`.  For the homogeneous
    /// model `C_j = diag(min(x_i, j)·µ)`; with server classes the diagonal entries are
    /// the greedy fastest-first allocation of `j` jobs to the operative servers.
    c_levels: Vec<Matrix>,
    /// Mode with the largest stationary environment probability; used by the spectral
    /// solver to pin one balance equation (λ-independent, so computed once here).
    pin_mode: usize,
    /// Union `(kl, ku)` bandwidth of the repeating-level coefficients `Q0`, `Q1`,
    /// `Q2`: `Q0`/`Q2` are diagonal and `B` only touches the diagonal of `Q1`, so
    /// this is the bandwidth of `q1_base` — λ-independent, computed once here so
    /// every solver can route to the structured kernels without rescanning.
    q1_bandwidths: (usize, usize),
    /// Number of structurally nonzero entries of `Q1` (the pattern of
    /// `A − Dᴬ − C` united with the full diagonal contributed by `−B`).
    q1_nonzeros: usize,
}

impl QbdSkeleton {
    /// Builds the λ-independent generator structure for `servers` identical servers
    /// with service rate `service_rate` and the given per-server lifecycle.
    ///
    /// # Errors
    ///
    /// Propagates errors from the mode enumeration (`servers == 0`) and class
    /// validation.
    pub fn new(servers: usize, service_rate: f64, lifecycle: &ServerLifecycle) -> Result<Self> {
        Self::for_classes(&[ServerClass::new(servers, service_rate, lifecycle.clone())?])
    }

    /// Builds the λ-independent generator structure for heterogeneous server classes.
    ///
    /// Breakdowns and repairs act within each class's own phase block of the product
    /// mode space; the departure matrices allocate jobs to operative servers *in class
    /// order*, so callers should list classes fastest-first
    /// ([`SystemConfig::heterogeneous`] canonicalises the order automatically).
    ///
    /// # Errors
    ///
    /// Propagates errors from the mode enumeration (empty class list).
    pub fn for_classes(classes: &[ServerClass]) -> Result<Self> {
        let modes = ModeSpace::for_classes(classes)?;
        let s = modes.len();
        let servers: usize = classes.iter().map(ServerClass::count).sum();

        let mut a = Matrix::zeros(s, s);
        for (i, mode) in modes.iter().enumerate() {
            for (class, spec) in classes.iter().enumerate() {
                let lifecycle = spec.lifecycle();
                let op_weights = lifecycle.operative().weights();
                let op_rates = lifecycle.operative().rates();
                let rep_weights = lifecycle.inoperative().weights();
                let rep_rates = lifecycle.inoperative().rates();
                let op_offset = modes.class_operative_range(class).start;
                let inop_offset = modes.class_inoperative_range(class).start;
                // Breakdowns: a class-c server in operative phase j fails and enters
                // inoperative phase k with probability β_k; rate x_j·ξ_j·β_k.
                for (j, &x_j) in
                    // urs-analyze: allow(slice_index, reason = "operative slice range comes from the mode-space enumerator and is in bounds by construction")
                    mode.operative()[modes.class_operative_range(class)].iter().enumerate()
                {
                    if x_j == 0 {
                        continue;
                    }
                    for (k, &beta_k) in rep_weights.iter().enumerate() {
                        let mut operative = mode.operative().to_vec();
                        let mut inoperative = mode.inoperative().to_vec();
                        operative[op_offset + j] -= 1;
                        inoperative[inop_offset + k] += 1;
                        let target = modes.index_of(&Mode::new(operative, inoperative)).ok_or(
                            ModelError::Internal(
                                "breakdown target mode missing from the enumerated space",
                            ),
                        )?;
                        a[(i, target)] += x_j as f64 * op_rates[j] * beta_k;
                    }
                }
                // Repairs: a class-c server in inoperative phase k is repaired and
                // enters operative phase j with probability α_j; rate y_k·η_k·α_j.
                for (k, &y_k) in
                    mode.inoperative()[modes.class_inoperative_range(class)].iter().enumerate()
                {
                    if y_k == 0 {
                        continue;
                    }
                    for (j, &alpha_j) in op_weights.iter().enumerate() {
                        let mut operative = mode.operative().to_vec();
                        let mut inoperative = mode.inoperative().to_vec();
                        operative[op_offset + j] += 1;
                        inoperative[inop_offset + k] -= 1;
                        let target = modes.index_of(&Mode::new(operative, inoperative)).ok_or(
                            ModelError::Internal(
                                "repair target mode missing from the enumerated space",
                            ),
                        )?;
                        a[(i, target)] += y_k as f64 * rep_rates[k] * alpha_j;
                    }
                }
            }
        }
        let da = Matrix::from_diagonal(&a.row_sums());
        let c_levels: Vec<Matrix> = (0..=servers)
            .map(|level| {
                Matrix::from_diagonal(
                    &(0..s).map(|i| departure_rate(&modes, classes, i, level)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let q1_base = &(&a - &da) - &c_levels[servers];
        let q1_bandwidths = BandedMatrix::bandwidths_of(&q1_base);
        let mut q1_nonzeros = 0;
        for i in 0..s {
            for j in 0..s {
                // urs-analyze: allow(float_cmp, reason = "structural-pattern census: exact zero means the entry is absent for every λ")
                // urs-analyze: allow(slice_index, reason = "scans the validated s x s generator block")
                if i == j || q1_base[(i, j)] != 0.0 {
                    q1_nonzeros += 1;
                }
            }
        }
        let pin_mode = modes
            .stationary_distribution_classes(classes)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        Ok(QbdSkeleton {
            modes,
            classes: classes.to_vec(),
            servers,
            a,
            da,
            q1_base,
            c_levels,
            pin_mode,
            q1_bandwidths,
            q1_nonzeros,
        })
    }

    /// The mode space underlying the matrices.
    pub fn modes(&self) -> &ModeSpace {
        &self.modes
    }

    /// The server classes the skeleton was built from (one for the paper's model).
    pub fn classes(&self) -> &[ServerClass] {
        &self.classes
    }

    /// Number of operational modes `s`.
    pub fn order(&self) -> usize {
        self.modes.len()
    }

    /// Number of servers `N`.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Service rate `µ` of one operative server of the fastest class (the only class
    /// for the homogeneous model).
    pub fn service_rate(&self) -> f64 {
        self.classes[0].service_rate()
    }

    /// Mode-change rate matrix `A` (zero diagonal).
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Diagonal matrix `Dᴬ` of row sums of `A`.
    pub fn da(&self) -> &Matrix {
        &self.da
    }

    /// Departure matrix `C` for levels `j ≥ N`.
    pub fn c(&self) -> &Matrix {
        &self.c_levels[self.servers]
    }

    /// Level-dependent departure matrix `C_j` by reference: `diag(min(x_i, j)·µ)` for
    /// a single class, the greedy fastest-first allocation rate in general.
    ///
    /// For `j ≥ N` this equals [`c`](Self::c); `C_0` is the zero matrix.
    pub fn c_at(&self, level: usize) -> &Matrix {
        &self.c_levels[level.min(self.servers)]
    }

    /// Index of the mode with the largest stationary environment probability.
    pub fn pin_mode(&self) -> usize {
        self.pin_mode
    }

    /// Union `(kl, ku)` bandwidth of the characteristic coefficients `Q0`, `Q1`,
    /// `Q2` in the skeleton's mode ordering.  `Q0 = λI` and `Q2 = C` are diagonal,
    /// so this is the bandwidth of `Q1` — in the homogeneous model a breakdown or
    /// repair moves at most one server between adjacent phase counts, giving
    /// `kl = ku = O(N)` against an order of `s = O(N²)`.
    pub fn q1_bandwidths(&self) -> (usize, usize) {
        self.q1_bandwidths
    }

    /// Fraction of structurally nonzero entries in `Q1` (pattern of `A − Dᴬ − C`
    /// united with the diagonal); a cheap sparsity report for observability and
    /// crossover decisions.
    pub fn q1_density(&self) -> f64 {
        let s = self.order();
        self.q1_nonzeros as f64 / (s * s) as f64
    }

    /// `true` when the solvers should route repeating-level factorisations through
    /// the packed banded kernels (see [`urs_linalg::banded_profitable`]): the
    /// bandwidth reported by [`q1_bandwidths`](Self::q1_bandwidths) clears the
    /// measured crossover for this order.
    pub fn banded_recommended(&self) -> bool {
        let (kl, ku) = self.q1_bandwidths;
        banded_profitable(self.order(), kl, ku)
    }
}

/// Total departure rate in `mode` with `level` jobs present: jobs are allocated to
/// operative servers greedily in class order (classes are fastest-first in canonical
/// configurations), so the rate is `Σ_c busy_c·µ_c` with `busy_c` the greedy
/// allocation.  For a single class this reduces to the paper's `min(x_i, j)·µ`.
fn departure_rate(modes: &ModeSpace, classes: &[ServerClass], mode: usize, level: usize) -> f64 {
    let mut remaining = level;
    let mut rate = 0.0;
    for (class, spec) in classes.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        let busy = modes.class_operative_count(mode, class).min(remaining);
        rate += busy as f64 * spec.service_rate();
        remaining -= busy;
    }
    rate
}

/// The generator matrices of the queue's quasi-birth-death representation: a shared
/// [`QbdSkeleton`] plus the arrival matrix `B = λI`.
///
/// # Example
///
/// ```
/// use urs_core::{QbdMatrices, ServerLifecycle, SystemConfig};
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let config = SystemConfig::new(2, 1.0, 1.0, ServerLifecycle::paper_fitted()?)?;
/// let qbd = QbdMatrices::new(&config)?;
/// assert_eq!(qbd.a().rows(), 6); // s = 6 modes for N = 2, n = 2, m = 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QbdMatrices {
    skeleton: Arc<QbdSkeleton>,
    arrival_rate: f64,
    b: Matrix,
}

impl QbdMatrices {
    /// Builds the generator matrices for a configuration.
    ///
    /// # Errors
    ///
    /// Propagates errors from the mode enumeration; the configuration itself was already
    /// validated at construction.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        let skeleton = QbdSkeleton::for_classes(config.classes())?;
        Ok(QbdMatrices::with_skeleton(Arc::new(skeleton), config.arrival_rate()))
    }

    /// Stamps out the matrices for a given arrival rate from a prebuilt skeleton.
    ///
    /// This is the cheap path used by [`SolverCache`](crate::SolverCache): only the
    /// diagonal matrix `B = λI` is allocated.
    pub fn with_skeleton(skeleton: Arc<QbdSkeleton>, arrival_rate: f64) -> Self {
        let b = Matrix::identity(skeleton.order()).scale(arrival_rate);
        QbdMatrices { skeleton, arrival_rate, b }
    }

    /// The λ-independent skeleton the matrices were stamped from.
    pub fn skeleton(&self) -> &Arc<QbdSkeleton> {
        &self.skeleton
    }

    /// The mode space underlying the matrices.
    pub fn modes(&self) -> &ModeSpace {
        self.skeleton.modes()
    }

    /// Number of operational modes `s`.
    pub fn order(&self) -> usize {
        self.skeleton.order()
    }

    /// Number of servers `N`.
    pub fn servers(&self) -> usize {
        self.skeleton.servers()
    }

    /// Arrival rate `λ`.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Mode-change rate matrix `A` (zero diagonal).
    pub fn a(&self) -> &Matrix {
        self.skeleton.a()
    }

    /// Diagonal matrix `Dᴬ` of row sums of `A`.
    pub fn da(&self) -> &Matrix {
        self.skeleton.da()
    }

    /// Arrival matrix `B = λI`.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// Departure matrix `C` for levels `j ≥ N`.
    pub fn c(&self) -> &Matrix {
        self.skeleton.c()
    }

    /// Level-dependent departure matrix `C_j`: `diag(min(x_i, j)·µ)` for a single
    /// class, the greedy fastest-first allocation rate in general.
    ///
    /// For `j ≥ N` this equals [`c`](Self::c); `C_0` is the zero matrix.  The matrices
    /// are precomputed in the skeleton; this accessor clones, use
    /// [`c_level`](Self::c_level) to borrow.
    pub fn c_at(&self, level: usize) -> Matrix {
        self.skeleton.c_at(level).clone()
    }

    /// Level-dependent departure matrix `C_j` by reference.
    pub fn c_level(&self, level: usize) -> &Matrix {
        self.skeleton.c_at(level)
    }

    /// `Q0 = B`, the coefficient of `z⁰` in the characteristic matrix polynomial.
    pub fn q0(&self) -> Matrix {
        self.b.clone()
    }

    /// `Q1 = A − Dᴬ − B − C`, the coefficient of `z¹`.
    pub fn q1(&self) -> Matrix {
        &self.skeleton.q1_base - &self.b
    }

    /// `Q2 = C`, the coefficient of `z²`.
    pub fn q2(&self) -> Matrix {
        self.skeleton.c().clone()
    }

    /// The "local" balance matrix at a given level, `Dᴬ + B + C_j − A`, which multiplies
    /// `v_j` in the level-`j` balance equation written as
    /// `v_j·(Dᴬ+B+C_j−A) = v_{j−1}·B + v_{j+1}·C_{j+1}`.
    pub fn local_matrix(&self, level: usize) -> Matrix {
        &(&(self.skeleton.da() + &self.b) + self.skeleton.c_at(level)) - self.skeleton.a()
    }

    /// Union `(kl, ku)` bandwidth of `Q0`/`Q1`/`Q2` (see
    /// [`QbdSkeleton::q1_bandwidths`]).
    pub fn q1_bandwidths(&self) -> (usize, usize) {
        self.skeleton.q1_bandwidths()
    }

    /// `true` when repeating-level factorisations should use the packed banded
    /// kernels (see [`QbdSkeleton::banded_recommended`]).
    pub fn banded_recommended(&self) -> bool {
        self.skeleton.banded_recommended()
    }

    /// The generator of the environment process alone (`A − Dᴬ`); its stationary vector
    /// is the multinomial distribution exposed by
    /// [`ModeSpace::stationary_distribution`].
    pub fn environment_generator(&self) -> Matrix {
        self.skeleton.a() - self.skeleton.da()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;
    use urs_linalg::LuDecomposition;

    fn paper_config(servers: usize, lambda: f64) -> SystemConfig {
        SystemConfig::new(servers, lambda, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap()
    }

    #[test]
    fn matrix_dimensions_and_diagonals() {
        let qbd = QbdMatrices::new(&paper_config(3, 2.0)).unwrap();
        let s = qbd.order();
        assert_eq!(s, 10);
        assert_eq!(qbd.a().shape(), (s, s));
        // A has zero diagonal.
        for i in 0..s {
            assert_eq!(qbd.a()[(i, i)], 0.0);
        }
        // B = λI.
        for i in 0..s {
            assert_eq!(qbd.b()[(i, i)], 2.0);
        }
        // DA is the diagonal of row sums.
        for (i, sum) in qbd.a().row_sums().iter().enumerate() {
            assert!((qbd.da()[(i, i)] - sum).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_example_matrix_a_structure() {
        // Paper, Section 3.1 example: N = 2, n = 2, m = 1.  With η the repair rate and
        // α the operative-phase entry probabilities, the mode with 2 inoperative servers
        // moves to (1 op in phase 1, 1 inop) at rate 2ηα₁ and to (1 op in phase 2, 1
        // inop) at rate 2ηα₂.
        let config = paper_config(2, 1.0);
        let lc = config.lifecycle().clone();
        let qbd = QbdMatrices::new(&config).unwrap();
        let modes = qbd.modes();
        let both_down = modes.index_of(&Mode::new(vec![0, 0], vec![2])).unwrap();
        let one_up_phase1 = modes.index_of(&Mode::new(vec![1, 0], vec![1])).unwrap();
        let one_up_phase2 = modes.index_of(&Mode::new(vec![0, 1], vec![1])).unwrap();
        let eta = lc.inoperative().rates()[0];
        let alpha = lc.operative().weights();
        assert!((qbd.a()[(both_down, one_up_phase1)] - 2.0 * eta * alpha[0]).abs() < 1e-12);
        assert!((qbd.a()[(both_down, one_up_phase2)] - 2.0 * eta * alpha[1]).abs() < 1e-12);
        // Breakdown from (2 op phase 1) to (1 op phase 1, 1 inop) at rate 2ξ₁.
        let two_up_phase1 = modes.index_of(&Mode::new(vec![2, 0], vec![0])).unwrap();
        let xi = lc.operative().rates();
        assert!((qbd.a()[(two_up_phase1, one_up_phase1)] - 2.0 * xi[0]).abs() < 1e-12);
        // No direct transition between (2 op phase 1) and (2 op phase 2).
        let two_up_phase2 = modes.index_of(&Mode::new(vec![0, 2], vec![0])).unwrap();
        assert_eq!(qbd.a()[(two_up_phase1, two_up_phase2)], 0.0);
    }

    #[test]
    fn departure_matrices_cap_at_level_and_at_servers() {
        let qbd = QbdMatrices::new(&paper_config(3, 2.0)).unwrap();
        let s = qbd.order();
        // C_0 = 0.
        assert!(qbd.c_at(0).max_abs() < 1e-15);
        // C_j for j >= N equals C.
        assert!(qbd.c_at(3).approx_eq(qbd.c(), 1e-15));
        assert!(qbd.c_at(7).approx_eq(qbd.c(), 1e-15));
        // C_1 is capped at one server's worth of service.
        for i in 0..s {
            let expected = qbd.modes().operative_count(i).min(1) as f64;
            assert!((qbd.c_at(1)[(i, i)] - expected).abs() < 1e-12);
        }
        // C has min(x_i, N)·µ = x_i·µ on the diagonal.
        for i in 0..s {
            assert!((qbd.c()[(i, i)] - qbd.modes().operative_count(i) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn characteristic_polynomial_coefficients_are_consistent() {
        let qbd = QbdMatrices::new(&paper_config(2, 1.5)).unwrap();
        let q1 = qbd.q1();
        let s = qbd.order();
        // Q(1)·1 = (Q0 + Q1 + Q2)·1 must be the zero vector: the generator of the
        // repeating portion is conservative.
        let sum = &(&qbd.q0() + &q1) + &qbd.q2();
        for i in 0..s {
            assert!(sum.row(i).iter().sum::<f64>().abs() < 1e-10, "row {i} not conservative");
        }
        // local_matrix(N) = DA + B + C - A = -(Q1)
        let local = qbd.local_matrix(2);
        assert!(local.approx_eq(&q1.scale(-1.0), 1e-12));
    }

    #[test]
    fn bandwidth_report_matches_actual_structure() {
        // Small paper configuration: band nearly fills the matrix, dense recommended.
        let qbd = QbdMatrices::new(&paper_config(3, 2.0)).unwrap();
        let (kl, ku) = qbd.q1_bandwidths();
        assert_eq!((kl, ku), BandedMatrix::bandwidths_of(&qbd.q1()));
        assert!(!qbd.banded_recommended());
        assert!(qbd.skeleton().q1_density() > 0.0 && qbd.skeleton().q1_density() <= 1.0);
        // Q0 and Q2 are diagonal, so the union bandwidth is Q1's own.
        assert_eq!(BandedMatrix::bandwidths_of(&qbd.q0()), (0, 0));
        assert_eq!(BandedMatrix::bandwidths_of(&qbd.q2()), (0, 0));

        // Larger order: the band is narrow relative to s and the report flips.
        let qbd = QbdMatrices::new(&paper_config(8, 2.0)).unwrap();
        let (kl, ku) = qbd.q1_bandwidths();
        assert_eq!((kl, ku), BandedMatrix::bandwidths_of(&qbd.q1()));
        let bandwidth = kl + ku + 1;
        assert!(bandwidth <= qbd.order() / 2);
        assert!(qbd.banded_recommended());
    }

    #[test]
    fn environment_generator_stationary_distribution_matches_product_form() {
        let config = paper_config(4, 1.0);
        let qbd = QbdMatrices::new(&config).unwrap();
        let s = qbd.order();
        // Solve π (A - DA) = 0 with normalisation by replacing one column.
        let gen = qbd.environment_generator();
        let mut system = Matrix::zeros(s, s);
        for i in 0..s {
            for j in 0..s {
                system[(j, i)] = gen[(i, j)]; // transpose
            }
        }
        // Replace the first equation with normalisation Σ π_i = 1.
        for j in 0..s {
            system[(0, j)] = 1.0;
        }
        let mut rhs = vec![0.0; s];
        rhs[0] = 1.0;
        let pi = LuDecomposition::new(&system).unwrap().solve(&rhs).unwrap();
        let expected = qbd.modes().stationary_distribution(config.lifecycle());
        for (p, e) in pi.iter().zip(&expected) {
            assert!((p - e).abs() < 1e-9, "stationary mismatch: {p} vs {e}");
        }
    }

    #[test]
    fn total_breakdown_rate_balances_total_repair_rate_in_equilibrium() {
        // In the stationary environment, the probability flow from operative to
        // inoperative states must balance the reverse flow.
        let config = paper_config(5, 1.0);
        let qbd = QbdMatrices::new(&config).unwrap();
        let lc = config.lifecycle();
        let pi = qbd.modes().stationary_distribution(lc);
        let mut breakdown_flow = 0.0;
        let mut repair_flow = 0.0;
        for (i, mode) in qbd.modes().iter().enumerate() {
            for (j, &x) in mode.operative().iter().enumerate() {
                breakdown_flow += pi[i] * x as f64 * lc.operative().rates()[j];
            }
            for (k, &y) in mode.inoperative().iter().enumerate() {
                repair_flow += pi[i] * y as f64 * lc.inoperative().rates()[k];
            }
        }
        assert!((breakdown_flow - repair_flow).abs() < 1e-9);
    }
}
