//! A brute-force reference solver: truncate the queue and solve the finite CTMC.
//!
//! Neither the spectral expansion nor the matrix-geometric method is needed if the
//! queue is truncated at a finite capacity `J`: the resulting continuous-time Markov
//! chain over `(mode, level)` pairs can be solved directly from its balance equations.
//! For a stable queue and a truncation level well beyond the bulk of the distribution,
//! the truncated solution converges to the exact one, which makes this solver a slow
//! but conceptually independent cross-check for the analytic methods (it is also the
//! natural way to model a finite waiting room).
//!
//! The stationary vector is computed by Gauss–Seidel sweeps over the sparse generator,
//! which keeps even systems with a few thousand states tractable without any dense
//! factorisation.

use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::parallel::ThreadPool;
use crate::qbd::QbdMatrices;
use crate::solution::{QueueSolution, QueueSolver};
use crate::Result;

/// Per-level piece of the sparse transition structure built during construction:
/// the outgoing `(target state, rate)` adjacency of every mode at that level, plus
/// each mode's total exit rate.
type LevelAdjacency = (Vec<Vec<(usize, f64)>>, Vec<f64>);

/// Options for the truncated-CTMC reference solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedOptions {
    /// Queue-length truncation level `J` (states with more than `J` jobs are dropped;
    /// arrivals that would exceed `J` are lost).
    pub max_level: usize,
    /// Convergence tolerance on the max-norm change of the probability vector per sweep.
    pub tolerance: f64,
    /// Maximum number of Gauss–Seidel sweeps.
    pub max_sweeps: usize,
}

impl Default for TruncatedOptions {
    fn default() -> Self {
        TruncatedOptions { max_level: 200, tolerance: 1e-12, max_sweeps: 50_000 }
    }
}

/// The truncated-CTMC solver.
///
/// # Example
///
/// ```
/// use urs_core::{QueueSolver, ServerLifecycle, SystemConfig, TruncatedCtmcSolver, TruncatedOptions};
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let lifecycle = ServerLifecycle::exponential(0.2, 1.0)?;
/// let config = SystemConfig::new(2, 0.8, 1.0, lifecycle)?;
/// let options = TruncatedOptions { max_level: 80, ..TruncatedOptions::default() };
/// let solution = TruncatedCtmcSolver::new(options).solve(&config)?;
/// assert!(solution.mean_queue_length() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedCtmcSolver {
    options: TruncatedOptions,
    pool: ThreadPool,
}

impl Default for TruncatedCtmcSolver {
    /// Default options and a serial pool (parallelism is strictly opt-in via
    /// [`with_pool`](Self::with_pool)).
    fn default() -> Self {
        TruncatedCtmcSolver::new(TruncatedOptions::default())
    }
}

impl TruncatedCtmcSolver {
    /// Creates a solver with explicit options.
    pub fn new(options: TruncatedOptions) -> Self {
        TruncatedCtmcSolver { options, pool: ThreadPool::serial() }
    }

    /// Builds the sparse transition structure on `pool` (one work item per queue
    /// level).  The Gauss–Seidel sweep itself stays serial — each state update reads
    /// values already updated *within the same sweep*, a sequential dependency that
    /// cannot be fanned out without changing the iterate — so the solution is
    /// bit-identical at any thread count by construction.
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// Solves the truncated chain, returning the concrete [`TruncatedSolution`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoConvergence`] if the Gauss–Seidel iteration does not meet
    /// the tolerance within the sweep budget.  Unstable configurations are *allowed*
    /// (the truncated chain is always ergodic), so this solver can also be used to study
    /// overloaded systems with a finite waiting room.
    pub fn solve_detailed(&self, config: &SystemConfig) -> Result<TruncatedSolution> {
        let qbd = QbdMatrices::new(config)?;
        let s = qbd.order();
        let levels = self.options.max_level + 1;
        let state_count = s * levels;
        let state = |mode: usize, level: usize| level * s + mode;

        // Sparse transition list: outgoing (target, rate) per state, plus total exit
        // rate.  Levels are independent of one another during construction, so they
        // fan out across the pool; concatenating the per-level pieces in level order
        // reproduces the serial layout exactly (pure construction, no floating-point
        // reduction whose order could shift).
        let a = qbd.a();
        // `A` is a band matrix in the mode ordering; the skeleton reports the exact
        // bandwidth, so each row scan below covers only the band.  Out-of-band
        // entries are structurally zero, making the restriction exact: the adjacency
        // lists come out identical to a full-row scan, just `O(s·b)` instead of
        // `O(s²)` per level.
        let (kl, ku) = qbd.q1_bandwidths();
        let lambda = config.arrival_rate();
        let level_indices: Vec<usize> = (0..levels).collect();
        let per_level: Vec<LevelAdjacency> = self.pool.par_map(&level_indices, |&level| {
            // The level-dependent departure diagonal, borrowed once per level.
            let c_level = qbd.c_level(level);
            let mut outgoing: Vec<Vec<(usize, f64)>> = vec![Vec::new(); s];
            let mut exit_rate = vec![0.0_f64; s];
            for mode in 0..s {
                // Mode changes: walk the banded part of the mode's row of `A`.
                let band_start = mode.saturating_sub(kl);
                let band_end = (mode + ku + 1).min(s);
                // urs-analyze: allow(slice_index, reason = "band window clamped to 0..s by saturating_sub/min")
                for (offset, &rate) in a.row(mode)[band_start..band_end].iter().enumerate() {
                    if rate > 0.0 {
                        outgoing[mode].push((state(band_start + offset, level), rate));
                        exit_rate[mode] += rate;
                    }
                }
                // Arrivals (lost at the truncation boundary).
                if level + 1 < levels {
                    outgoing[mode].push((state(mode, level + 1), lambda));
                    exit_rate[mode] += lambda;
                }
                // Departures: the skeleton's level-dependent C matrices already
                // encode the (class-aware, fastest-first) allocation of jobs to
                // servers.
                let rate = c_level[(mode, mode)];
                if rate > 0.0 {
                    outgoing[mode].push((state(mode, level - 1), rate));
                    exit_rate[mode] += rate;
                }
            }
            (outgoing, exit_rate)
        });
        let mut outgoing: Vec<Vec<(usize, f64)>> = Vec::with_capacity(state_count);
        let mut exit_rate: Vec<f64> = Vec::with_capacity(state_count);
        for (level_outgoing, level_exit) in per_level {
            outgoing.extend(level_outgoing);
            exit_rate.extend(level_exit);
        }
        // Incoming adjacency for Gauss–Seidel: π_i = Σ_j π_j q_{ji} / exit_i.
        let mut incoming: Vec<Vec<(usize, f64)>> = vec![Vec::new(); state_count];
        for (from, targets) in outgoing.iter().enumerate() {
            for &(to, rate) in targets {
                incoming[to].push((from, rate));
            }
        }

        // Initial guess: uniform.
        let mut pi = vec![1.0 / state_count as f64; state_count];
        let mut converged = false;
        for _ in 0..self.options.max_sweeps {
            let mut max_change = 0.0_f64;
            for i in 0..state_count {
                if exit_rate[i] <= 0.0 {
                    continue;
                }
                let inflow: f64 = incoming[i].iter().map(|&(j, rate)| pi[j] * rate).sum();
                let updated = inflow / exit_rate[i];
                max_change = max_change.max((updated - pi[i]).abs());
                pi[i] = updated;
            }
            // Renormalise each sweep to keep the iteration well scaled.
            let total: f64 = pi.iter().sum();
            for p in &mut pi {
                *p /= total;
            }
            if max_change < self.options.tolerance {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(ModelError::NoConvergence {
                algorithm: "truncated-CTMC Gauss-Seidel",
                iterations: self.options.max_sweeps,
            });
        }
        let mut levels_vec: Vec<Vec<f64>> = Vec::with_capacity(levels);
        for level in 0..levels {
            levels_vec.push((0..s).map(|mode| pi[state(mode, level)]).collect());
        }
        let mean_queue_length =
            levels_vec.iter().enumerate().map(|(j, v)| j as f64 * v.iter().sum::<f64>()).sum();
        Ok(TruncatedSolution {
            arrival_rate: lambda,
            mode_count: s,
            levels: levels_vec,
            mean_queue_length,
        })
    }
}

impl QueueSolver for TruncatedCtmcSolver {
    fn name(&self) -> &'static str {
        "truncated CTMC (Gauss-Seidel)"
    }

    fn solve(&self, config: &SystemConfig) -> Result<Box<dyn QueueSolution>> {
        Ok(Box::new(self.solve_detailed(config)?))
    }
}

/// The stationary distribution of the truncated chain.
#[derive(Debug, Clone)]
pub struct TruncatedSolution {
    arrival_rate: f64,
    mode_count: usize,
    levels: Vec<Vec<f64>>,
    mean_queue_length: f64,
}

impl TruncatedSolution {
    /// The truncation level used.
    pub fn max_level(&self) -> usize {
        self.levels.len() - 1
    }

    /// Probability mass sitting in the top 1% of levels — if this is not tiny, the
    /// truncation is too aggressive for the offered load.
    pub fn truncation_mass(&self) -> f64 {
        let start = self.levels.len().saturating_sub(self.levels.len() / 100 + 1);
        self.levels[start..].iter().map(|v| v.iter().sum::<f64>()).sum()
    }
}

impl QueueSolution for TruncatedSolution {
    fn mode_count(&self) -> usize {
        self.mode_count
    }

    fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    fn state_probability(&self, mode: usize, level: usize) -> f64 {
        if level < self.levels.len() && mode < self.mode_count {
            self.levels[level][mode]
        } else {
            0.0
        }
    }

    fn mode_marginal(&self) -> Vec<f64> {
        let mut marginal = vec![0.0; self.mode_count];
        for level in &self.levels {
            for (m, p) in marginal.iter_mut().zip(level) {
                *m += p;
            }
        }
        marginal
    }

    fn mean_queue_length(&self) -> f64 {
        self.mean_queue_length
    }

    fn tail_probability(&self, level: usize) -> f64 {
        self.levels.iter().enumerate().skip(level + 1).map(|(_, v)| v.iter().sum::<f64>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;
    use crate::solution::consistency_violations;

    #[test]
    fn mm1_with_truncation_matches_geometric_distribution() {
        let lifecycle = ServerLifecycle::exponential(1e-9, 1e3).unwrap();
        let config = SystemConfig::new(1, 0.5, 1.0, lifecycle).unwrap();
        let options = TruncatedOptions { max_level: 60, ..TruncatedOptions::default() };
        let solution = TruncatedCtmcSolver::new(options).solve_detailed(&config).unwrap();
        for j in 0..10 {
            let expected = 0.5 * 0.5_f64.powi(j as i32);
            assert!(
                (solution.level_probability(j) - expected).abs() < 1e-6,
                "level {j}: {}",
                solution.level_probability(j)
            );
        }
        assert!(solution.truncation_mass() < 1e-10);
        assert_eq!(solution.max_level(), 60);
    }

    #[test]
    fn consistency_and_mode_marginal() {
        let lifecycle = ServerLifecycle::exponential(0.3, 1.5).unwrap();
        let config = SystemConfig::new(2, 0.9, 1.0, lifecycle.clone()).unwrap();
        let options = TruncatedOptions { max_level: 120, ..TruncatedOptions::default() };
        let solution = TruncatedCtmcSolver::new(options).solve_detailed(&config).unwrap();
        assert!(consistency_violations(&solution, 50, 1e-8).is_empty());
        // Mode marginal approximates the product-form environment distribution.
        let qbd = QbdMatrices::new(&config).unwrap();
        let expected = qbd.modes().stationary_distribution(&lifecycle);
        for (got, want) in solution.mode_marginal().iter().zip(&expected) {
            assert!((got - want).abs() < 1e-6, "marginal {got} vs {want}");
        }
    }

    #[test]
    fn overloaded_system_is_still_solvable() {
        // The truncated chain is a loss system, so even λ above capacity is fine.
        let lifecycle = ServerLifecycle::exponential(0.5, 1.0).unwrap();
        let config = SystemConfig::new(1, 3.0, 1.0, lifecycle).unwrap();
        let options = TruncatedOptions { max_level: 50, ..TruncatedOptions::default() };
        let solution = TruncatedCtmcSolver::new(options).solve_detailed(&config).unwrap();
        // Mass piles up near the truncation boundary.
        assert!(solution.truncation_mass() > 0.01);
        assert!(solution.mean_queue_length() > 25.0);
    }
}
