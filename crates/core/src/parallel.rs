//! A small scoped-thread worker pool for embarrassingly parallel grid evaluations.
//!
//! Every headline artefact of the paper — the cost curves of Figure 5, the sensitivity
//! sweeps of Figures 6–8, the provisioning curves of Figure 9 — re-solves the QBD model
//! at each point of a parameter grid, and the grid points are completely independent.
//! [`ThreadPool`] fans such grids out across OS threads with two guarantees:
//!
//! 1. **Deterministic ordering** — [`par_map`](ThreadPool::par_map) returns results in
//!    the order of the input slice regardless of the number of threads or how the
//!    scheduler interleaves them, so parallel sweeps are *bit-identical* to serial
//!    ones.
//! 2. **No allocation of long-lived threads** — workers are `std::thread::scope`d to
//!    the call, so the pool is just a thread-count policy and is trivially `Send`,
//!    `Sync` and cheap to clone.  No external dependencies are needed.
//!
//! The default thread count is taken from the `URS_THREADS` environment variable when
//! set (a value of `1` forces serial execution), otherwise from
//! [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use urs_core::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.par_map(&[1, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // input order, always
//!
//! // Fallible mapping: the error of the smallest failing index is returned,
//! // matching what a serial loop over the same closure would report.
//! let r: Result<Vec<i32>, String> =
//!     ThreadPool::serial().try_par_map(&[1, 2, 3], |&x| if x == 2 { Err("two".into()) } else { Ok(x) });
//! assert_eq!(r, Err("two".to_string()));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A scoped-thread worker pool with a deterministic `par_map` API.
///
/// The pool owns no threads between calls: each [`par_map`](Self::par_map) spawns up to
/// `threads` scoped workers that pull indices from a shared atomic counter, evaluate
/// the closure, and write results back keyed by index.  With one thread (or one item)
/// the closure is run inline, so `ThreadPool::serial()` is exactly the plain serial
/// loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool using `threads` worker threads.  A value of `0` is clamped to 1.
    pub fn new(threads: usize) -> Self {
        ThreadPool { threads: threads.max(1) }
    }

    /// A single-threaded pool: `par_map` degenerates to a plain serial loop.
    pub fn serial() -> Self {
        ThreadPool::new(1)
    }

    /// Upper bound applied to `URS_THREADS`: requests beyond this are almost certainly
    /// typos, and scoped-spawning tens of thousands of OS threads per sweep would
    /// thrash rather than parallelise.
    pub const MAX_THREADS: usize = 512;

    /// A pool sized from the environment: the `URS_THREADS` variable when it parses to
    /// an integer — clamped to `1 ..= MAX_THREADS`, so `URS_THREADS=0` forces the
    /// serial path instead of being silently ignored — otherwise
    /// [`std::thread::available_parallelism`].
    pub fn auto() -> Self {
        ThreadPool { threads: threads_from_env(std::env::var("URS_THREADS").ok().as_deref()) }
    }

    /// The number of worker threads this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every element of `items`, in parallel, returning the results in
    /// input order.
    ///
    /// The closure must be freely callable from several threads at once (`Sync`); it
    /// receives each element exactly once.  Result ordering is independent of the
    /// thread count, so outputs are bit-identical to `items.iter().map(f).collect()`.
    ///
    /// # Panics
    ///
    /// Propagates the panic of any worker closure.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    lock_ignoring_poison(&collected).extend(local);
                });
            }
        });
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, r) in collected.into_inner().unwrap_or_else(|e| e.into_inner()) {
            slots[i] = Some(r);
        }
        slots.into_iter().map(|r| r.expect("every index is visited exactly once")).collect()
    }

    /// Fallible variant of [`par_map`](Self::par_map): evaluates every element and
    /// returns either all results in input order or the error of the *smallest* failing
    /// index.
    ///
    /// Because errors are reported in index order, the returned error is the same one a
    /// serial loop over `f` would have stopped at — only the amount of wasted work
    /// behind a failure differs between thread counts.
    ///
    /// # Errors
    ///
    /// Returns the first (by input position) error produced by `f`.
    pub fn try_par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        self.par_map(items, f).into_iter().collect()
    }
}

impl Default for ThreadPool {
    /// Equivalent to [`ThreadPool::auto`].
    fn default() -> Self {
        ThreadPool::auto()
    }
}

/// Hardware thread count, defaulting to 1 where it cannot be queried.
fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves the raw `URS_THREADS` value (or its absence) to a worker count: parsed
/// integers are clamped to `1 ..= MAX_THREADS`; unparsable or missing values fall
/// back to hardware parallelism.  Pure, so it is testable without mutating the
/// process environment (which is not thread-safe to write concurrently).
fn threads_from_env(raw: Option<&str>) -> usize {
    match raw {
        Some(value) => match value.trim().parse::<usize>() {
            Ok(n) => n.clamp(1, ThreadPool::MAX_THREADS),
            Err(_) => available_parallelism(),
        },
        None => available_parallelism(),
    }
}

/// Locks a mutex, recovering the guard even if another worker panicked while holding
/// it (the panic itself still propagates through the thread scope).
fn lock_ignoring_poison<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_threads_clamped_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert_eq!(ThreadPool::serial().threads(), 1);
        assert!(ThreadPool::default().threads() >= 1);
    }

    #[test]
    fn urs_threads_env_is_clamped_not_ignored() {
        // `threads_from_env` is the pure core of `auto()`, so the clamping rules are
        // testable without mutating the process environment (writes race with every
        // other test reading it through ThreadPool::default()).
        // A zero request is a floor-clamp to the serial path, not a silent fallback
        // to all cores.
        assert_eq!(threads_from_env(Some("0")), 1);
        assert_eq!(threads_from_env(Some("3")), 3);
        assert_eq!(threads_from_env(Some(" 7 ")), 7);
        // Absurd widths are capped rather than spawning thousands of threads.
        assert_eq!(threads_from_env(Some("999999999")), ThreadPool::MAX_THREADS);
        assert_eq!(threads_from_env(Some(&usize::MAX.to_string())), ThreadPool::MAX_THREADS);
        // Garbage and absence both fall back to hardware parallelism.
        assert_eq!(threads_from_env(Some("not-a-number")), available_parallelism());
        assert_eq!(threads_from_env(Some("-2")), available_parallelism());
        assert_eq!(threads_from_env(None), available_parallelism());
        assert!(ThreadPool::auto().threads() >= 1);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            // Skew the per-item cost so late items often finish before early ones.
            let out = pool.par_map(&items, |&i| {
                if i % 16 == 0 {
                    std::thread::yield_now();
                }
                i * 3 + 1
            });
            assert_eq!(out, items.iter().map(|&i| i * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_calls_each_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let out = ThreadPool::new(4).par_map(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn par_map_on_empty_and_singleton_slices() {
        let pool = ThreadPool::new(8);
        let empty: Vec<i32> = Vec::new();
        assert!(pool.par_map(&empty, |&x| x).is_empty());
        assert_eq!(pool.par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn try_par_map_returns_first_error_by_index() {
        let items: Vec<i32> = (0..64).collect();
        for threads in [1, 4] {
            let result: Result<Vec<i32>, String> =
                ThreadPool::new(threads).try_par_map(&items, |&x| {
                    if x % 10 == 3 {
                        Err(format!("bad {x}"))
                    } else {
                        Ok(x)
                    }
                });
            // 3 is the smallest failing index regardless of scheduling.
            assert_eq!(result, Err("bad 3".to_string()));
        }
    }

    #[test]
    fn try_par_map_succeeds_when_all_items_succeed() {
        let items: Vec<i32> = (1..=32).collect();
        let result: Result<Vec<i32>, String> =
            ThreadPool::new(3).try_par_map(&items, |&x| Ok(x * x));
        assert_eq!(result.unwrap(), items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_results_are_bit_identical_to_serial() {
        // Floating-point work: the exact same closure must produce the exact same bits
        // through the pool as through a serial loop.
        let grid: Vec<f64> = (1..50).map(|i| 0.3 + i as f64 * 0.017).collect();
        let work = |&x: &f64| (x.sin() * x.exp()).ln_1p() / x.sqrt();
        let serial: Vec<f64> = grid.iter().map(work).collect();
        let parallel = ThreadPool::new(5).par_map(&grid, work);
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            parallel.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
