//! Re-export of the scoped-thread worker pool, which lives in [`urs_linalg`].
//!
//! The pool started life in this crate fanning sweeps out across grid points.  Once
//! the dense kernels themselves learned to parallelise (tiled `gemm` row panels,
//! blocked-LU trailing updates, block-tridiagonal right-solves), the implementation
//! moved down into `urs_linalg::parallel` — the kernels cannot depend upward on this
//! crate — and is re-exported here so `urs_core::ThreadPool` remains the public path.
//! See [`urs_linalg::parallel`] for the determinism and panic-containment contracts.

pub use urs_linalg::parallel::{ThreadPool, WorkerPanic};
