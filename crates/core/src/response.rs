//! Analytic response-time distribution via Laplace-transform inversion.
//!
//! Section 5 of the paper stops at the *mean* response time `W = L/λ`; the
//! distribution — the quantity an SLA is actually written against (P99 of response
//! time versus fleet size) — is left open, and until this module existed the repository
//! answered it only by simulation.  The analytic path has three stages:
//!
//! 1. **Transform assembly** ([`ResponseTransform`]).  By PASTA, an arriving customer
//!    sees the stationary state `(mode m, level j)`.  Under FCFS with homogeneous
//!    servers and preempted jobs resuming in their original queue position, the tagged
//!    customer's remaining response time depends only on the jobs *ahead* of it, so the
//!    conditional Laplace–Stieltjes transform `φ_a[m] = E[e^{−sT} | a ahead, mode m]`
//!    satisfies a first-step recursion on the existing QBD blocks:
//!
//!    ```text
//!    (sI + Dᴬ + C_{a+1} − A) φ_a = C_a φ_{a−1} + diag(C_{a+1} − C_a) · 1,   a < N
//!    (sI + Dᴬ + C_N    − A) φ_a = C_N φ_{a−1},                              a ≥ N
//!    ```
//!
//!    `diag(C_a)` is the departure rate of the jobs ahead of the tagged customer and
//!    `diag(C_{a+1} − C_a)` the tagged customer's own completion rate (non-zero exactly
//!    when a server is free for it).  Each evaluation is a sequence of complex
//!    resolvent solves on the [`urs_linalg`] CMatrix/CLU kernels — routed through the
//!    packed banded complex LU whenever the resolvent bandwidth clears the measured
//!    crossover (the bases share the band pattern of `A`); the repeating levels
//!    `a ≥ N` share a **single** LU factorisation, and all scratch memory comes from a
//!    [`Workspace`] pool.  The unconditional transform is `W*(s) = Σ_{j,m} π(m,j)
//!    φ_j[m]`, truncated where the stationary tail mass drops below
//!    [`ResponseOptions::tail_epsilon`] (since `|φ| ≤ 1` for `Re s ≥ 0`, the truncation
//!    error is bounded by that mass).
//!
//! 2. **Numerical inversion** by two *independent* methods: Euler summation on the
//!    Bromwich line (Abate & Whitt, "Numerical inversion of Laplace transforms of
//!    probability distributions", ORSA J. Computing 7, 1995) and the fixed-Talbot
//!    contour (Abate & Valkó, Int. J. Numer. Meth. Eng. 60, 2004).  The two share no
//!    nodes, no weights and no failure modes, so their agreement — enforced at runtime
//!    by [`ResponseAnalysis::response_time_cdf`], violations surfacing as
//!    [`ModelError::InversionDivergence`] — certifies the result instead of trusting
//!    either method blindly.
//!
//! 3. **Percentiles** by a safeguarded Newton root-find on the inverted CDF: the
//!    density comes for free from the same transform evaluations as the CDF (the CDF
//!    inverts `W*(s)/s`, the density inverts `W*(s)` at the identical nodes), so each
//!    Newton step costs one inversion sweep, and the final answer is re-certified by
//!    the dual-method check.
//!
//! The generic inverters [`invert_lst`] / [`invert_lst_cdf`] are exposed for arbitrary
//! transforms; the property-based round-trip suite in `tests/` pins them against the
//! closed-form distributions of `urs_dist`.
//!
//! Heterogeneous fleets are rejected: with class-dependent service rates the jobs
//! *behind* the tagged customer influence which server it eventually obtains, the
//! ahead-count recursion above no longer closes, and the conditioning needs the full
//! order of the queue.  Extending the transform to that case is tracked in the
//! ROADMAP.

use std::f64::consts::PI;
use std::sync::Arc;

use urs_linalg::{
    banded_profitable, BandedMatrix, CBandedLu, CBandedMatrix, CluDecomposition, Complex, Matrix,
    Workspace,
};

use crate::cache::SolverCache;
use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::parallel::ThreadPool;
use crate::qbd::QbdSkeleton;
use crate::solution::QueueSolution;
use crate::spectral::{SpectralExpansionSolver, SpectralOptions};
use crate::Result;

/// The numerical Laplace-inversion method to apply.
///
/// Both invert the same transform; they are implemented independently so that their
/// agreement can serve as a runtime accuracy certificate (see
/// [`ResponseAnalysis::response_time_cdf`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InversionMethod {
    /// Euler-accelerated trapezoidal discretisation of the Bromwich integral
    /// (Abate–Whitt).  Nodes lie on a vertical line in the right half-plane, so the
    /// transform is only ever evaluated where the resolvent is guaranteed
    /// non-singular; this is the method of record.
    EulerSummation,
    /// The fixed-Talbot deformed contour (Abate–Valkó).  Nodes follow a cotangent
    /// contour that wraps into the left half-plane, giving steep error decay per
    /// node; used as the independent cross-check.
    FixedTalbot,
}

/// Tuning knobs of the two inversion quadratures.
///
/// The defaults reproduce the standard published parameter choices and give roughly
/// ten significant digits for the smooth, bounded transforms this crate produces;
/// they rarely need changing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InversionOptions {
    /// Bromwich-line offset `A` of the Euler method.  The discretisation error is
    /// approximately `e^{−A}`, so the default `ln(10¹⁰)` targets `1e-10`.
    pub euler_decay: f64,
    /// Terms summed verbatim before Euler acceleration starts.
    pub euler_burn_in: usize,
    /// Partial sums combined by the binomial (Euler) average.
    pub euler_average: usize,
    /// Number of Talbot contour nodes `M`; the error decays like `10^{−0.6M}` while
    /// every singularity of the transform stays inside the contour.
    pub talbot_nodes: usize,
}

impl Default for InversionOptions {
    fn default() -> Self {
        InversionOptions {
            // ln(1e10), written out so the default is a compile-time constant.
            euler_decay: 23.025_850_929_940_457,
            euler_burn_in: 21,
            euler_average: 13,
            talbot_nodes: 36,
        }
    }
}

impl InversionOptions {
    fn validate(&self) -> Result<()> {
        if !(self.euler_decay.is_finite() && self.euler_decay > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "euler_decay",
                value: self.euler_decay,
                constraint: "the Bromwich offset must be positive and finite",
            });
        }
        if self.euler_average == 0 {
            return Err(ModelError::InvalidParameter {
                name: "euler_average",
                value: 0.0,
                constraint: "at least one partial sum must enter the Euler average",
            });
        }
        if self.talbot_nodes < 2 {
            return Err(ModelError::InvalidParameter {
                name: "talbot_nodes",
                value: self.talbot_nodes as f64,
                constraint: "the Talbot contour needs at least 2 nodes",
            });
        }
        Ok(())
    }

    /// The quadrature rule of `method` at time `t`: pairs `(sₖ, wₖ)` such that
    /// `f(t) ≈ Σₖ Re(wₖ · F(sₖ))`.
    fn quadrature(&self, method: InversionMethod, t: f64) -> Vec<(Complex, Complex)> {
        match method {
            InversionMethod::EulerSummation => self.euler_quadrature(t),
            InversionMethod::FixedTalbot => self.talbot_quadrature(t),
        }
    }

    fn euler_quadrature(&self, t: f64) -> Vec<(Complex, Complex)> {
        let a = self.euler_decay;
        let n = self.euler_burn_in;
        let m = self.euler_average;
        // Binomial weights C(m, j)/2^m of the Euler average of S_n..S_{n+m}.
        let mut binom = vec![0.0; m + 1];
        // urs-analyze: allow(slice_index, reason = "binom has m + 1 entries; j ranges over 0..=m")
        binom[0] = 0.5f64.powi(m as i32);
        for j in 1..=m {
            // urs-analyze: allow(slice_index, reason = "binom has m + 1 entries; j ranges over 0..=m")
            binom[j] = binom[j - 1] * (m - j + 1) as f64 / j as f64;
        }
        // Collapsing the averaged partial sums into one weighted sum over terms:
        // term k carries full weight while every averaged sum includes it, then the
        // binomial tail mass Σ_{j ≥ k−n} C(m,j)/2^m.
        let prefactor = (a / 2.0).exp() / t;
        let mut nodes = Vec::with_capacity(n + m + 1);
        let mut tail = 1.0;
        for k in 0..=(n + m) {
            let coefficient = if k <= n {
                1.0
            } else {
                tail -= binom.get(k - n - 1).copied().unwrap_or(0.0);
                tail
            };
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            let half = if k == 0 { 0.5 } else { 1.0 };
            let node = Complex::new(a / (2.0 * t), k as f64 * PI / t);
            nodes.push((node, Complex::from_real(prefactor * sign * half * coefficient)));
        }
        nodes
    }

    fn talbot_quadrature(&self, t: f64) -> Vec<(Complex, Complex)> {
        let m = self.talbot_nodes;
        let r = 2.0 * m as f64 / (5.0 * t);
        let mut nodes = Vec::with_capacity(m);
        // θ = 0: the contour crosses the real axis at s = r with half weight.
        nodes.push((
            Complex::from_real(r),
            Complex::from_real(0.5 * (r / m as f64) * (r * t).exp()),
        ));
        for k in 1..m {
            let theta = k as f64 * PI / m as f64;
            let cot = theta.cos() / theta.sin();
            let s = Complex::new(r * theta * cot, r * theta);
            let sigma = theta + (theta * cot - 1.0) * cot;
            let weight = (s * t).exp() * Complex::new(1.0, sigma) * (r / m as f64);
            nodes.push((s, weight));
        }
        nodes
    }
}

fn validate_time(t: f64) -> Result<()> {
    if !(t.is_finite() && t > 0.0) {
        return Err(ModelError::InvalidParameter {
            name: "t",
            value: t,
            constraint: "transform inversion requires a finite time t > 0",
        });
    }
    Ok(())
}

/// Inverts a Laplace transform `F(s) = ∫ e^{−st} f(t) dt` at `t > 0` with the chosen
/// method, evaluating the transform through the supplied closure.
///
/// The closure may fail (a resolvent solve hitting a singular matrix, say); the error
/// is propagated unchanged.
///
/// # Errors
///
/// Rejects non-positive or non-finite `t` and invalid options, and propagates
/// evaluation failures.
pub fn invert_lst<F>(
    mut transform: F,
    t: f64,
    method: InversionMethod,
    options: &InversionOptions,
) -> Result<f64>
where
    F: FnMut(Complex) -> Result<Complex>,
{
    validate_time(t)?;
    options.validate()?;
    let mut value = 0.0;
    for (s, w) in options.quadrature(method, t) {
        value += (w * transform(s)?).re;
    }
    Ok(value)
}

/// Inverts the Laplace–*Stieltjes* transform `E[e^{−sX}]` of a non-negative random
/// variable into its CDF at `t`, i.e. inverts `F(s)/s`.
///
/// Values are clamped to `[0, 1]`: the quadrature error can push an exact 0 or 1
/// slightly outside the unit interval.  `t ≤ 0` returns 0 without evaluating the
/// transform.
///
/// # Errors
///
/// Rejects non-finite `t` and invalid options, and propagates evaluation failures.
pub fn invert_lst_cdf<F>(
    mut transform: F,
    t: f64,
    method: InversionMethod,
    options: &InversionOptions,
) -> Result<f64>
where
    F: FnMut(Complex) -> Result<Complex>,
{
    if t <= 0.0 {
        if t.is_nan() {
            return Err(ModelError::InvalidParameter {
                name: "t",
                value: t,
                constraint: "the CDF argument must not be NaN",
            });
        }
        return Ok(0.0);
    }
    let raw = invert_lst(|s| Ok(transform(s)? * s.recip()), t, method, options)?;
    Ok(raw.clamp(0.0, 1.0))
}

/// Options of the response-time analysis: the inversion quadratures, the runtime
/// certification tolerances, the stationary-tail truncation and the spectral-solver
/// options used to obtain the arrival-state distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseOptions {
    /// Quadrature parameters of both inversion methods.
    pub inversion: InversionOptions,
    /// Maximum tolerated disagreement between the Euler and Talbot CDF values before
    /// [`ModelError::InversionDivergence`] is raised.  The default `1e-7` sits three
    /// orders of magnitude above the methods' own accuracy, so a triggered check
    /// signals a genuine breakdown rather than roundoff.
    pub agreement_tolerance: f64,
    /// Relative width at which the percentile bracket is considered converged.
    pub percentile_tolerance: f64,
    /// Stationary tail mass at which the arrival-state distribution is truncated;
    /// also the bound on the resulting transform error (|φ| ≤ 1 on `Re s ≥ 0`).
    pub tail_epsilon: f64,
    /// Options of the spectral solve producing the stationary distribution.
    pub spectral: SpectralOptions,
}

impl Default for ResponseOptions {
    fn default() -> Self {
        ResponseOptions {
            inversion: InversionOptions::default(),
            agreement_tolerance: 1e-7,
            percentile_tolerance: 1e-10,
            tail_epsilon: 1e-12,
            spectral: SpectralOptions::default(),
        }
    }
}

impl ResponseOptions {
    fn validate(&self) -> Result<()> {
        self.inversion.validate()?;
        if !(self.agreement_tolerance.is_finite() && self.agreement_tolerance > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "agreement_tolerance",
                value: self.agreement_tolerance,
                constraint: "the certification tolerance must be positive and finite",
            });
        }
        if !(self.percentile_tolerance.is_finite() && self.percentile_tolerance > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "percentile_tolerance",
                value: self.percentile_tolerance,
                constraint: "the percentile tolerance must be positive and finite",
            });
        }
        if !(self.tail_epsilon > 0.0 && self.tail_epsilon < 1.0) {
            return Err(ModelError::InvalidParameter {
                name: "tail_epsilon",
                value: self.tail_epsilon,
                constraint: "the tail truncation mass must lie strictly between 0 and 1",
            });
        }
        Ok(())
    }
}

/// The assembled per-configuration transform skeleton: the real parts of the resolvent
/// bases, the diagonal coupling rates and the truncated arrival-state distribution.
///
/// Everything here is λ-and-lifecycle-specific but *inversion-independent*, which is
/// why [`SolverCache`] memoises values of this type: every CDF or percentile query
/// against the same configuration reuses one assembly.
#[derive(Debug)]
pub struct ResponseTransform {
    order: usize,
    servers: usize,
    mean_response_time: f64,
    /// `Dᴬ + C_{a+1} − A` for `a = 0..N−1`: the boundary resolvent bases.
    boundary_bases: Vec<Matrix>,
    /// `Dᴬ + C_N − A`: the base shared by every repeating level `a ≥ N`.
    repeat_base: Matrix,
    /// `diag(C_a)` for `a = 0..=N`: departure rates of the jobs ahead.
    ahead_rates: Vec<Vec<f64>>,
    /// `diag(C_{a+1} − C_a)` for `a = 0..N−1`: the tagged job's completion rates.
    completions: Vec<Vec<f64>>,
    /// Truncated stationary distribution `π[level][mode]` seen at arrival (PASTA).
    arrival_levels: Vec<Vec<f64>>,
    residual_mass: f64,
    /// Union `(kl, ku)` bandwidth of every resolvent base (the pattern of `A` plus
    /// the diagonal); when it clears the crossover, each resolvent factorisation
    /// runs on the packed banded complex LU instead of the dense one.
    bandwidths: (usize, usize),
}

impl ResponseTransform {
    /// Assembles the transform from a QBD skeleton and any stationary solution of the
    /// same model (spectral or matrix-geometric).
    pub(crate) fn assemble(
        skeleton: &QbdSkeleton,
        solution: &dyn QueueSolution,
        tail_epsilon: f64,
    ) -> Result<Self> {
        let order = skeleton.order();
        if solution.mode_count() != order {
            return Err(ModelError::InvalidParameter {
                name: "mode_count",
                value: solution.mode_count() as f64,
                constraint: "the solution must describe the same mode space as the skeleton",
            });
        }
        let servers = skeleton.servers();
        let diagonal =
            |m: &Matrix| -> Vec<f64> { (0..order).map(|i| m.get(i, i).unwrap_or(0.0)).collect() };
        let mut boundary_bases = Vec::with_capacity(servers);
        for a in 0..servers {
            let shifted = skeleton.da() + skeleton.c_at(a + 1);
            boundary_bases.push(&shifted - skeleton.a());
        }
        let repeat_sum = skeleton.da() + skeleton.c();
        let repeat_base = &repeat_sum - skeleton.a();
        let ahead_rates: Vec<Vec<f64>> =
            (0..=servers).map(|a| diagonal(skeleton.c_at(a))).collect();
        let completions: Vec<Vec<f64>> = ahead_rates
            .windows(2)
            .map(|pair| match pair {
                [current, next] => next.iter().zip(current).map(|(n, c)| n - c).collect(),
                _ => Vec::new(),
            })
            .collect();
        // Always keep at least one repeating level so the shared-LU path is exercised
        // even when the boundary already holds nearly all the mass.
        let (arrival_levels, residual_mass) =
            solution.arrival_state_distribution(tail_epsilon, servers + 1)?;
        let mut bandwidths = BandedMatrix::bandwidths_of(&repeat_base);
        for base in &boundary_bases {
            let (l, u) = BandedMatrix::bandwidths_of(base);
            bandwidths = (bandwidths.0.max(l), bandwidths.1.max(u));
        }
        Ok(ResponseTransform {
            order,
            servers,
            mean_response_time: solution.mean_response_time(),
            boundary_bases,
            repeat_base,
            ahead_rates,
            completions,
            arrival_levels,
            residual_mass,
            bandwidths,
        })
    }

    /// Number of operational modes of the underlying model.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of stationary levels retained by the tail truncation.
    pub fn truncation_levels(&self) -> usize {
        self.arrival_levels.len()
    }

    /// Stationary mass beyond the truncation — the bound on the transform error.
    pub fn residual_mass(&self) -> f64 {
        self.residual_mass
    }

    /// Mean response time of the underlying solution (Little's law), used to seed
    /// the percentile bracket.
    pub fn mean_response_time(&self) -> f64 {
        self.mean_response_time
    }

    /// Evaluates the unconditional response-time LST `W*(s) = E[e^{−sT}]` with
    /// scratch storage drawn from `workspace`.
    ///
    /// One complex LU factorisation per boundary level plus a *single* factorisation
    /// shared by all repeating levels; every matrix and vector is recycled through the
    /// workspace pool, so repeated evaluations (one per quadrature node) allocate
    /// nothing after the first.
    ///
    /// # Errors
    ///
    /// [`ModelError::Linalg`] when `s` hits a singularity of a resolvent (only
    /// possible in the left half-plane, where the Talbot contour roams).
    pub fn lst_with(&self, s: Complex, workspace: &mut Workspace) -> Result<Complex> {
        self.lst_with_pool(s, workspace, &ThreadPool::serial())
    }

    /// [`lst_with`](Self::lst_with) with the per-level resolvent factorisations
    /// running on `pool`.
    ///
    /// The level recurrence itself is sequential (`φ_a` feeds `φ_{a+1}`), so the
    /// parallelism lives inside each complex LU factorisation; its banded trailing
    /// updates preserve the serial accumulation order, making the transform value
    /// bit-identical at any thread count.  When the resolvent bandwidth clears the
    /// crossover ([`urs_linalg::banded_profitable`]), each factorisation runs on
    /// the packed [`CBandedLu`] instead — always serial, so equally thread-count
    /// independent, and bit-identical to the dense factorisation on the same
    /// nonzero pattern.
    ///
    /// # Errors
    ///
    /// Same as [`lst_with`](Self::lst_with), plus
    /// [`LinalgError::WorkerPanic`](urs_linalg::LinalgError::WorkerPanic) if a worker
    /// panicked.
    pub fn lst_with_pool(
        &self,
        s: Complex,
        workspace: &mut Workspace,
        pool: &ThreadPool,
    ) -> Result<Complex> {
        let order = self.order;
        let (kl, ku) = self.bandwidths;
        let use_banded = banded_profitable(order, kl, ku);
        let mut phi_prev = workspace.complex_buffer(order);
        let mut phi = workspace.complex_buffer(order);
        let mut rhs = workspace.complex_buffer(order);
        let mut total = Complex::ZERO;
        for (a, base) in self.boundary_bases.iter().enumerate() {
            let ahead: &[f64] = self.ahead_rates.get(a).map(Vec::as_slice).unwrap_or_default();
            let completions: &[f64] =
                self.completions.get(a).map(Vec::as_slice).unwrap_or_default();
            for (((slot, prev), rate), completion) in
                rhs.iter_mut().zip(&phi_prev).zip(ahead).zip(completions)
            {
                *slot = *prev * *rate + Complex::from_real(*completion);
            }
            if use_banded {
                let resolvent = shifted_banded(base, s, kl, ku);
                let lu = CBandedLu::new_allow_singular_pooled(&resolvent, workspace)?;
                let solved = lu.solve_into(&rhs, &mut phi);
                lu.recycle(workspace);
                solved?;
            } else {
                let mut shifted = workspace.complex_matrix(order, order);
                shifted.copy_from_real(base)?;
                shifted.shift_diagonal(s)?;
                let lu = CluDecomposition::from_matrix_with(shifted, pool)?;
                lu.solve_into(&rhs, &mut phi)?;
                workspace.release_complex_matrix(lu.into_matrix());
            }
            if let Some(level) = self.arrival_levels.get(a) {
                for (p, value) in level.iter().zip(&phi) {
                    total += *value * *p;
                }
            }
            std::mem::swap(&mut phi_prev, &mut phi);
        }
        if self.arrival_levels.len() > self.servers {
            let service = self
                .ahead_rates
                .get(self.servers)
                .ok_or(ModelError::Internal("transform is missing the repeating-level rates"))?;
            if use_banded {
                let resolvent = shifted_banded(&self.repeat_base, s, kl, ku);
                let lu = CBandedLu::new_allow_singular_pooled(&resolvent, workspace)?;
                let mut solved = Ok(());
                for level in self.servers..self.arrival_levels.len() {
                    for i in 0..order {
                        // urs-analyze: allow(slice_index, reason = "bounded by the phase order and level count fixed at construction")
                        rhs[i] = phi_prev[i] * service[i];
                    }
                    solved = lu.solve_into(&rhs, &mut phi);
                    if solved.is_err() {
                        break;
                    }
                    // urs-analyze: allow(slice_index, reason = "bounded by the phase order and level count fixed at construction")
                    for (p, value) in self.arrival_levels[level].iter().zip(&phi) {
                        total += *value * *p;
                    }
                    std::mem::swap(&mut phi_prev, &mut phi);
                }
                lu.recycle(workspace);
                solved?;
            } else {
                let mut shifted = workspace.complex_matrix(order, order);
                shifted.copy_from_real(&self.repeat_base)?;
                shifted.shift_diagonal(s)?;
                let lu = CluDecomposition::from_matrix_with(shifted, pool)?;
                for level in self.servers..self.arrival_levels.len() {
                    for i in 0..order {
                        // urs-analyze: allow(slice_index, reason = "bounded by the phase order and level count fixed at construction")
                        rhs[i] = phi_prev[i] * service[i];
                    }
                    lu.solve_into(&rhs, &mut phi)?;
                    // urs-analyze: allow(slice_index, reason = "bounded by the phase order and level count fixed at construction")
                    for (p, value) in self.arrival_levels[level].iter().zip(&phi) {
                        total += *value * *p;
                    }
                    std::mem::swap(&mut phi_prev, &mut phi);
                }
                workspace.release_complex_matrix(lu.into_matrix());
            }
        }
        workspace.release_complex_buffer(phi_prev);
        workspace.release_complex_buffer(phi);
        workspace.release_complex_buffer(rhs);
        Ok(total)
    }

    /// The raw (unclamped) CDF and density at `t`, sharing one transform evaluation
    /// per node: the CDF inverts `W*(s)/s` and the density `W*(s)` at identical
    /// nodes, so the Newton percentile iteration pays nothing extra for derivatives.
    fn cdf_density_at(
        &self,
        t: f64,
        method: InversionMethod,
        options: &InversionOptions,
        workspace: &mut Workspace,
        pool: &ThreadPool,
    ) -> Result<(f64, f64)> {
        validate_time(t)?;
        let mut cdf = 0.0;
        let mut density = 0.0;
        for (s, w) in options.quadrature(method, t) {
            let value = self.lst_with_pool(s, workspace, pool)?;
            let weighted = w * value;
            cdf += (weighted * s.recip()).re;
            density += weighted.re;
        }
        Ok((cdf, density))
    }
}

/// Evaluates `s·I + base` straight into packed banded storage, element-for-element
/// identical to the dense `copy_from_real` + `shift_diagonal` route.
fn shifted_banded(base: &Matrix, s: Complex, kl: usize, ku: usize) -> CBandedMatrix {
    CBandedMatrix::from_fn(base.rows(), kl, ku, |i, j| {
        // urs-analyze: allow(slice_index, reason = "bounded by the phase order and level count fixed at construction")
        let v = Complex::from_real(base[(i, j)]);
        if i == j {
            v + s
        } else {
            v
        }
    })
}

/// The analytic response-time distribution of one system configuration.
///
/// Construction solves the stationary model once and assembles the
/// [`ResponseTransform`]; afterwards every query — [`response_time_cdf`], a
/// [`response_time_percentile`], the raw [`lst`] — is pure numerics with no further
/// stationary solves.  Use [`with_cache`] to share both the stationary solution and
/// the assembled transform across repeated queries and across threads.
///
/// [`response_time_cdf`]: Self::response_time_cdf
/// [`response_time_percentile`]: Self::response_time_percentile
/// [`lst`]: Self::lst
/// [`with_cache`]: Self::with_cache
#[derive(Debug, Clone)]
pub struct ResponseAnalysis {
    transform: Arc<ResponseTransform>,
    options: ResponseOptions,
    pool: ThreadPool,
}

impl ResponseAnalysis {
    /// Analyses `config` with default options, solving it spectrally.
    ///
    /// # Errors
    ///
    /// Rejects unstable and heterogeneous configurations (the conditional transform
    /// requires identical servers; see the module docs) and propagates solver
    /// failures.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        Self::with_options(config, ResponseOptions::default())
    }

    /// Analyses `config` with explicit options.
    ///
    /// # Errors
    ///
    /// As [`ResponseAnalysis::new`], plus invalid options.
    pub fn with_options(config: &SystemConfig, options: ResponseOptions) -> Result<Self> {
        Self::build(config, options, None)
    }

    /// Analyses `config`, publishing (and reusing) the stationary solution *and* the
    /// assembled transform through `cache`.
    ///
    /// # Errors
    ///
    /// As [`ResponseAnalysis::with_options`].
    pub fn with_cache(
        config: &SystemConfig,
        options: ResponseOptions,
        cache: &Arc<SolverCache>,
    ) -> Result<Self> {
        Self::build(config, options, Some(cache))
    }

    /// Builds the analysis from an externally computed stationary solution — any
    /// [`QueueSolution`] of the same model, e.g. from the matrix-geometric solver —
    /// instead of solving spectrally.
    ///
    /// # Errors
    ///
    /// As [`ResponseAnalysis::with_options`], plus a mode-count mismatch between
    /// `config` and `solution`.
    pub fn from_solution(
        config: &SystemConfig,
        solution: &dyn QueueSolution,
        options: ResponseOptions,
    ) -> Result<Self> {
        Self::validate_config(config)?;
        options.validate()?;
        let skeleton = QbdSkeleton::for_classes(config.classes())?;
        let transform =
            Arc::new(ResponseTransform::assemble(&skeleton, solution, options.tail_epsilon)?);
        Ok(ResponseAnalysis { transform, options, pool: ThreadPool::serial() })
    }

    /// Runs every subsequent transform evaluation — the per-level resolvent
    /// factorisations behind each CDF, density, and percentile query — on `pool`.
    /// Values are bit-identical to the serial analysis at any thread count; see
    /// [`ResponseTransform::lst_with_pool`].
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    fn validate_config(config: &SystemConfig) -> Result<()> {
        if !config.is_homogeneous() {
            return Err(ModelError::InvalidParameter {
                name: "classes",
                value: config.classes().len() as f64,
                constraint: "the response-time transform requires homogeneous servers \
                             (heterogeneous conditioning is a tracked follow-up)",
            });
        }
        config.ensure_stable()
    }

    fn build(
        config: &SystemConfig,
        options: ResponseOptions,
        cache: Option<&Arc<SolverCache>>,
    ) -> Result<Self> {
        Self::validate_config(config)?;
        options.validate()?;
        let transform = match cache {
            Some(cache) => {
                if let Some(hit) =
                    cache.lookup_transform(config, &options.spectral, options.tail_epsilon)?
                {
                    hit
                } else {
                    let solver = SpectralExpansionSolver::new(options.spectral)
                        .with_cache(Arc::clone(cache));
                    let solution = solver.solve_detailed(config)?;
                    let skeleton = cache.skeleton(config)?;
                    let transform = Arc::new(ResponseTransform::assemble(
                        &skeleton,
                        &solution,
                        options.tail_epsilon,
                    )?);
                    cache.store_transform(
                        config,
                        &options.spectral,
                        options.tail_epsilon,
                        Arc::clone(&transform),
                    )?;
                    transform
                }
            }
            None => {
                let solver = SpectralExpansionSolver::new(options.spectral);
                let solution = solver.solve_detailed(config)?;
                let skeleton = QbdSkeleton::for_classes(config.classes())?;
                Arc::new(ResponseTransform::assemble(&skeleton, &solution, options.tail_epsilon)?)
            }
        };
        Ok(ResponseAnalysis { transform, options, pool: ThreadPool::serial() })
    }

    /// The assembled transform skeleton (levels kept, residual mass, …).
    pub fn transform(&self) -> &ResponseTransform {
        &self.transform
    }

    /// The options this analysis was built with.
    pub fn options(&self) -> &ResponseOptions {
        &self.options
    }

    /// Mean response time of the underlying stationary solution (Little's law).
    pub fn mean_response_time(&self) -> f64 {
        self.transform.mean_response_time()
    }

    /// Evaluates the response-time LST `W*(s) = E[e^{−sT}]` directly.
    ///
    /// # Errors
    ///
    /// Propagates resolvent failures; `s` in the right half-plane always succeeds.
    pub fn lst(&self, s: Complex) -> Result<Complex> {
        let mut workspace = Workspace::new();
        self.transform.lst_with(s, &mut workspace)
    }

    /// The CDF `P(T ≤ t)` of response time, **certified**: both inversion methods are
    /// evaluated and must agree within
    /// [`agreement_tolerance`](ResponseOptions::agreement_tolerance).
    ///
    /// # Errors
    ///
    /// [`ModelError::InversionDivergence`] when the methods disagree — the value
    /// cannot be trusted and no number is returned.  `t ≤ 0` yields 0.
    pub fn response_time_cdf(&self, t: f64) -> Result<f64> {
        if t <= 0.0 {
            return if t.is_nan() {
                Err(ModelError::InvalidParameter {
                    name: "t",
                    value: t,
                    constraint: "the CDF argument must not be NaN",
                })
            } else {
                Ok(0.0)
            };
        }
        let mut workspace = Workspace::new();
        self.certified_cdf(t, &mut workspace)
    }

    fn certified_cdf(&self, t: f64, workspace: &mut Workspace) -> Result<f64> {
        let (euler, _) = self.transform.cdf_density_at(
            t,
            InversionMethod::EulerSummation,
            &self.options.inversion,
            workspace,
            &self.pool,
        )?;
        self.certify(t, euler, workspace)
    }

    /// Cross-checks an already-computed Euler CDF value against a fresh Talbot
    /// evaluation and returns the certified (clamped) value.
    fn certify(&self, t: f64, euler: f64, workspace: &mut Workspace) -> Result<f64> {
        let (talbot, _) = self.transform.cdf_density_at(
            t,
            InversionMethod::FixedTalbot,
            &self.options.inversion,
            workspace,
            &self.pool,
        )?;
        if (euler - talbot).abs() > self.options.agreement_tolerance {
            return Err(ModelError::InversionDivergence {
                time: t,
                euler,
                talbot,
                tolerance: self.options.agreement_tolerance,
            });
        }
        Ok(euler.clamp(0.0, 1.0))
    }

    /// The CDF by one specific method, uncertified (clamped to `[0, 1]`).  Exposed so
    /// validation suites can compare the methods individually.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures; `t ≤ 0` yields 0.
    pub fn cdf_with_method(&self, t: f64, method: InversionMethod) -> Result<f64> {
        if t <= 0.0 {
            return Ok(0.0);
        }
        let mut workspace = Workspace::new();
        let (value, _) = self.transform.cdf_density_at(
            t,
            method,
            &self.options.inversion,
            &mut workspace,
            &self.pool,
        )?;
        Ok(value.clamp(0.0, 1.0))
    }

    /// The `fraction`-percentile of response time (`fraction = 0.99` for P99): the
    /// root of `P(T ≤ t) = fraction`, located by bracket expansion from the mean plus
    /// a safeguarded Newton iteration (the density is a free by-product of each CDF
    /// sweep), and certified by the dual-method check at the final point.
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `(0, 1)`; propagates
    /// [`ModelError::InversionDivergence`] from the final certification and
    /// [`ModelError::NoConvergence`] if bracketing or refinement stalls.
    pub fn response_time_percentile(&self, fraction: f64) -> Result<f64> {
        let mut workspace = Workspace::new();
        self.percentile_with(fraction, None, &mut workspace)
    }

    /// Several percentiles in one call, ascending ones warm-starting from their
    /// predecessors; results are returned in the order of `fractions`.
    ///
    /// # Errors
    ///
    /// As [`ResponseAnalysis::response_time_percentile`].
    pub fn response_time_percentiles(&self, fractions: &[f64]) -> Result<Vec<f64>> {
        let mut order: Vec<(usize, f64)> = fractions.iter().copied().enumerate().collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut workspace = Workspace::new();
        let mut results = vec![0.0; fractions.len()];
        let mut warm: Option<(f64, f64)> = None;
        for &(index, fraction) in &order {
            let t = self.percentile_with(fraction, warm, &mut workspace)?;
            if let Some(slot) = results.get_mut(index) {
                *slot = t;
            }
            warm = Some((t, fraction));
        }
        Ok(results)
    }

    fn percentile_with(
        &self,
        fraction: f64,
        warm: Option<(f64, f64)>,
        workspace: &mut Workspace,
    ) -> Result<f64> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(ModelError::InvalidParameter {
                name: "fraction",
                value: fraction,
                constraint: "percentile fractions must lie strictly between 0 and 1",
            });
        }
        let raw_cdf = |t: f64, ws: &mut Workspace| -> Result<(f64, f64)> {
            self.transform.cdf_density_at(
                t,
                InversionMethod::EulerSummation,
                &self.options.inversion,
                ws,
                &self.pool,
            )
        };
        // Bracket the root, starting from the warm point (a lower percentile of the
        // same distribution) or the mean response time.
        let (mut lo, mut f_lo) = match warm {
            Some((t, f)) if f < fraction && t > 0.0 => (t, f),
            _ => (0.0, 0.0),
        };
        let mut hi = if lo > 0.0 { lo * 1.5 } else { self.transform.mean_response_time() };
        if hi.is_nan() || hi <= 0.0 {
            hi = 1.0;
        }
        let (mut f_hi, _) = raw_cdf(hi, workspace)?;
        let mut expansions = 0usize;
        while f_hi < fraction {
            lo = hi;
            f_lo = f_hi;
            hi *= 2.0;
            let (value, _) = raw_cdf(hi, workspace)?;
            f_hi = value;
            expansions += 1;
            if expansions > 200 {
                return Err(ModelError::NoConvergence {
                    algorithm: "percentile bracket expansion",
                    iterations: expansions,
                });
            }
        }
        // Safeguarded Newton: each iteration costs one Euler sweep yielding both the
        // CDF value and the density, and the bracket guarantees progress when the
        // Newton step misbehaves.
        let tolerance = self.options.percentile_tolerance;
        let span = f_hi - f_lo;
        let mut x = if span > 0.0 {
            lo + (hi - lo) * ((fraction - f_lo) / span).clamp(0.05, 0.95)
        } else {
            0.5 * (lo + hi)
        };
        let mut converged = false;
        for _ in 0..128 {
            let (f, density) = raw_cdf(x, workspace)?;
            if f >= fraction {
                hi = x;
            } else {
                lo = x;
            }
            if (f - fraction).abs() <= 1e-13 || hi - lo <= tolerance * hi.max(tolerance) {
                converged = true;
                break;
            }
            let newton = x - (f - fraction) / density;
            x = if density > 0.0 && newton.is_finite() && newton > lo && newton < hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
        }
        if !converged {
            return Err(ModelError::NoConvergence {
                algorithm: "percentile Newton refinement",
                iterations: 128,
            });
        }
        // Certify the answer: the Euler value at x must survive the Talbot
        // cross-check (and the clamp cannot move an interior CDF value).
        let (euler, _) = raw_cdf(x, workspace)?;
        self.certify(x, euler, workspace)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;
    use crate::matrix_geometric::MatrixGeometricSolver;
    use crate::solution::QueueSolver;

    const METHODS: [InversionMethod; 2] =
        [InversionMethod::EulerSummation, InversionMethod::FixedTalbot];

    /// A lifecycle so reliable (breakdown rate 1e-9, repair rate 1e3) that the model
    /// is an M/M/N queue to within ~1e-12.
    fn no_breakdown() -> ServerLifecycle {
        ServerLifecycle::exponential(1e-9, 1e3).unwrap()
    }

    #[test]
    fn both_methods_invert_an_exponential_transform() {
        let options = InversionOptions::default();
        for method in METHODS {
            for t in [0.1, 0.5, 1.0, 2.5, 7.0] {
                // f(t) = e^{-t}  ⇔  F(s) = 1/(s+1).
                let inverted = invert_lst(|s| Ok((s + 1.0).recip()), t, method, &options).unwrap();
                assert!(
                    (inverted - (-t).exp()).abs() < 1e-9,
                    "{method:?} at t={t}: {inverted} vs {}",
                    (-t).exp()
                );
                // LST of Exp(2): E[e^{-sX}] = 2/(s+2); CDF 1 - e^{-2t}.
                let cdf =
                    invert_lst_cdf(|s| Ok((s + 2.0).recip() * 2.0), t, method, &options).unwrap();
                assert!(
                    (cdf - (1.0 - (-2.0 * t).exp())).abs() < 1e-9,
                    "{method:?} CDF at t={t}: {cdf}"
                );
            }
        }
    }

    #[test]
    fn inverter_rejects_bad_arguments() {
        let ok = |s: Complex| -> Result<Complex> { Ok(s.recip()) };
        let options = InversionOptions::default();
        assert!(invert_lst(ok, 0.0, InversionMethod::EulerSummation, &options).is_err());
        assert!(invert_lst(ok, -1.0, InversionMethod::FixedTalbot, &options).is_err());
        assert!(invert_lst(ok, f64::NAN, InversionMethod::EulerSummation, &options).is_err());
        assert_eq!(
            invert_lst_cdf(ok, -1.0, InversionMethod::EulerSummation, &options).unwrap(),
            0.0
        );
        assert!(invert_lst_cdf(ok, f64::NAN, InversionMethod::EulerSummation, &options).is_err());
        let bad = InversionOptions { talbot_nodes: 1, ..Default::default() };
        assert!(invert_lst(ok, 1.0, InversionMethod::FixedTalbot, &bad).is_err());
        let bad = InversionOptions { euler_decay: f64::INFINITY, ..Default::default() };
        assert!(invert_lst(ok, 1.0, InversionMethod::EulerSummation, &bad).is_err());
    }

    #[test]
    fn transform_evaluation_errors_propagate() {
        let failing = |_s: Complex| -> Result<Complex> {
            Err(ModelError::SpectralFailure("deliberate".into()))
        };
        let err = invert_lst(failing, 1.0, InversionMethod::EulerSummation, &Default::default());
        assert!(matches!(err, Err(ModelError::SpectralFailure(_))));
    }

    #[test]
    fn n1_no_breakdown_limit_matches_mm1_response() {
        // M/M/1 response time is Exp(µ − λ): W(t) = 1 − e^{−(µ−λ)t}.
        let config = SystemConfig::new(1, 0.6, 1.0, no_breakdown()).unwrap();
        let analysis = ResponseAnalysis::new(&config).unwrap();
        let rate: f64 = 1.0 - 0.6;
        for t in [0.25f64, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let exact = 1.0 - (-rate * t).exp();
            for method in METHODS {
                let value = analysis.cdf_with_method(t, method).unwrap();
                assert!((value - exact).abs() < 1e-8, "{method:?} at t={t}: {value} vs {exact}");
            }
            // The certified path agrees too (and does not divergence-error).
            let certified = analysis.response_time_cdf(t).unwrap();
            assert!((certified - exact).abs() < 1e-8);
        }
        for p in [0.5f64, 0.9, 0.99] {
            let exact = -(1.0 - p).ln() / rate;
            let value = analysis.response_time_percentile(p).unwrap();
            assert!(
                (value - exact).abs() < 1e-8 * exact.max(1.0),
                "P{}: {value} vs {exact}",
                100.0 * p
            );
        }
        // Mean from the solution matches 1/(µ−λ).
        assert!((analysis.mean_response_time() - 1.0 / rate).abs() < 1e-6);
    }

    /// Closed-form M/M/c response-time CDF (c·µ − λ ≠ µ), via the Erlang-C waiting
    /// probability:  F(t) = 1 − (1−C)e^{−µt} − C·(θe^{−µt} − µe^{−θt})/(θ − µ).
    fn mmc_response_cdf(c: usize, lambda: f64, mu: f64, t: f64) -> f64 {
        let a = lambda / mu;
        let mut sum = 0.0;
        let mut term = 1.0; // a^k / k!
        for k in 0..c {
            if k > 0 {
                term *= a / k as f64;
            }
            sum += term;
        }
        let tail = term * a / c as f64 * (c as f64 / (c as f64 - a));
        let erlang_c = tail / (sum + tail);
        let theta = c as f64 * mu - lambda;
        1.0 - (1.0 - erlang_c) * (-mu * t).exp()
            - erlang_c * (theta * (-mu * t).exp() - mu * (-theta * t).exp()) / (theta - mu)
    }

    #[test]
    fn no_breakdown_limit_matches_mmc_closed_form() {
        let (servers, lambda, mu) = (3, 2.4, 1.0);
        let config = SystemConfig::new(servers, lambda, mu, no_breakdown()).unwrap();
        let analysis = ResponseAnalysis::new(&config).unwrap();
        for t in [0.2, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let exact = mmc_response_cdf(servers, lambda, mu, t);
            for method in METHODS {
                let value = analysis.cdf_with_method(t, method).unwrap();
                assert!((value - exact).abs() < 1e-8, "{method:?} at t={t}: {value} vs {exact}");
            }
        }
        // Percentiles: invert the closed form by bisection to 1e-13 and compare.
        for p in [0.5, 0.9, 0.95, 0.99] {
            let (mut lo, mut hi) = (0.0, 50.0);
            while hi - lo > 1e-13 {
                let mid = 0.5 * (lo + hi);
                if mmc_response_cdf(servers, lambda, mu, mid) < p {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let exact = 0.5 * (lo + hi);
            let value = analysis.response_time_percentile(p).unwrap();
            assert!(
                (value - exact).abs() < 1e-8 * exact.max(1.0),
                "P{}: {value} vs {exact}",
                100.0 * p
            );
        }
    }

    #[test]
    fn lst_limits_recover_normalisation_and_mean() {
        let config =
            SystemConfig::new(4, 2.5, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap();
        let analysis = ResponseAnalysis::new(&config).unwrap();
        // W*(0⁺) = 1 (total probability, up to the truncated tail mass).
        let at_zero = analysis.lst(Complex::from_real(1e-9)).unwrap();
        assert!((at_zero.re - 1.0).abs() < 1e-6, "W*(0+) = {at_zero:?}");
        assert!(at_zero.im.abs() < 1e-12);
        // −dW*/ds at 0 is the mean response time (checked by central difference).
        let h = 1e-5;
        let plus = analysis.lst(Complex::from_real(2.0 * h)).unwrap().re;
        let minus = analysis.lst(Complex::from_real(h)).unwrap().re;
        let derivative_mean = (minus - plus) / h;
        let mean = analysis.mean_response_time();
        assert!(
            (derivative_mean - mean).abs() < 1e-3 * mean,
            "slope {derivative_mean} vs Little {mean}"
        );
    }

    #[test]
    fn certified_cdf_is_monotone_for_the_paper_lifecycle() {
        let config =
            SystemConfig::new(10, 7.5, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap();
        let analysis = ResponseAnalysis::new(&config).unwrap();
        let mut previous = 0.0;
        for t in [0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let value = analysis.response_time_cdf(t).unwrap();
            assert!((0.0..=1.0).contains(&value));
            assert!(value >= previous, "CDF must be monotone: F({t}) = {value} < {previous}");
            previous = value;
        }
        assert!(previous > 0.99, "F(16) should be close to 1, got {previous}");
        let percentiles = analysis.response_time_percentiles(&[0.5, 0.9, 0.99]).unwrap();
        assert!(percentiles[0] < percentiles[1] && percentiles[1] < percentiles[2]);
        assert!(percentiles[0] > 0.0);
        // Round trip: F(P_p) = p for the certified CDF.
        for (p, t) in [0.5, 0.9, 0.99].iter().zip(&percentiles) {
            let value = analysis.response_time_cdf(*t).unwrap();
            assert!((value - p).abs() < 1e-7, "F({t}) = {value} vs {p}");
        }
    }

    #[test]
    fn matrix_geometric_solution_yields_the_same_distribution() {
        let config =
            SystemConfig::new(4, 3.0, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap();
        let spectral = ResponseAnalysis::new(&config).unwrap();
        let solution = MatrixGeometricSolver::default().solve(&config).unwrap();
        let geometric =
            ResponseAnalysis::from_solution(&config, solution.as_ref(), ResponseOptions::default())
                .unwrap();
        for t in [0.5, 1.5, 4.0] {
            let a = spectral.response_time_cdf(t).unwrap();
            let b = geometric.response_time_cdf(t).unwrap();
            assert!((a - b).abs() < 1e-8, "spectral {a} vs matrix-geometric {b} at t={t}");
        }
    }

    #[test]
    fn heterogeneous_and_unstable_configurations_are_rejected() {
        use crate::config::ServerClass;
        let lc = ServerLifecycle::paper_fitted().unwrap();
        let mixed = SystemConfig::heterogeneous(
            1.0,
            vec![
                ServerClass::new(2, 2.0, lc.clone()).unwrap(),
                ServerClass::new(2, 1.0, lc.clone()).unwrap(),
            ],
        )
        .unwrap();
        assert!(matches!(
            ResponseAnalysis::new(&mixed),
            Err(ModelError::InvalidParameter { name: "classes", .. })
        ));
        let unstable = SystemConfig::new(2, 5.0, 1.0, lc).unwrap();
        assert!(matches!(ResponseAnalysis::new(&unstable), Err(ModelError::Unstable { .. })));
    }

    #[test]
    fn percentile_rejects_degenerate_fractions() {
        let config = SystemConfig::new(2, 0.8, 1.0, no_breakdown()).unwrap();
        let analysis = ResponseAnalysis::new(&config).unwrap();
        for bad in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            assert!(analysis.response_time_percentile(bad).is_err(), "fraction {bad}");
        }
    }

    #[test]
    fn transforms_are_cached_per_configuration() {
        let cache = SolverCache::shared();
        let config =
            SystemConfig::new(3, 2.0, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap();
        let options = ResponseOptions::default();
        let first = ResponseAnalysis::with_cache(&config, options, &cache).unwrap();
        let second = ResponseAnalysis::with_cache(&config, options, &cache).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.transform_misses, 1);
        assert_eq!(stats.transform_hits, 1);
        assert_eq!(cache.len().transforms, 1);
        assert!(Arc::ptr_eq(&first.transform, &second.transform));
        // A different tail threshold is a different transform.
        let looser = ResponseOptions { tail_epsilon: 1e-9, ..options };
        ResponseAnalysis::with_cache(&config, looser, &cache).unwrap();
        assert_eq!(cache.stats().transform_misses, 2);
        assert_eq!(cache.len().transforms, 2);
    }

    #[test]
    fn truncation_respects_the_requested_tail_mass() {
        let config =
            SystemConfig::new(3, 2.0, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap();
        let tight = ResponseAnalysis::with_options(
            &config,
            ResponseOptions { tail_epsilon: 1e-13, ..Default::default() },
        )
        .unwrap();
        let loose = ResponseAnalysis::with_options(
            &config,
            ResponseOptions { tail_epsilon: 1e-6, ..Default::default() },
        )
        .unwrap();
        assert!(tight.transform().residual_mass() <= 1e-13);
        assert!(loose.transform().residual_mass() <= 1e-6);
        assert!(tight.transform().truncation_levels() > loose.transform().truncation_levels());
        // Both truncations agree on the CDF to far better than the loose tail mass.
        let a = tight.response_time_cdf(2.0).unwrap();
        let b = loose.response_time_cdf(2.0).unwrap();
        assert!((a - b).abs() < 1e-6);
    }
}
