//! Keyed caching of the expensive, reusable pieces of the spectral solution.
//!
//! Profiling the sweeps behind the paper's Figures 5–9 shows that every grid point
//! used to rebuild two kinds of state from scratch:
//!
//! 1. the **QBD skeleton** — the mode enumeration and the generator blocks `A`, `Dᴬ`,
//!    `C_0..C_N` — which depends only on `(N, µ, lifecycle)` and not on the arrival
//!    rate, so a load sweep (Figure 8) rebuilds the identical skeleton at every point;
//! 2. the **full spectral factorisation and solution**, which is repeated verbatim
//!    whenever the same configuration is solved twice (re-running a cost sweep with a
//!    different cost model, comparing solvers on the same grid, interactive
//!    exploration).
//!
//! [`SolverCache`] memoises both levels behind `f64`-bit-exact keys.  It is `Sync`
//! (internally a pair of mutex-protected maps), so a single cache can be shared by
//! every worker thread of a [`ThreadPool`](crate::ThreadPool) during a parallel sweep.
//! Cached hits return the stored value unchanged, so cached and uncached runs are
//! bit-identical.
//!
//! The cache is unbounded: sweeps touch at most a few hundred distinct keys.  An
//! eviction policy will be needed once heterogeneous server classes multiply the key
//! space (see ROADMAP).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use urs_core::{ServerLifecycle, SolverCache, SpectralExpansionSolver, SystemConfig};
//!
//! # fn main() -> Result<(), urs_core::ModelError> {
//! let cache = SolverCache::shared();
//! let solver = SpectralExpansionSolver::default().with_cache(Arc::clone(&cache));
//! let base = SystemConfig::new(10, 8.0, 1.0, ServerLifecycle::paper_fitted()?)?;
//!
//! // Two arrival rates, same (N, µ, lifecycle): the skeleton is built once.
//! solver.solve_detailed(&base)?;
//! solver.solve_detailed(&base.with_arrival_rate(8.5)?)?;
//! assert_eq!(cache.stats().skeleton_misses, 1);
//! assert_eq!(cache.stats().skeleton_hits, 1);
//!
//! // Solving the identical configuration again is a pure cache hit.
//! solver.solve_detailed(&base)?;
//! assert_eq!(cache.stats().solution_hits, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use urs_dist::HyperExponential;

use crate::config::{ServerLifecycle, SystemConfig};
use crate::qbd::QbdSkeleton;
use crate::spectral::{SpectralOptions, SpectralSolution};
use crate::Result;

/// Bit-exact identity of a [`ServerLifecycle`]: phase weights and rates of both period
/// distributions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LifecycleKey {
    operative: Vec<(u64, u64)>,
    inoperative: Vec<(u64, u64)>,
}

impl LifecycleKey {
    fn new(lifecycle: &ServerLifecycle) -> Self {
        fn phases(dist: &HyperExponential) -> Vec<(u64, u64)> {
            dist.weights()
                .iter()
                .zip(dist.rates())
                .map(|(w, r)| (w.to_bits(), r.to_bits()))
                .collect()
        }
        LifecycleKey {
            operative: phases(lifecycle.operative()),
            inoperative: phases(lifecycle.inoperative()),
        }
    }
}

/// Key of the λ-independent skeleton: `(N, µ, lifecycle)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SkeletonKey {
    servers: usize,
    service_rate: u64,
    lifecycle: LifecycleKey,
}

impl SkeletonKey {
    fn new(config: &SystemConfig) -> Self {
        SkeletonKey {
            servers: config.servers(),
            service_rate: config.service_rate().to_bits(),
            lifecycle: LifecycleKey::new(config.lifecycle()),
        }
    }
}

/// Key of a complete spectral solution: skeleton key plus arrival rate and solver
/// options (solutions depend on the tolerances through the failure conditions).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SolutionKey {
    skeleton: SkeletonKey,
    arrival_rate: u64,
    options: [u64; 3],
}

impl SolutionKey {
    fn new(config: &SystemConfig, options: &SpectralOptions) -> Self {
        // Exhaustive destructuring: adding a field to SpectralOptions must break this
        // line rather than silently conflating solutions computed under different
        // options.
        let SpectralOptions { unit_disk_margin, reality_tolerance, residual_tolerance } = *options;
        SolutionKey {
            skeleton: SkeletonKey::new(config),
            arrival_rate: config.arrival_rate().to_bits(),
            options: [
                unit_disk_margin.to_bits(),
                reality_tolerance.to_bits(),
                residual_tolerance.to_bits(),
            ],
        }
    }
}

/// Hit/miss counters of a [`SolverCache`], for reporting and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Skeleton lookups answered from the cache.
    pub skeleton_hits: u64,
    /// Skeleton lookups that had to build the skeleton.
    pub skeleton_misses: u64,
    /// Full-solution lookups answered from the cache.
    pub solution_hits: u64,
    /// Full-solution lookups that had to run the solver.
    pub solution_misses: u64,
}

/// A thread-safe cache of QBD skeletons and complete spectral solutions.
///
/// Attach one to a [`SpectralExpansionSolver`](crate::SpectralExpansionSolver) with
/// [`with_cache`](crate::SpectralExpansionSolver::with_cache); the sweep helpers and
/// figure binaries then reuse the λ-independent factorisation pieces across grid
/// points automatically.  See the example above in the module docs.
#[derive(Debug, Default)]
pub struct SolverCache {
    skeletons: Mutex<HashMap<SkeletonKey, Arc<QbdSkeleton>>>,
    solutions: Mutex<HashMap<SolutionKey, Arc<SpectralSolution>>>,
    skeleton_hits: AtomicU64,
    skeleton_misses: AtomicU64,
    solution_hits: AtomicU64,
    solution_misses: AtomicU64,
}

impl SolverCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SolverCache::default()
    }

    /// Creates an empty cache already wrapped in an [`Arc`], ready to be shared
    /// between solvers and threads.
    pub fn shared() -> Arc<Self> {
        Arc::new(SolverCache::new())
    }

    /// Returns the QBD skeleton for `(N, µ, lifecycle)` of the configuration, building
    /// and caching it on first use.
    ///
    /// The skeleton is built outside the cache lock, so concurrent sweeps never stall
    /// behind a build; if two threads race on the same key the first inserted skeleton
    /// wins and both threads share it (the builds are deterministic, so the values are
    /// interchangeable).
    ///
    /// # Errors
    ///
    /// Propagates skeleton-construction errors (`servers == 0`).
    pub fn skeleton(&self, config: &SystemConfig) -> Result<Arc<QbdSkeleton>> {
        let key = SkeletonKey::new(config);
        if let Some(hit) = lock(&self.skeletons).get(&key) {
            self.skeleton_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.skeleton_misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(QbdSkeleton::new(
            config.servers(),
            config.service_rate(),
            config.lifecycle(),
        )?);
        Ok(Arc::clone(lock(&self.skeletons).entry(key).or_insert(built)))
    }

    /// Looks up a complete solution for the configuration and options.
    pub(crate) fn lookup_solution(
        &self,
        config: &SystemConfig,
        options: &SpectralOptions,
    ) -> Option<Arc<SpectralSolution>> {
        let found = lock(&self.solutions).get(&SolutionKey::new(config, options)).cloned();
        match &found {
            Some(_) => self.solution_hits.fetch_add(1, Ordering::Relaxed),
            None => self.solution_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a freshly computed solution.
    pub(crate) fn store_solution(
        &self,
        config: &SystemConfig,
        options: &SpectralOptions,
        solution: SpectralSolution,
    ) {
        lock(&self.solutions).insert(SolutionKey::new(config, options), Arc::new(solution));
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            skeleton_hits: self.skeleton_hits.load(Ordering::Relaxed),
            skeleton_misses: self.skeleton_misses.load(Ordering::Relaxed),
            solution_hits: self.solution_hits.load(Ordering::Relaxed),
            solution_misses: self.solution_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached skeletons and solutions, respectively.
    pub fn len(&self) -> (usize, usize) {
        (lock(&self.skeletons).len(), lock(&self.solutions).len())
    }

    /// Returns `true` if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == (0, 0)
    }

    /// Drops every cached entry; the counters keep accumulating.
    pub fn clear(&self) {
        lock(&self.skeletons).clear();
        lock(&self.solutions).clear();
    }
}

/// Locks a cache map, recovering from poisoning (a panic elsewhere cannot corrupt a
/// map we only ever insert complete entries into).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::QueueSolution as _;
    use crate::spectral::SpectralExpansionSolver;

    fn config(servers: usize, lambda: f64) -> SystemConfig {
        SystemConfig::new(servers, lambda, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap()
    }

    #[test]
    fn skeletons_are_shared_per_lifecycle_and_server_count() {
        let cache = SolverCache::new();
        let first = cache.skeleton(&config(4, 2.0)).unwrap();
        let again = cache.skeleton(&config(4, 3.5)).unwrap(); // same N, µ, lifecycle
        assert!(Arc::ptr_eq(&first, &again), "λ must not affect the skeleton key");
        let other = cache.skeleton(&config(5, 2.0)).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
        let stats = cache.stats();
        assert_eq!((stats.skeleton_hits, stats.skeleton_misses), (1, 2));
        assert_eq!(cache.len().0, 2);
    }

    #[test]
    fn different_lifecycles_get_different_skeletons() {
        let cache = SolverCache::new();
        let a = cache.skeleton(&config(3, 2.0)).unwrap();
        let exp = ServerLifecycle::exponential(0.1, 2.0).unwrap();
        let b = cache.skeleton(&SystemConfig::new(3, 2.0, 1.0, exp).unwrap()).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().skeleton_misses, 2);
    }

    #[test]
    fn solutions_are_memoised_bit_identically() {
        let cache = SolverCache::shared();
        let solver = SpectralExpansionSolver::default().with_cache(Arc::clone(&cache));
        let cfg = config(4, 2.5);
        let fresh = solver.solve_detailed(&cfg).unwrap();
        let cached = solver.solve_detailed(&cfg).unwrap();
        assert_eq!(fresh.mean_queue_length().to_bits(), cached.mean_queue_length().to_bits());
        assert_eq!(fresh.boundary_levels(), cached.boundary_levels());
        let stats = cache.stats();
        assert_eq!(stats.solution_hits, 1);
        assert_eq!(stats.solution_misses, 1);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = SolverCache::new();
        cache.skeleton(&config(3, 1.0)).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_lookups_share_one_skeleton() {
        use crate::parallel::ThreadPool;
        let cache = SolverCache::shared();
        let configs: Vec<SystemConfig> = (1..=8).map(|i| config(6, 0.5 * i as f64)).collect();
        let skeletons =
            ThreadPool::new(4).try_par_map(&configs, |cfg| cache.skeleton(cfg)).unwrap();
        for s in &skeletons {
            assert!(Arc::ptr_eq(s, &skeletons[0]));
        }
        assert_eq!(cache.len().0, 1);
    }
}
