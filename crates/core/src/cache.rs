//! Keyed caching of the expensive, reusable pieces of the spectral solution.
//!
//! Profiling the sweeps behind the paper's Figures 5–9 shows that every grid point
//! used to rebuild three kinds of state from scratch:
//!
//! 1. the **QBD skeleton** — the mode enumeration and the generator blocks `A`, `Dᴬ`,
//!    `C_0..C_N` — which depends only on the server classes (`N`, `µ`, lifecycle per
//!    class) and not on the arrival rate, so a load sweep (Figure 8) rebuilds the
//!    identical skeleton at every point;
//! 2. the **quadratic eigensystem** of `Q(z)` — which the spectral solver *and* the
//!    geometric approximation each need for the same `(skeleton, λ)`, so Figures 8
//!    and 9 used to pay the companion-matrix QR factorisation twice per grid point;
//! 3. the **full spectral solution**, which is repeated verbatim whenever the same
//!    configuration is solved twice (re-running a cost sweep with a different cost
//!    model, comparing solvers on the same grid, interactive exploration).
//!
//! [`SolverCache`] memoises all three levels — plus a fourth, the response-time
//! transform skeletons of [`response`](crate::response) — behind `f64`-bit-exact
//! keys.  Key
//! construction normalises signed zero (`-0.0` and `0.0` hash identically) and
//! rejects non-finite values, so NaN can never be admitted as a silently-unequal
//! cache key.  The cache is `Sync` — each level is split into independently locked
//! shards keyed by a deterministic hash — so a single cache can be shared by every
//! worker thread of a [`ThreadPool`](crate::ThreadPool) during a parallel sweep (or
//! by every request of a standing `urs-server` process) with contention per shard
//! rather than per level.  A shard poisoned by a panicking worker is cleared and
//! reused (counted in [`CacheStats::poison_recoveries`]), never propagated.  Cached
//! hits return the stored value unchanged, so cached and uncached runs are
//! bit-identical.
//!
//! Every level is a **size-capped LRU**: heterogeneous server classes multiply the
//! key space combinatorially, so the unbounded maps of the original design would
//! grow without limit under class-mix sweeps.  When a map reaches its capacity the
//! least-recently-used entry is evicted (and counted in [`CacheStats`]).  The
//! defaults are generous enough that the paper-scale sweeps never evict; tighten
//! them with [`SolverCache::with_capacities`] for long-running services.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use urs_core::{ServerLifecycle, SolverCache, SpectralExpansionSolver, SystemConfig};
//!
//! # fn main() -> Result<(), urs_core::ModelError> {
//! let cache = SolverCache::shared();
//! let solver = SpectralExpansionSolver::default().with_cache(Arc::clone(&cache));
//! let base = SystemConfig::new(10, 8.0, 1.0, ServerLifecycle::paper_fitted()?)?;
//!
//! // Two arrival rates, same (N, µ, lifecycle): the skeleton is built once.
//! solver.solve_detailed(&base)?;
//! solver.solve_detailed(&base.with_arrival_rate(8.5)?)?;
//! assert_eq!(cache.stats().skeleton_misses, 1);
//! assert_eq!(cache.stats().skeleton_hits, 1);
//!
//! // Solving the identical configuration again is a pure cache hit.
//! solver.solve_detailed(&base)?;
//! assert_eq!(cache.stats().solution_hits, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use urs_dist::HyperExponential;
use urs_linalg::Complex;

use crate::config::{canonical_bits, ServerClass, SystemConfig};
use crate::error::ModelError;
use crate::qbd::QbdSkeleton;
use crate::response::ResponseTransform;
use crate::spectral::{SpectralOptions, SpectralSolution};
use crate::Result;

/// Default capacity of the skeleton map (skeletons are the largest entries).
const DEFAULT_SKELETON_CAPACITY: usize = 64;
/// Default capacity of the full-solution map.
const DEFAULT_SOLUTION_CAPACITY: usize = 4096;
/// Default capacity of the eigensystem map.
const DEFAULT_EIGEN_CAPACITY: usize = 1024;
/// Default capacity of the response-transform map (transforms hold the truncated
/// arrival distribution, so they are skeleton-sized entries).
const DEFAULT_TRANSFORM_CAPACITY: usize = 64;

/// Deterministic digest of an arbitrary hashable key (FNV-1a over its `Hash`
/// bytes) — the same stable hash that assigns cache shards, reused by the query
/// planner to group compatible queries.
pub(crate) fn digest_of<K: Hash>(key: &K) -> u64 {
    Fnv1a::hash_of(key)
}

/// Deterministic digest of the λ-independent skeleton identity of a configuration:
/// two configurations with equal digests share their QBD skeleton (and therefore
/// their eigensystem lookups), which is what makes their queries batchable.
///
/// # Errors
///
/// Rejects configurations with non-finite parameters (no sound cache key).
pub(crate) fn skeleton_digest(config: &SystemConfig) -> Result<u64> {
    Ok(digest_of(&SkeletonKey::new(config)?))
}

/// Bit pattern of an `f64` for use inside a cache key: signed zero is normalised
/// (`-0.0` keys identically to `0.0`, via the same [`canonical_bits`] rule that
/// drives class merging in `config.rs`) and non-finite values are rejected rather
/// than silently admitted as never-matching NaN keys.
fn key_bits(name: &'static str, value: f64) -> Result<u64> {
    if !value.is_finite() {
        return Err(ModelError::InvalidParameter {
            name,
            value,
            constraint: "cache keys require finite values",
        });
    }
    Ok(canonical_bits(value))
}

/// Bit-exact identity of the two period distributions of a lifecycle.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct LifecycleKey {
    operative: Vec<(u64, u64)>,
    inoperative: Vec<(u64, u64)>,
}

impl LifecycleKey {
    fn new(lifecycle: &crate::config::ServerLifecycle) -> Result<Self> {
        fn phases(dist: &HyperExponential) -> Result<Vec<(u64, u64)>> {
            dist.weights()
                .iter()
                .zip(dist.rates())
                .map(|(w, r)| Ok((key_bits("phase weight", *w)?, key_bits("phase rate", *r)?)))
                .collect()
        }
        Ok(LifecycleKey {
            operative: phases(lifecycle.operative())?,
            inoperative: phases(lifecycle.inoperative())?,
        })
    }
}

/// Bit-exact identity of one server class: `(count, µ, lifecycle)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct ClassKey {
    count: usize,
    service_rate: u64,
    lifecycle: LifecycleKey,
}

impl ClassKey {
    fn new(class: &ServerClass) -> Result<Self> {
        Ok(ClassKey {
            count: class.count(),
            service_rate: key_bits("service_rate", class.service_rate())?,
            lifecycle: LifecycleKey::new(class.lifecycle())?,
        })
    }
}

/// Key of the λ-independent skeleton: the canonical server-class list.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct SkeletonKey {
    classes: Vec<ClassKey>,
}

impl SkeletonKey {
    fn new(config: &SystemConfig) -> Result<Self> {
        Ok(SkeletonKey {
            classes: config.classes().iter().map(ClassKey::new).collect::<Result<_>>()?,
        })
    }
}

/// Key of a complete spectral solution: skeleton key plus arrival rate and solver
/// options (solutions depend on the tolerances through the failure conditions).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct SolutionKey {
    skeleton: SkeletonKey,
    arrival_rate: u64,
    options: [u64; 3],
}

impl SolutionKey {
    fn new(config: &SystemConfig, options: &SpectralOptions) -> Result<Self> {
        // Exhaustive destructuring: adding a field to SpectralOptions must break this
        // line rather than silently conflating solutions computed under different
        // options.
        let SpectralOptions { unit_disk_margin, reality_tolerance, residual_tolerance } = *options;
        Ok(SolutionKey {
            skeleton: SkeletonKey::new(config)?,
            arrival_rate: key_bits("arrival_rate", config.arrival_rate())?,
            options: [
                key_bits("unit_disk_margin", unit_disk_margin)?,
                key_bits("reality_tolerance", reality_tolerance)?,
                key_bits("residual_tolerance", residual_tolerance)?,
            ],
        })
    }
}

/// Key of a cached eigensystem: `(skeleton, λ, unit-disk margin)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct EigenKey {
    skeleton: SkeletonKey,
    arrival_rate: u64,
    margin: u64,
}

impl EigenKey {
    fn new(config: &SystemConfig, margin: f64) -> Result<Self> {
        Ok(EigenKey {
            skeleton: SkeletonKey::new(config)?,
            arrival_rate: key_bits("arrival_rate", config.arrival_rate())?,
            margin: key_bits("unit_disk_margin", margin)?,
        })
    }
}

/// Key of a cached response-time transform skeleton: the underlying spectral solution
/// key plus the tail-truncation threshold (the transform stores the arrival-state
/// distribution truncated at that mass, so different thresholds yield different —
/// if numerically close — transforms).  The inversion options are deliberately *not*
/// part of the key: they affect only how the transform is evaluated, never its
/// contents.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct TransformKey {
    solution: SolutionKey,
    tail_epsilon: u64,
}

impl TransformKey {
    fn new(config: &SystemConfig, options: &SpectralOptions, tail_epsilon: f64) -> Result<Self> {
        Ok(TransformKey {
            solution: SolutionKey::new(config, options)?,
            tail_epsilon: key_bits("tail_epsilon", tail_epsilon)?,
        })
    }
}

/// The eigensystem of the characteristic matrix polynomial `Q(z)` restricted to the
/// open unit disk, shared between the spectral solver (producer of the full system)
/// and the geometric approximation (consumer of the dominant pair).
#[derive(Debug, Clone)]
pub(crate) struct EigenEntry {
    /// Eigenvalues strictly inside the unit disk.
    pub eigenvalues: Vec<Complex>,
    /// Left eigenvectors aligned with `eigenvalues`; `None` where the producer did
    /// not need that eigenvector (the approximation stores only the dominant one).
    pub eigenvectors: Vec<Option<Vec<Complex>>>,
}

/// Number of lock shards per cache level.  Each shard is an independent
/// mutex-protected LRU, so concurrent workers contend only when their keys hash to
/// the same shard instead of serialising on one coarse lock per level.
const DEFAULT_SHARDS: usize = 8;

/// A deterministic FNV-1a hasher used to assign keys to shards.  The standard
/// library's `RandomState` is seeded per process, which would make shard
/// assignment — and therefore eviction behaviour and statistics — differ between
/// runs; FNV-1a over the derived `Hash` bytes is stable across runs, processes and
/// platforms, which the restart-determinism contract of `urs-server` relies on.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn hash_of<K: Hash>(key: &K) -> u64 {
        let mut hasher = Fnv1a(Fnv1a::OFFSET_BASIS);
        key.hash(&mut hasher);
        hasher.finish()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for byte in bytes {
            self.0 ^= u64::from(*byte);
            self.0 = self.0.wrapping_mul(Fnv1a::PRIME);
        }
    }
}

/// A `BTreeMap` with a recency stamp per entry and least-recently-used
/// eviction once `capacity` is reached.  Eviction scans are `O(len)`, which is
/// negligible against the cost of the solves being cached.  An ordered map (rather
/// than a hash map) keeps eviction order — and therefore hit/miss statistics —
/// independent of hasher seeding across runs and processes.
#[derive(Debug)]
struct LruMap<K, V> {
    map: BTreeMap<K, (V, u64)>,
    capacity: usize,
    clock: u64,
}

impl<K: Ord + Clone, V> LruMap<K, V> {
    fn new(capacity: usize) -> Self {
        LruMap { map: BTreeMap::new(), capacity: capacity.max(1), clock: 0 }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn get(&mut self, key: &K) -> Option<&V> {
        let stamp = self.tick();
        match self.map.get_mut(key) {
            Some((value, last_used)) => {
                *last_used = stamp;
                Some(value)
            }
            None => None,
        }
    }

    /// Inserts (or replaces) an entry; returns the *recency age* of any entry that
    /// had to be evicted — how many operations ago the victim was last touched.
    /// The age is measured on the map's own operation clock (never wall time), so
    /// eviction reporting stays deterministic.
    fn insert(&mut self, key: K, value: V) -> Option<u64> {
        let stamp = self.tick();
        let mut evicted_age = None;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some((victim, age)) = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, (_, used))| (k.clone(), stamp.saturating_sub(*used)))
            {
                self.map.remove(&victim);
                evicted_age = Some(age);
            }
        }
        self.map.insert(key, (value, stamp));
        evicted_age
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
    }
}

/// A sharded, poison-recovering LRU: `shards` independent [`LruMap`]s, each behind
/// its own mutex, with keys assigned by the deterministic [`Fnv1a`] hash.  The
/// requested capacity is split evenly across shards (each shard holds at least one
/// entry), so eviction decisions are per shard — two hot keys in different shards
/// never evict each other, at the price of the LRU order being approximate across
/// the whole level.
///
/// Locking never panics on a poisoned mutex: a worker that panicked while holding a
/// shard leaves that shard's contents suspect, so the shard is **cleared and reused**
/// (recover-and-continue) and the recovery is counted.  One crashed worker can
/// therefore never wedge a standing server — the worst case is a few cold keys.
#[derive(Debug)]
struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruMap<K, V>>>,
    poison_recoveries: AtomicU64,
}

impl<K: Ord + Clone + Hash, V: Clone> ShardedLru<K, V> {
    fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let per_shard = capacity.div_ceil(shards);
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(LruMap::new(per_shard))).collect(),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// The shard index a key hashes to (stable across runs).
    fn shard_index(&self, key: &K) -> usize {
        (Fnv1a::hash_of(key) % self.shards.len().max(1) as u64) as usize
    }

    /// Runs `f` with the shard at `index` locked, recovering a poisoned shard by
    /// clearing it first.
    fn with_shard_at<R>(&self, index: usize, f: impl FnOnce(&mut LruMap<K, V>) -> R) -> R {
        let Some(mutex) = self.shards.get(index) else {
            // The constructor guarantees at least one shard; reaching this branch
            // would be a bug, but a scratch map keeps the path panic-free.
            return f(&mut LruMap::new(1));
        };
        let mut guard = match mutex.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.clear();
                // Clear the flag too, so the recovery is counted once rather than on
                // every subsequent lock of this shard.
                mutex.clear_poison();
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                guard
            }
        };
        f(&mut guard)
    }

    fn get(&self, key: &K) -> Option<V> {
        self.with_shard_at(self.shard_index(key), |map| map.get(key).cloned())
    }

    /// Inserts, returning the recency age of any evicted victim.
    fn insert(&self, key: K, value: V) -> Option<u64> {
        let index = self.shard_index(&key);
        self.with_shard_at(index, |map| map.insert(key, value))
    }

    /// Inserts unless another thread already stored the key (the racing winner is
    /// returned unchanged, so racing builders converge on one shared value).
    fn insert_or_get(&self, key: K, value: V) -> (V, Option<u64>) {
        let index = self.shard_index(&key);
        self.with_shard_at(index, |map| {
            if let Some(winner) = map.get(&key) {
                return (winner.clone(), None);
            }
            let evicted = map.insert(key, value.clone());
            (value, evicted)
        })
    }

    fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.with_shard_at(i, |map| map.len())).sum()
    }

    fn clear(&self) {
        for i in 0..self.shards.len() {
            self.with_shard_at(i, |map| map.clear());
        }
    }

    fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }
}

/// Hit/miss/eviction counters of one cache level, derived from [`CacheStats`] by
/// [`CacheStats::levels`] — the per-level view a serving process reports on its
/// metrics endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelStats {
    /// Level name: `"skeletons"`, `"solutions"`, `"eigensystems"` or `"transforms"`.
    pub level: &'static str,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Sum of the recency ages (shard operations since last touch) of all evicted
    /// entries; divide by `evictions` for the mean via [`mean_eviction_age`](Self::mean_eviction_age).
    pub eviction_age_total: u64,
}

impl CacheLevelStats {
    /// Total lookups against this level.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (`0.0` when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / lookups as f64
    }

    /// Mean recency age of evicted entries, in shard operations (`0.0` when nothing
    /// was evicted).  A small mean means the level is thrashing — entries are
    /// evicted soon after their last use — and its capacity should grow.
    pub fn mean_eviction_age(&self) -> f64 {
        if self.evictions == 0 {
            return 0.0;
        }
        self.eviction_age_total as f64 / self.evictions as f64
    }
}

/// Hit/miss/eviction counters of a [`SolverCache`], for reporting and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Skeleton lookups answered from the cache.
    pub skeleton_hits: u64,
    /// Skeleton lookups that had to build the skeleton.
    pub skeleton_misses: u64,
    /// Full-solution lookups answered from the cache.
    pub solution_hits: u64,
    /// Full-solution lookups that had to run the solver.
    pub solution_misses: u64,
    /// Eigensystem lookups answered from the cache: one solver reusing the other's
    /// factorisation for the same `(skeleton, λ, margin)`.  The geometric
    /// approximation reads the complete system the spectral solver published; the
    /// spectral solver reads the eigen*values* (plus the dominant eigenvector) the
    /// approximation published — e.g. a mix search screening with the approximation
    /// and then verifying the top candidates exactly — and extracts only the missing
    /// eigenvectors.
    pub eigen_hits: u64,
    /// Eigensystem lookups that had to solve the quadratic eigenproblem.
    pub eigen_misses: u64,
    /// Response-transform lookups answered from the cache: repeated percentile or CDF
    /// queries against the same configuration (an SLA sweep evaluating P90/P95/P99,
    /// say) skip both the stationary solve and the transform assembly.
    pub transform_hits: u64,
    /// Response-transform lookups that had to assemble the transform.
    pub transform_misses: u64,
    /// Skeletons evicted by the LRU policy.
    pub skeleton_evictions: u64,
    /// Solutions evicted by the LRU policy.
    pub solution_evictions: u64,
    /// Eigensystems evicted by the LRU policy.
    pub eigen_evictions: u64,
    /// Response transforms evicted by the LRU policy.
    pub transform_evictions: u64,
    /// Cumulative recency age of evicted skeletons (see [`CacheLevelStats::eviction_age_total`]).
    pub skeleton_eviction_age: u64,
    /// Cumulative recency age of evicted solutions.
    pub solution_eviction_age: u64,
    /// Cumulative recency age of evicted eigensystems.
    pub eigen_eviction_age: u64,
    /// Cumulative recency age of evicted response transforms.
    pub transform_eviction_age: u64,
    /// Shards cleared after a worker panicked while holding their lock
    /// (recover-and-continue; see the poisoning policy in the [`SolverCache`] docs).
    pub poison_recoveries: u64,
}

impl CacheStats {
    /// The per-level view: `[skeletons, solutions, eigensystems, transforms]`, each
    /// with its hit rate and eviction-age diagnostics — the shape a serving
    /// process's `stats` endpoint reports.
    pub fn levels(&self) -> [CacheLevelStats; 4] {
        [
            CacheLevelStats {
                level: "skeletons",
                hits: self.skeleton_hits,
                misses: self.skeleton_misses,
                evictions: self.skeleton_evictions,
                eviction_age_total: self.skeleton_eviction_age,
            },
            CacheLevelStats {
                level: "solutions",
                hits: self.solution_hits,
                misses: self.solution_misses,
                evictions: self.solution_evictions,
                eviction_age_total: self.solution_eviction_age,
            },
            CacheLevelStats {
                level: "eigensystems",
                hits: self.eigen_hits,
                misses: self.eigen_misses,
                evictions: self.eigen_evictions,
                eviction_age_total: self.eigen_eviction_age,
            },
            CacheLevelStats {
                level: "transforms",
                hits: self.transform_hits,
                misses: self.transform_misses,
                evictions: self.transform_evictions,
                eviction_age_total: self.transform_eviction_age,
            },
        ]
    }

    /// Overall hit rate across all four levels (`0.0` before the first lookup).
    pub fn total_hit_rate(&self) -> f64 {
        let hits = self.skeleton_hits + self.solution_hits + self.eigen_hits + self.transform_hits;
        let lookups = hits
            + self.skeleton_misses
            + self.solution_misses
            + self.eigen_misses
            + self.transform_misses;
        if lookups == 0 {
            return 0.0;
        }
        hits as f64 / lookups as f64
    }
}

/// Number of entries cached per level, as reported by [`SolverCache::len`].
///
/// (Previously a bare 4-tuple; the named form keeps the serving stats endpoint's
/// shape self-describing and extensible.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheOccupancy {
    /// Cached QBD skeletons.
    pub skeletons: usize,
    /// Cached complete spectral solutions.
    pub solutions: usize,
    /// Cached unit-disk eigensystems.
    pub eigensystems: usize,
    /// Cached response-time transforms.
    pub transforms: usize,
}

impl CacheOccupancy {
    /// Total entries across all four levels.
    pub fn total(&self) -> usize {
        self.skeletons + self.solutions + self.eigensystems + self.transforms
    }
}

/// A thread-safe, size-capped LRU cache of QBD skeletons, quadratic eigensystems and
/// complete spectral solutions.
///
/// Attach one to a [`SpectralExpansionSolver`](crate::SpectralExpansionSolver) with
/// [`with_cache`](crate::SpectralExpansionSolver::with_cache) and to a
/// [`GeometricApproximation`](crate::GeometricApproximation) with
/// [`with_cache`](crate::GeometricApproximation::with_cache); sharing *one* cache
/// between both solvers lets the approximation reuse the eigensystem the spectral
/// solver just factorised for the identical configuration (Figures 8 and 9 compare
/// the two on the same grids).  See the example above in the module docs.
///
/// # Sharding and poisoning
///
/// Each level is split into 8 independently locked shards keyed by
/// a deterministic hash, so the worker threads of a parallel sweep (or the request
/// threads of a standing server) contend per shard rather than per level.  A shard
/// whose lock was poisoned by a panicking worker is **cleared and reused** rather
/// than propagating the poison: the cache only ever stores complete, immutable
/// entries, so the sole risk after a panic is staleness of that shard's bookkeeping
/// — dropping its entries restores a sound (cold) state and the recovery is counted
/// in [`CacheStats::poison_recoveries`].
#[derive(Debug)]
pub struct SolverCache {
    skeletons: ShardedLru<SkeletonKey, Arc<QbdSkeleton>>,
    solutions: ShardedLru<SolutionKey, Arc<SpectralSolution>>,
    eigensystems: ShardedLru<EigenKey, Arc<EigenEntry>>,
    transforms: ShardedLru<TransformKey, Arc<ResponseTransform>>,
    skeleton_hits: AtomicU64,
    skeleton_misses: AtomicU64,
    solution_hits: AtomicU64,
    solution_misses: AtomicU64,
    eigen_hits: AtomicU64,
    eigen_misses: AtomicU64,
    transform_hits: AtomicU64,
    transform_misses: AtomicU64,
    skeleton_evictions: AtomicU64,
    solution_evictions: AtomicU64,
    eigen_evictions: AtomicU64,
    transform_evictions: AtomicU64,
    skeleton_eviction_age: AtomicU64,
    solution_eviction_age: AtomicU64,
    eigen_eviction_age: AtomicU64,
    transform_eviction_age: AtomicU64,
}

impl Default for SolverCache {
    fn default() -> Self {
        SolverCache::new()
    }
}

impl SolverCache {
    /// Creates an empty cache with the default capacities (64 skeletons, 4096
    /// solutions, 1024 eigensystems, 64 response transforms — ample for every sweep
    /// in this repository).
    pub fn new() -> Self {
        SolverCache::with_capacities(
            DEFAULT_SKELETON_CAPACITY,
            DEFAULT_SOLUTION_CAPACITY,
            DEFAULT_EIGEN_CAPACITY,
        )
    }

    /// Creates an empty cache with explicit LRU capacities (each clamped to at least
    /// one) for skeletons, solutions and eigensystems respectively.  The
    /// response-transform map keeps its default capacity; transforms are rebuilt
    /// cheaply from cached solutions, so a dedicated knob has not been needed.
    ///
    /// Each capacity is split across the level's lock shards, so the bound is
    /// enforced per shard (a level holds at most `capacity` entries, with eviction
    /// decisions local to each shard).
    pub fn with_capacities(skeletons: usize, solutions: usize, eigensystems: usize) -> Self {
        SolverCache::with_layout(
            skeletons,
            solutions,
            eigensystems,
            DEFAULT_TRANSFORM_CAPACITY,
            DEFAULT_SHARDS,
        )
    }

    /// Full layout control: per-level capacities plus the shard count (tests use a
    /// single shard to pin exact global-LRU eviction order).
    fn with_layout(
        skeletons: usize,
        solutions: usize,
        eigensystems: usize,
        transforms: usize,
        shards: usize,
    ) -> Self {
        SolverCache {
            skeletons: ShardedLru::new(skeletons, shards),
            solutions: ShardedLru::new(solutions, shards),
            eigensystems: ShardedLru::new(eigensystems, shards),
            transforms: ShardedLru::new(transforms, shards),
            skeleton_hits: AtomicU64::new(0),
            skeleton_misses: AtomicU64::new(0),
            solution_hits: AtomicU64::new(0),
            solution_misses: AtomicU64::new(0),
            eigen_hits: AtomicU64::new(0),
            eigen_misses: AtomicU64::new(0),
            transform_hits: AtomicU64::new(0),
            transform_misses: AtomicU64::new(0),
            skeleton_evictions: AtomicU64::new(0),
            solution_evictions: AtomicU64::new(0),
            eigen_evictions: AtomicU64::new(0),
            transform_evictions: AtomicU64::new(0),
            skeleton_eviction_age: AtomicU64::new(0),
            solution_eviction_age: AtomicU64::new(0),
            eigen_eviction_age: AtomicU64::new(0),
            transform_eviction_age: AtomicU64::new(0),
        }
    }

    /// Creates an empty cache already wrapped in an [`Arc`], ready to be shared
    /// between solvers and threads.
    pub fn shared() -> Arc<Self> {
        Arc::new(SolverCache::new())
    }

    /// Records an eviction on the given counters, if one happened.
    fn record_eviction(evictions: &AtomicU64, ages: &AtomicU64, evicted_age: Option<u64>) {
        if let Some(age) = evicted_age {
            evictions.fetch_add(1, Ordering::Relaxed);
            ages.fetch_add(age, Ordering::Relaxed);
        }
    }

    /// Returns the QBD skeleton for the server classes of the configuration, building
    /// and caching it on first use.
    ///
    /// The skeleton is built outside the shard lock, so concurrent sweeps never stall
    /// behind a build; if two threads race on the same key the first inserted skeleton
    /// wins and both threads share it (the builds are deterministic, so the values are
    /// interchangeable).
    ///
    /// # Errors
    ///
    /// Propagates skeleton-construction errors and rejects configurations whose
    /// parameters cannot form a sound cache key (non-finite values).
    pub fn skeleton(&self, config: &SystemConfig) -> Result<Arc<QbdSkeleton>> {
        let key = SkeletonKey::new(config)?;
        if let Some(hit) = self.skeletons.get(&key) {
            self.skeleton_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.skeleton_misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(QbdSkeleton::for_classes(config.classes())?);
        let (winner, evicted) = self.skeletons.insert_or_get(key, built);
        Self::record_eviction(&self.skeleton_evictions, &self.skeleton_eviction_age, evicted);
        Ok(winner)
    }

    /// Looks up a complete solution for the configuration and options.
    pub(crate) fn lookup_solution(
        &self,
        config: &SystemConfig,
        options: &SpectralOptions,
    ) -> Result<Option<Arc<SpectralSolution>>> {
        let key = SolutionKey::new(config, options)?;
        let found = self.solutions.get(&key);
        match &found {
            Some(_) => self.solution_hits.fetch_add(1, Ordering::Relaxed),
            None => self.solution_misses.fetch_add(1, Ordering::Relaxed),
        };
        Ok(found)
    }

    /// Stores a freshly computed solution.
    pub(crate) fn store_solution(
        &self,
        config: &SystemConfig,
        options: &SpectralOptions,
        solution: SpectralSolution,
    ) -> Result<()> {
        let key = SolutionKey::new(config, options)?;
        let evicted = self.solutions.insert(key, Arc::new(solution));
        Self::record_eviction(&self.solution_evictions, &self.solution_eviction_age, evicted);
        Ok(())
    }

    /// Looks up the unit-disk eigensystem for `(skeleton, λ, margin)`.
    pub(crate) fn lookup_eigensystem(
        &self,
        config: &SystemConfig,
        margin: f64,
    ) -> Result<Option<Arc<EigenEntry>>> {
        let key = EigenKey::new(config, margin)?;
        let found = self.eigensystems.get(&key);
        match &found {
            Some(_) => self.eigen_hits.fetch_add(1, Ordering::Relaxed),
            None => self.eigen_misses.fetch_add(1, Ordering::Relaxed),
        };
        Ok(found)
    }

    /// Stores a freshly computed eigensystem.  Entries with more eigenvectors win:
    /// a full entry (from the spectral solver) is never replaced by a dominant-only
    /// entry (from the approximation) racing on the same key.
    pub(crate) fn store_eigensystem(
        &self,
        config: &SystemConfig,
        margin: f64,
        entry: EigenEntry,
    ) -> Result<()> {
        let key = EigenKey::new(config, margin)?;
        let index = self.eigensystems.shard_index(&key);
        let evicted = self.eigensystems.with_shard_at(index, |map| {
            if let Some(existing) = map.get(&key) {
                let existing_vectors = existing.eigenvectors.iter().flatten().count();
                if existing_vectors >= entry.eigenvectors.iter().flatten().count() {
                    return None;
                }
            }
            map.insert(key.clone(), Arc::new(entry))
        });
        Self::record_eviction(&self.eigen_evictions, &self.eigen_eviction_age, evicted);
        Ok(())
    }

    /// Looks up a response-time transform for `(config, spectral options, tail ε)`.
    pub(crate) fn lookup_transform(
        &self,
        config: &SystemConfig,
        options: &SpectralOptions,
        tail_epsilon: f64,
    ) -> Result<Option<Arc<ResponseTransform>>> {
        let key = TransformKey::new(config, options, tail_epsilon)?;
        let found = self.transforms.get(&key);
        match &found {
            Some(_) => self.transform_hits.fetch_add(1, Ordering::Relaxed),
            None => self.transform_misses.fetch_add(1, Ordering::Relaxed),
        };
        Ok(found)
    }

    /// Stores a freshly assembled response-time transform.
    pub(crate) fn store_transform(
        &self,
        config: &SystemConfig,
        options: &SpectralOptions,
        tail_epsilon: f64,
        transform: Arc<ResponseTransform>,
    ) -> Result<()> {
        let key = TransformKey::new(config, options, tail_epsilon)?;
        let evicted = self.transforms.insert(key, transform);
        Self::record_eviction(&self.transform_evictions, &self.transform_eviction_age, evicted);
        Ok(())
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            skeleton_hits: self.skeleton_hits.load(Ordering::Relaxed),
            skeleton_misses: self.skeleton_misses.load(Ordering::Relaxed),
            solution_hits: self.solution_hits.load(Ordering::Relaxed),
            solution_misses: self.solution_misses.load(Ordering::Relaxed),
            eigen_hits: self.eigen_hits.load(Ordering::Relaxed),
            eigen_misses: self.eigen_misses.load(Ordering::Relaxed),
            transform_hits: self.transform_hits.load(Ordering::Relaxed),
            transform_misses: self.transform_misses.load(Ordering::Relaxed),
            skeleton_evictions: self.skeleton_evictions.load(Ordering::Relaxed),
            solution_evictions: self.solution_evictions.load(Ordering::Relaxed),
            eigen_evictions: self.eigen_evictions.load(Ordering::Relaxed),
            transform_evictions: self.transform_evictions.load(Ordering::Relaxed),
            skeleton_eviction_age: self.skeleton_eviction_age.load(Ordering::Relaxed),
            solution_eviction_age: self.solution_eviction_age.load(Ordering::Relaxed),
            eigen_eviction_age: self.eigen_eviction_age.load(Ordering::Relaxed),
            transform_eviction_age: self.transform_eviction_age.load(Ordering::Relaxed),
            poison_recoveries: self.skeletons.poison_recoveries()
                + self.solutions.poison_recoveries()
                + self.eigensystems.poison_recoveries()
                + self.transforms.poison_recoveries(),
        }
    }

    /// Number of cached entries per level.
    pub fn len(&self) -> CacheOccupancy {
        CacheOccupancy {
            skeletons: self.skeletons.len(),
            solutions: self.solutions.len(),
            eigensystems: self.eigensystems.len(),
            transforms: self.transforms.len(),
        }
    }

    /// Returns `true` if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len().total() == 0
    }

    /// Drops every cached entry; the counters keep accumulating.
    pub fn clear(&self) {
        self.skeletons.clear();
        self.solutions.clear();
        self.eigensystems.clear();
        self.transforms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;
    use crate::solution::QueueSolution as _;
    use crate::spectral::SpectralExpansionSolver;

    fn config(servers: usize, lambda: f64) -> SystemConfig {
        SystemConfig::new(servers, lambda, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap()
    }

    #[test]
    fn skeletons_are_shared_per_lifecycle_and_server_count() {
        let cache = SolverCache::new();
        let first = cache.skeleton(&config(4, 2.0)).unwrap();
        let again = cache.skeleton(&config(4, 3.5)).unwrap(); // same N, µ, lifecycle
        assert!(Arc::ptr_eq(&first, &again), "λ must not affect the skeleton key");
        let other = cache.skeleton(&config(5, 2.0)).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
        let stats = cache.stats();
        assert_eq!((stats.skeleton_hits, stats.skeleton_misses), (1, 2));
        assert_eq!(cache.len().skeletons, 2);
    }

    #[test]
    fn different_lifecycles_get_different_skeletons() {
        let cache = SolverCache::new();
        let a = cache.skeleton(&config(3, 2.0)).unwrap();
        let exp = ServerLifecycle::exponential(0.1, 2.0).unwrap();
        let b = cache.skeleton(&SystemConfig::new(3, 2.0, 1.0, exp).unwrap()).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().skeleton_misses, 2);
    }

    #[test]
    fn solutions_are_memoised_bit_identically() {
        let cache = SolverCache::shared();
        let solver = SpectralExpansionSolver::default().with_cache(Arc::clone(&cache));
        let cfg = config(4, 2.5);
        let fresh = solver.solve_detailed(&cfg).unwrap();
        let cached = solver.solve_detailed(&cfg).unwrap();
        assert_eq!(fresh.mean_queue_length().to_bits(), cached.mean_queue_length().to_bits());
        assert_eq!(fresh.boundary_levels(), cached.boundary_levels());
        let stats = cache.stats();
        assert_eq!(stats.solution_hits, 1);
        assert_eq!(stats.solution_misses, 1);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = SolverCache::new();
        cache.skeleton(&config(3, 1.0)).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_lookups_share_one_skeleton() {
        use crate::parallel::ThreadPool;
        let cache = SolverCache::shared();
        let configs: Vec<SystemConfig> = (1..=8).map(|i| config(6, 0.5 * i as f64)).collect();
        let skeletons =
            ThreadPool::new(4).try_par_map(&configs, |cfg| cache.skeleton(cfg)).unwrap();
        for s in &skeletons {
            assert!(Arc::ptr_eq(s, &skeletons[0]));
        }
        assert_eq!(cache.len().skeletons, 1);
    }

    #[test]
    fn cache_statistics_are_run_to_run_deterministic() {
        // Two independent caches fed the same workload under eviction pressure
        // must report identical statistics and occupancy.  With a hash map this
        // held only by accident of hasher seeding; the ordered map makes
        // eviction order — and so every hit/miss counter — reproducible.
        let workload: Vec<SystemConfig> = [2, 3, 4, 2, 5, 3, 2, 6, 4, 5]
            .iter()
            .map(|&n| config(n, 1.0 + n as f64 / 10.0))
            .collect();
        let run = || {
            let cache = SolverCache::with_capacities(3, 4, 4);
            for cfg in &workload {
                cache.skeleton(cfg).unwrap();
            }
            (cache.stats(), cache.len())
        };
        let (stats_a, len_a) = run();
        let (stats_b, len_b) = run();
        assert_eq!(stats_a, stats_b);
        assert_eq!(len_a, len_b);
    }

    #[test]
    fn signed_zero_normalises_in_keys() {
        assert_eq!(key_bits("x", 0.0).unwrap(), key_bits("x", -0.0).unwrap());
        assert_eq!(key_bits("x", 1.5).unwrap(), 1.5f64.to_bits());
    }

    #[test]
    fn non_finite_key_values_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                key_bits("x", bad),
                Err(ModelError::InvalidParameter { name: "x", .. })
            ));
        }
        // A NaN smuggled in through the solver options must be rejected, not admitted
        // as a key that can never be found again.
        let cache = SolverCache::new();
        let bad_options = SpectralOptions { reality_tolerance: f64::NAN, ..Default::default() };
        assert!(cache.lookup_solution(&config(2, 1.0), &bad_options).is_err());
        assert!(cache.lookup_eigensystem(&config(2, 1.0), f64::NAN).is_err());
    }

    #[test]
    fn lru_evicts_the_least_recently_used_skeleton() {
        // A single shard pins the exact global-LRU eviction order; with several
        // shards the order is only approximate (per shard).
        let cache = SolverCache::with_layout(2, 4, 4, 4, 1);
        let a = config(2, 1.0);
        let b = config(3, 1.0);
        let c = config(4, 1.0);
        cache.skeleton(&a).unwrap();
        cache.skeleton(&b).unwrap();
        cache.skeleton(&a).unwrap(); // A is now more recently used than B
        cache.skeleton(&c).unwrap(); // evicts B
        assert_eq!(cache.len().skeletons, 2);
        assert_eq!(cache.stats().skeleton_evictions, 1);
        // A survives (hit), B was evicted (miss rebuilds it).
        cache.skeleton(&a).unwrap();
        assert_eq!(cache.stats().skeleton_hits, 2);
        cache.skeleton(&b).unwrap();
        assert_eq!(cache.stats().skeleton_misses, 4);
    }

    #[test]
    fn lru_capacity_bounds_the_solution_map() {
        let cache = SolverCache::with_layout(4, 2, 4, 4, 1);
        let options = SpectralOptions::default();
        for lambda in [1.0, 1.25, 1.5, 1.75, 2.0] {
            let cfg = config(3, lambda);
            let solution = SpectralExpansionSolver::default().solve_detailed(&cfg).unwrap();
            cache.store_solution(&cfg, &options, solution).unwrap();
        }
        assert_eq!(cache.len().solutions, 2, "solution map must stay at its capacity");
        assert_eq!(cache.stats().solution_evictions, 3);
    }

    #[test]
    fn heterogeneous_class_lists_key_distinctly() {
        use crate::config::ServerClass;
        let cache = SolverCache::new();
        let lc_a = ServerLifecycle::exponential(0.1, 2.0).unwrap();
        let lc_b = ServerLifecycle::exponential(0.05, 4.0).unwrap();
        let mixed = SystemConfig::heterogeneous(
            1.0,
            vec![
                ServerClass::new(2, 2.0, lc_a.clone()).unwrap(),
                ServerClass::new(2, 1.0, lc_b.clone()).unwrap(),
            ],
        )
        .unwrap();
        // A permutation of the same classes canonicalises to the same key.
        let permuted = SystemConfig::heterogeneous(
            1.0,
            vec![
                ServerClass::new(2, 1.0, lc_b).unwrap(),
                ServerClass::new(2, 2.0, lc_a.clone()).unwrap(),
            ],
        )
        .unwrap();
        let s1 = cache.skeleton(&mixed).unwrap();
        let s2 = cache.skeleton(&permuted).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "permuted class lists must share a skeleton");
        // A genuinely different mix gets its own skeleton.
        let other = SystemConfig::heterogeneous(1.0, vec![ServerClass::new(4, 2.0, lc_a).unwrap()])
            .unwrap();
        let s3 = cache.skeleton(&other).unwrap();
        assert!(!Arc::ptr_eq(&s1, &s3));
    }
    #[test]
    fn shard_assignment_is_deterministic_across_caches() {
        // FNV-1a over the derived Hash bytes must send the same key to the same
        // shard in every process — eviction behaviour and statistics depend on it.
        let configs: Vec<SystemConfig> =
            (2..10).map(|n| config(n, 1.0 + n as f64 * 0.25)).collect();
        let first = SolverCache::with_capacities(4, 8, 8);
        let second = SolverCache::with_capacities(4, 8, 8);
        for cfg in &configs {
            first.skeleton(cfg).unwrap();
            second.skeleton(cfg).unwrap();
        }
        assert_eq!(first.stats(), second.stats());
        assert_eq!(first.len(), second.len());
    }

    #[test]
    fn sharded_capacity_bounds_the_level() {
        // 16 distinct skeleton keys against a capacity-4 level: whatever the shard
        // layout, the level never exceeds its requested capacity by more than the
        // per-shard rounding slack and evictions account for the remainder.
        let cache = SolverCache::with_capacities(4, 64, 64);
        for n in 2..18 {
            cache.skeleton(&config(n, 1.0)).unwrap();
        }
        let stats = cache.stats();
        assert!(cache.len().skeletons <= 4, "requested capacity must bound the level");
        assert_eq!(stats.skeleton_evictions + cache.len().skeletons as u64, 16);
        assert!(stats.skeleton_eviction_age > 0, "evictions must report recency ages");
    }

    #[test]
    fn poisoned_shards_recover_by_clearing() {
        let cache = SolverCache::new();
        let cfg = config(3, 1.0);
        cache.skeleton(&cfg).unwrap();
        assert_eq!(cache.stats().poison_recoveries, 0);
        // Poison the shard holding the key by panicking while its lock is held.
        let index = cache.skeletons.shard_index(&SkeletonKey::new(&cfg).unwrap());
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.skeletons.with_shard_at(index, |_| panic!("worker died mid-update"));
        }));
        assert!(poison.is_err());
        // The next touch recovers: the shard is cleared (cold miss), counted, and
        // the cache keeps serving.
        cache.skeleton(&cfg).unwrap();
        assert_eq!(cache.stats().poison_recoveries, 1);
        assert_eq!(cache.stats().skeleton_misses, 2, "recovered shard restarts cold");
        cache.skeleton(&cfg).unwrap();
        assert_eq!(cache.stats().skeleton_hits, 1, "cache serves normally after recovery");
    }

    #[test]
    fn level_stats_report_hit_rates_and_eviction_ages() {
        let stats = CacheStats {
            skeleton_hits: 3,
            skeleton_misses: 1,
            skeleton_evictions: 2,
            skeleton_eviction_age: 10,
            ..CacheStats::default()
        };
        let levels = stats.levels();
        assert_eq!(levels[0].level, "skeletons");
        assert_eq!(levels[0].lookups(), 4);
        assert_eq!(levels[0].hit_rate().to_bits(), 0.75f64.to_bits());
        assert_eq!(levels[0].mean_eviction_age().to_bits(), 5.0f64.to_bits());
        // Untouched levels divide by zero nowhere.
        assert_eq!(levels[1].hit_rate().to_bits(), 0.0f64.to_bits());
        assert_eq!(levels[1].mean_eviction_age().to_bits(), 0.0f64.to_bits());
        assert_eq!(stats.total_hit_rate().to_bits(), 0.75f64.to_bits());
    }

    #[test]
    fn occupancy_totals_the_levels() {
        let occupancy =
            CacheOccupancy { skeletons: 1, solutions: 2, eigensystems: 3, transforms: 4 };
        assert_eq!(occupancy.total(), 10);
        let cache = SolverCache::new();
        assert!(cache.is_empty());
        cache.skeleton(&config(2, 1.0)).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.len(), CacheOccupancy::default());
    }
}
