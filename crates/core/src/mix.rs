//! Cost-aware optimisation of multi-class fleet compositions.
//!
//! Section 4 of the paper optimises the cost `C = c₁·L + c₂·N` over a *single* number
//! of servers.  Once the fleet may mix [`ServerClass`]es with different speeds,
//! lifecycles and prices (the heterogeneous extension flagged as future work), the
//! decision space becomes the set of *compositions* `(N₁, …, N_k)` and the cost model
//! the per-class [`ClassCostModel`] `C = c₁·L + Σ_j c₂ⱼ·Nⱼ`.  [`MixSearch`] optimises
//! over that space under fleet-size and hardware-budget bounds:
//!
//! * **small spaces** are enumerated exhaustively and every stable composition is
//!   solved exactly by spectral expansion;
//! * **large spaces** are screened first with the cheap [`GeometricApproximation`],
//!   and only the shortlisted candidates — everything within a relative slack band of
//!   the approximate best, bounded by [`MixSearchOptions`] — are verified exactly.
//!   Screening and verification share one [`SolverCache`], so the exact pass reuses
//!   the QBD skeletons and unit-disk eigensystems the approximation already
//!   factorised instead of repeating them.  Screening is a heuristic: the
//!   approximation's error is load-dependent, and a mix whose approximate cost lies
//!   far outside the slack band is never verified — [`MixSearch::run_exhaustive`] is
//!   the exact reference when certainty matters more than time.
//!
//! Candidates are evaluated in parallel on a [`ThreadPool`], and the winner is chosen
//! deterministically: lowest cost, then lowest fleet size, then lexicographically
//! smallest composition.  Compositions whose cost evaluates to NaN or ±∞ are skipped,
//! mirroring [`CostSweep::optimum`](crate::CostSweep::optimum).
//!
//! # Example
//!
//! ```
//! use urs_core::{ClassCostModel, MixBounds, MixSearch, ServerClass, ServerLifecycle};
//!
//! # fn main() -> Result<(), urs_core::ModelError> {
//! // Fast-but-fragile servers (price 1.4) versus steady ones (price 1.0).
//! let fast = ServerClass::new(1, 1.5, ServerLifecycle::exponential(0.1, 2.0)?)?;
//! let steady = ServerClass::new(1, 1.0, ServerLifecycle::exponential(0.01, 5.0)?)?;
//! let cost = ClassCostModel::new(4.0, vec![1.4, 1.0])?;
//! let search = MixSearch::new(1.8, vec![fast, steady], cost, MixBounds::up_to(4)?)?;
//! let result = search.run()?;
//! let best = result.optimum().expect("a stable mix exists");
//! assert_eq!(best.counts().len(), 2);
//! assert!(best.servers() <= 4);
//! # Ok(())
//! # }
//! ```

use std::cmp::Ordering;
use std::sync::Arc;

use crate::approx::GeometricApproximation;
use crate::cache::SolverCache;
use crate::config::{ServerClass, SystemConfig};
use crate::cost::ClassCostModel;
use crate::error::ModelError;
use crate::parallel::ThreadPool;
use crate::solution::QueueSolution as _;
use crate::spectral::SpectralExpansionSolver;
use crate::Result;

/// Feasibility bounds of a mix search: fleet-size limits and an optional hardware
/// budget `Σ_j c₂ⱼ·Nⱼ ≤ budget`.
#[derive(Debug, Clone, PartialEq)]
pub struct MixBounds {
    min_servers: usize,
    max_servers: usize,
    budget: Option<f64>,
}

impl MixBounds {
    /// Bounds allowing every composition with `1 ..= max_servers` servers in total
    /// and no budget constraint.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `max_servers == 0`.
    pub fn up_to(max_servers: usize) -> Result<Self> {
        if max_servers == 0 {
            return Err(ModelError::InvalidParameter {
                name: "max_servers",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        Ok(MixBounds { min_servers: 1, max_servers, budget: None })
    }

    /// Raises the minimum total fleet size (useful when small fleets are known to be
    /// unstable and should not even be enumerated).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `min_servers` is zero or exceeds
    /// the maximum.
    pub fn with_min_servers(mut self, min_servers: usize) -> Result<Self> {
        if min_servers == 0 || min_servers > self.max_servers {
            return Err(ModelError::InvalidParameter {
                name: "min_servers",
                value: min_servers as f64,
                constraint: "must lie in 1 ..= max_servers",
            });
        }
        self.min_servers = min_servers;
        Ok(self)
    }

    /// Adds a hardware-budget constraint: only compositions whose provisioning cost
    /// [`ClassCostModel::fleet_cost`] stays within `budget` are considered.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `budget` is not positive and
    /// finite.
    pub fn with_budget(mut self, budget: f64) -> Result<Self> {
        if !(budget.is_finite() && budget > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "budget",
                value: budget,
                constraint: "must be finite and positive",
            });
        }
        self.budget = Some(budget);
        Ok(self)
    }

    /// Smallest admissible total fleet size.
    pub fn min_servers(&self) -> usize {
        self.min_servers
    }

    /// Largest admissible total fleet size.
    pub fn max_servers(&self) -> usize {
        self.max_servers
    }

    /// The hardware budget, if any.
    pub fn budget(&self) -> Option<f64> {
        self.budget
    }
}

/// Tuning knobs of a [`MixSearch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixSearchOptions {
    /// Feasible spaces of at most this many compositions are solved exactly in full;
    /// larger spaces go through approximation screening.  Setting this to 0 forces
    /// screening even for tiny spaces (used by the equivalence tests).
    pub exhaustive_limit: usize,
    /// Minimum number of screened candidates verified exactly (clamped to at least 1).
    pub screen_top_k: usize,
    /// Relative width of the verification band: every candidate whose *approximate*
    /// cost lies within `(1 + screen_slack)` of the approximate best is shortlisted
    /// for exact verification (up to [`screen_max_verified`](Self::screen_max_verified)).
    /// The approximation mis-ranks near-ties — its error is load-dependent, so two
    /// mixes a few percent apart in approximate cost can swap places exactly — and a
    /// fixed top-k cut would drop the true optimum in exactly those cases.  Negative
    /// values are treated as 0.
    pub screen_slack: f64,
    /// Upper bound on the number of exactly verified candidates, so a wide slack band
    /// on a huge space cannot degenerate into an accidental exhaustive pass.
    pub screen_max_verified: usize,
    /// Hard cap on the enumerated space: searches whose bounds admit more
    /// compositions fail fast instead of grinding through an unintended explosion.
    pub max_candidates: usize,
}

impl Default for MixSearchOptions {
    fn default() -> Self {
        MixSearchOptions {
            exhaustive_limit: 256,
            screen_top_k: 8,
            screen_slack: 0.25,
            screen_max_verified: 32,
            max_candidates: 50_000,
        }
    }
}

/// One fully evaluated composition: per-class server counts (aligned with the class
/// order given to [`MixSearch::new`]), the exact mean queue length and the cost.
#[derive(Debug, Clone, PartialEq)]
pub struct MixCandidate {
    counts: Vec<usize>,
    mean_queue_length: f64,
    cost: f64,
}

impl MixCandidate {
    /// Per-class server counts, aligned with the classes passed to the search.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total fleet size `Σ_j Nⱼ`.
    pub fn servers(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Mean number of jobs in the system for this composition.
    pub fn mean_queue_length(&self) -> f64 {
        self.mean_queue_length
    }

    /// Total cost `c₁·L + Σ_j c₂ⱼ·Nⱼ`.
    pub fn cost(&self) -> f64 {
        self.cost
    }
}

/// Deterministic candidate ranking: lowest cost first, ties broken by the smaller
/// fleet, then by the lexicographically smaller composition.
fn candidate_order(a: &MixCandidate, b: &MixCandidate) -> Ordering {
    a.cost
        .total_cmp(&b.cost)
        .then_with(|| a.servers().cmp(&b.servers()))
        .then_with(|| a.counts.cmp(&b.counts))
}

/// The outcome of a [`MixSearch`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSearchResult {
    evaluated: Vec<MixCandidate>,
    candidates: usize,
    screened: bool,
    skipped_unstable: usize,
    skipped_non_finite: usize,
    dropped_failures: usize,
}

impl MixSearchResult {
    /// The optimal composition, if any feasible composition was stable and finite.
    pub fn optimum(&self) -> Option<&MixCandidate> {
        self.evaluated.first()
    }

    /// Every exactly evaluated composition, best first.  The exhaustive path ranks
    /// the whole feasible space; the screened path ranks the verified `top_k`.
    pub fn ranked(&self) -> &[MixCandidate] {
        &self.evaluated
    }

    /// Number of feasible compositions the bounds admitted.
    pub fn candidates(&self) -> usize {
        self.candidates
    }

    /// `true` when the approximation-screening path was taken, `false` when every
    /// feasible composition was solved exactly.
    pub fn was_screened(&self) -> bool {
        self.screened
    }

    /// Compositions skipped because the queue would be unstable.
    pub fn skipped_unstable(&self) -> usize {
        self.skipped_unstable
    }

    /// Compositions skipped because their cost evaluated to NaN or ±∞.
    pub fn skipped_non_finite(&self) -> usize {
        self.skipped_non_finite
    }

    /// Compositions dropped because a solver failed numerically on them (the search
    /// continues with the remaining candidates rather than failing outright).
    pub fn dropped_failures(&self) -> usize {
        self.dropped_failures
    }
}

/// How a single composition fared during an evaluation pass.
enum Outcome {
    Evaluated(MixCandidate),
    Unstable,
    NonFinite,
    Failed,
}

/// A cost-aware search over multi-class fleet compositions — see the
/// [module docs](self) for the search strategy.
#[derive(Debug, Clone)]
pub struct MixSearch {
    arrival_rate: f64,
    classes: Vec<ServerClass>,
    cost_model: ClassCostModel,
    bounds: MixBounds,
    options: MixSearchOptions,
    cache: Option<Arc<SolverCache>>,
}

impl MixSearch {
    /// Creates a search over compositions of the given classes.  The `count` fields
    /// of the template classes are ignored — the search assigns counts — and the
    /// `cost_model` prices class `j` of `classes` with its `j`-th server cost, so the
    /// two must have the same arity.  Candidate count vectors (and
    /// [`MixCandidate::counts`]) are aligned with `classes` in the order given here.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `classes` is empty, the cost
    /// model prices a different number of classes, or the arrival rate is not
    /// positive and finite.
    pub fn new(
        arrival_rate: f64,
        classes: Vec<ServerClass>,
        cost_model: ClassCostModel,
        bounds: MixBounds,
    ) -> Result<Self> {
        if classes.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "classes",
                value: 0.0,
                constraint: "at least one server class is required",
            });
        }
        if cost_model.classes() != classes.len() {
            return Err(ModelError::InvalidParameter {
                name: "server_costs",
                value: cost_model.classes() as f64,
                constraint: "the cost model must price exactly one cost per class",
            });
        }
        if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "arrival_rate",
                value: arrival_rate,
                constraint: "must be finite and positive",
            });
        }
        Ok(MixSearch {
            arrival_rate,
            classes,
            cost_model,
            bounds,
            options: Default::default(),
            cache: None,
        })
    }

    /// Replaces the default [`MixSearchOptions`].
    pub fn with_options(mut self, options: MixSearchOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches an external [`SolverCache`] (shared with other analyses); by default
    /// each run creates a private cache sized to the candidate space.
    pub fn with_cache(mut self, cache: Arc<SolverCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The template classes, in the order candidate counts refer to them.
    pub fn classes(&self) -> &[ServerClass] {
        &self.classes
    }

    /// The per-class cost model in use.
    pub fn cost_model(&self) -> &ClassCostModel {
        &self.cost_model
    }

    /// Enumerates every feasible composition in deterministic (lexicographic) order:
    /// all `(N₁, …, N_k)` with `min_servers ≤ ΣNⱼ ≤ max_servers` that fit the budget.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when the space exceeds
    /// [`MixSearchOptions::max_candidates`].
    pub fn candidate_mixes(&self) -> Result<Vec<Vec<usize>>> {
        let mut mixes = Vec::new();
        let mut current = vec![0usize; self.classes.len()];
        self.enumerate(0, 0, 0.0, &mut current, &mut mixes)?;
        Ok(mixes)
    }

    fn enumerate(
        &self,
        class: usize,
        used: usize,
        spent: f64,
        current: &mut Vec<usize>,
        mixes: &mut Vec<Vec<usize>>,
    ) -> Result<()> {
        if class == self.classes.len() {
            if used >= self.bounds.min_servers {
                if mixes.len() >= self.options.max_candidates {
                    return Err(ModelError::InvalidParameter {
                        name: "max_candidates",
                        value: self.options.max_candidates as f64,
                        constraint: "the mix space exceeds max_candidates; tighten the \
                                     bounds or raise the option",
                    });
                }
                mixes.push(current.clone());
            }
            return Ok(());
        }
        let price = self
            .cost_model
            .server_costs()
            .get(class)
            .copied()
            .ok_or(ModelError::Internal("mix enumeration visited a class without a price"))?;
        for count in 0..=(self.bounds.max_servers - used) {
            let cost = spent + price * count as f64;
            if let Some(budget) = self.bounds.budget {
                if cost > budget {
                    // Prices can be zero or negative in principle, so keep scanning
                    // the full count range instead of breaking at the first overrun.
                    continue;
                }
            }
            if let Some(slot) = current.get_mut(class) {
                *slot = count;
            }
            self.enumerate(class + 1, used + count, cost, current, mixes)?;
        }
        if let Some(slot) = current.get_mut(class) {
            *slot = 0;
        }
        Ok(())
    }

    /// Builds the [`SystemConfig`] of one composition.
    fn config_for(&self, counts: &[usize]) -> Result<SystemConfig> {
        let classes = self
            .classes
            .iter()
            .zip(counts)
            .filter(|(_, &count)| count > 0)
            .map(|(class, &count)| class.with_count(count))
            .collect::<Result<Vec<_>>>()?;
        SystemConfig::heterogeneous(self.arrival_rate, classes)
    }

    /// Evaluates one composition with the given solver, classifying numeric solver
    /// failures as droppable instead of fatal (an ill-conditioned candidate must not
    /// sink the whole search).
    fn evaluate(
        &self,
        counts: &[usize],
        solve: &dyn Fn(&SystemConfig) -> Result<f64>,
    ) -> Result<Outcome> {
        let config = self.config_for(counts)?;
        if !config.is_stable() {
            return Ok(Outcome::Unstable);
        }
        let mean_queue_length = match solve(&config) {
            Ok(l) => l,
            Err(
                ModelError::SpectralFailure(_)
                | ModelError::NoConvergence { .. }
                | ModelError::Linalg(_),
            ) => return Ok(Outcome::Failed),
            Err(e) => return Err(e),
        };
        let cost = self.cost_model.evaluate(mean_queue_length, counts);
        if !cost.is_finite() {
            return Ok(Outcome::NonFinite);
        }
        Ok(Outcome::Evaluated(MixCandidate { counts: counts.to_vec(), mean_queue_length, cost }))
    }

    /// Runs the search on the default [`ThreadPool`].
    ///
    /// # Errors
    ///
    /// Propagates enumeration-cap and non-numeric solver errors.
    pub fn run(&self) -> Result<MixSearchResult> {
        self.run_with(&ThreadPool::default())
    }

    /// Runs the search on an explicit pool, choosing the exhaustive or the screened
    /// path by comparing the space against [`MixSearchOptions::exhaustive_limit`].
    ///
    /// # Errors
    ///
    /// Propagates enumeration-cap and non-numeric solver errors.
    pub fn run_with(&self, pool: &ThreadPool) -> Result<MixSearchResult> {
        let mixes = self.candidate_mixes()?;
        if mixes.len() <= self.options.exhaustive_limit {
            return self.run_exhaustive_on(pool, mixes);
        }
        self.run_screened_on(pool, mixes)
    }

    /// Forces the all-exact path regardless of the space size (the reference the
    /// screened path is validated against), on the default pool.
    ///
    /// # Errors
    ///
    /// Propagates enumeration-cap and non-numeric solver errors.
    pub fn run_exhaustive(&self) -> Result<MixSearchResult> {
        self.run_exhaustive_with(&ThreadPool::default())
    }

    /// [`run_exhaustive`](Self::run_exhaustive) with an explicit worker pool.
    ///
    /// # Errors
    ///
    /// Propagates enumeration-cap and non-numeric solver errors.
    pub fn run_exhaustive_with(&self, pool: &ThreadPool) -> Result<MixSearchResult> {
        let mixes = self.candidate_mixes()?;
        self.run_exhaustive_on(pool, mixes)
    }

    /// How many of the approximately ranked candidates to verify exactly: everything
    /// inside the relative `screen_slack` band above the approximate best, but at
    /// least `screen_top_k` and at most `screen_max_verified`.
    fn shortlist_len(&self, ranked: &[MixCandidate]) -> usize {
        let Some(best) = ranked.first() else { return 0 };
        let cutoff = best.cost + self.options.screen_slack.max(0.0) * best.cost.abs();
        let qualified = ranked.iter().take_while(|c| c.cost <= cutoff).count();
        let floor = self.options.screen_top_k.max(1).min(ranked.len());
        let ceiling = self.options.screen_max_verified.max(floor);
        qualified.clamp(floor, ceiling)
    }

    /// A cache for one run: the attached one, or a private cache whose skeleton and
    /// eigensystem capacities cover the candidate space, so the exact verification
    /// pass still finds what the screening pass factorised.
    fn run_cache(&self, candidates: usize) -> Arc<SolverCache> {
        match &self.cache {
            Some(cache) => Arc::clone(cache),
            None => {
                let capacity = candidates.clamp(64, 4096);
                Arc::new(SolverCache::with_capacities(capacity, capacity, capacity))
            }
        }
    }

    fn run_exhaustive_on(
        &self,
        pool: &ThreadPool,
        mixes: Vec<Vec<usize>>,
    ) -> Result<MixSearchResult> {
        // Distinct compositions have distinct cache keys, so within one exhaustive
        // run the cache only hits when duplicate template classes make two count
        // vectors describe the same fleet — those solves then cost one lookup
        // instead of a repeat.  The per-solve lookup overhead is a few mutex
        // acquisitions against solves that cost milliseconds.
        let cache = self.run_cache(mixes.len());
        let solver = SpectralExpansionSolver::default().with_cache(cache);
        let solve = |config: &SystemConfig| -> Result<f64> {
            Ok(solver.solve_detailed(config)?.mean_queue_length())
        };
        let outcomes = pool.try_par_map(&mixes, |counts| self.evaluate(counts, &solve))?;
        Ok(assemble(outcomes, mixes.len(), false, None))
    }

    fn run_screened_on(
        &self,
        pool: &ThreadPool,
        mixes: Vec<Vec<usize>>,
    ) -> Result<MixSearchResult> {
        let cache = self.run_cache(mixes.len());
        // Screening: rank every feasible composition with the cheap approximation.
        let approx = GeometricApproximation::default().with_cache(Arc::clone(&cache));
        let screen = |config: &SystemConfig| -> Result<f64> {
            Ok(approx.solve_detailed(config)?.mean_queue_length())
        };
        let outcomes = pool.try_par_map(&mixes, |counts| self.evaluate(counts, &screen))?;
        let mut screening = MixSearchResult {
            evaluated: Vec::new(),
            candidates: mixes.len(),
            screened: true,
            skipped_unstable: 0,
            skipped_non_finite: 0,
            dropped_failures: 0,
        };
        let mut ranked: Vec<MixCandidate> = Vec::new();
        for outcome in outcomes {
            match outcome {
                Outcome::Evaluated(candidate) => ranked.push(candidate),
                Outcome::Unstable => screening.skipped_unstable += 1,
                Outcome::NonFinite => screening.skipped_non_finite += 1,
                Outcome::Failed => screening.dropped_failures += 1,
            }
        }
        ranked.sort_by(candidate_order);
        ranked.truncate(self.shortlist_len(&ranked));

        // Verification: solve the shortlisted compositions exactly.  The shared
        // cache hands the spectral solver the skeletons and eigensystems the
        // screening pass already built for exactly these configurations.
        let solver = SpectralExpansionSolver::default().with_cache(cache);
        let solve = |config: &SystemConfig| -> Result<f64> {
            Ok(solver.solve_detailed(config)?.mean_queue_length())
        };
        let shortlist: Vec<Vec<usize>> = ranked.into_iter().map(|c| c.counts).collect();
        let outcomes = pool.try_par_map(&shortlist, |counts| self.evaluate(counts, &solve))?;
        Ok(assemble(outcomes, mixes.len(), true, Some(screening)))
    }
}

/// Folds evaluation outcomes into a sorted result, merging the counters of an
/// earlier screening pass when one happened.
fn assemble(
    outcomes: Vec<Outcome>,
    candidates: usize,
    screened: bool,
    screening: Option<MixSearchResult>,
) -> MixSearchResult {
    let mut result = screening.unwrap_or_else(|| MixSearchResult {
        evaluated: Vec::new(),
        candidates,
        screened,
        skipped_unstable: 0,
        skipped_non_finite: 0,
        dropped_failures: 0,
    });
    for outcome in outcomes {
        match outcome {
            Outcome::Evaluated(candidate) => result.evaluated.push(candidate),
            Outcome::Unstable => result.skipped_unstable += 1,
            Outcome::NonFinite => result.skipped_non_finite += 1,
            Outcome::Failed => result.dropped_failures += 1,
        }
    }
    result.evaluated.sort_by(candidate_order);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;

    fn two_class_search(max: usize) -> MixSearch {
        let fast =
            ServerClass::new(1, 1.5, ServerLifecycle::exponential(0.1, 2.0).unwrap()).unwrap();
        let steady =
            ServerClass::new(1, 1.0, ServerLifecycle::exponential(0.01, 5.0).unwrap()).unwrap();
        MixSearch::new(
            1.8,
            vec![fast, steady],
            ClassCostModel::new(4.0, vec![1.4, 1.0]).unwrap(),
            MixBounds::up_to(max).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn enumeration_is_lexicographic_and_bounded() {
        let search = two_class_search(3);
        let mixes = search.candidate_mixes().unwrap();
        // Compositions with 1 <= n1 + n2 <= 3: C(5,2) - 1 = 9.
        assert_eq!(mixes.len(), 9);
        assert_eq!(mixes.first().unwrap(), &vec![0, 1]);
        assert_eq!(mixes.last().unwrap(), &vec![3, 0]);
        let mut sorted = mixes.clone();
        sorted.sort();
        assert_eq!(mixes, sorted, "enumeration must already be lexicographic");
    }

    #[test]
    fn budget_and_min_bounds_prune_the_space() {
        let search = two_class_search(3);
        let bounded = MixSearch {
            bounds: MixBounds::up_to(3)
                .unwrap()
                .with_min_servers(2)
                .unwrap()
                .with_budget(2.9)
                .unwrap(),
            ..search
        };
        let mixes = bounded.candidate_mixes().unwrap();
        // Admissible: 2 <= n1 + n2 <= 3 and 1.4·n1 + n2 <= 2.9, i.e. (0,2), (1,1)
        // and (2,0) — e.g. (0,3) costs 3.0 and (1,2) costs 3.4, both over budget.
        assert_eq!(mixes, vec![vec![0, 2], vec![1, 1], vec![2, 0]]);
    }

    #[test]
    fn candidate_cap_fails_fast() {
        let search = two_class_search(40)
            .with_options(MixSearchOptions { max_candidates: 10, ..Default::default() });
        assert!(matches!(
            search.candidate_mixes(),
            Err(ModelError::InvalidParameter { name: "max_candidates", .. })
        ));
    }

    #[test]
    fn validation_rejects_mismatched_arities() {
        let fast =
            ServerClass::new(1, 1.5, ServerLifecycle::exponential(0.1, 2.0).unwrap()).unwrap();
        let cost = ClassCostModel::new(4.0, vec![1.0, 1.0]).unwrap();
        assert!(MixSearch::new(
            1.0,
            vec![fast.clone()],
            cost.clone(),
            MixBounds::up_to(3).unwrap()
        )
        .is_err());
        assert!(MixSearch::new(
            1.0,
            vec![],
            ClassCostModel::new(4.0, vec![1.0]).unwrap(),
            MixBounds::up_to(3).unwrap()
        )
        .is_err());
        assert!(MixSearch::new(
            f64::NAN,
            vec![fast],
            ClassCostModel::new(4.0, vec![1.0]).unwrap(),
            MixBounds::up_to(3).unwrap()
        )
        .is_err());
        assert!(MixBounds::up_to(0).is_err());
        assert!(MixBounds::up_to(3).unwrap().with_min_servers(4).is_err());
        assert!(MixBounds::up_to(3).unwrap().with_budget(f64::NAN).is_err());
    }

    #[test]
    fn deterministic_tie_breaking_prefers_small_lexicographic_mixes() {
        let a = MixCandidate { counts: vec![1, 2], mean_queue_length: 1.0, cost: 5.0 };
        let smaller_fleet = MixCandidate { counts: vec![2, 0], mean_queue_length: 2.0, cost: 5.0 };
        let lex_smaller = MixCandidate { counts: vec![0, 3], mean_queue_length: 2.0, cost: 5.0 };
        assert_eq!(candidate_order(&smaller_fleet, &a), Ordering::Less);
        assert_eq!(candidate_order(&lex_smaller, &a), Ordering::Less);
        assert_eq!(
            candidate_order(
                &MixCandidate { counts: vec![9, 9], mean_queue_length: 0.0, cost: 4.9 },
                &smaller_fleet
            ),
            Ordering::Less,
            "cost dominates the tie-breakers"
        );
    }

    #[test]
    fn shortlist_widens_with_the_slack_band_but_stays_capped() {
        let search = two_class_search(3).with_options(MixSearchOptions {
            screen_top_k: 2,
            screen_slack: 0.5,
            screen_max_verified: 4,
            ..Default::default()
        });
        let candidate =
            |cost: f64| MixCandidate { counts: vec![1, 0], mean_queue_length: 0.0, cost };
        // Costs 10, 12, 14, 16, 18: slack 0.5 admits <= 15, i.e. 3 candidates.
        let ranked: Vec<MixCandidate> = [10.0, 12.0, 14.0, 16.0, 18.0].map(candidate).to_vec();
        assert_eq!(search.shortlist_len(&ranked), 3);
        // The floor applies when the band is narrow …
        let narrow = MixSearch {
            options: MixSearchOptions { screen_slack: 0.0, ..search.options },
            ..search.clone()
        };
        assert_eq!(narrow.shortlist_len(&ranked), 2);
        // … and the cap when it is wide.
        let wide = MixSearch {
            options: MixSearchOptions { screen_slack: 10.0, ..search.options },
            ..search.clone()
        };
        assert_eq!(wide.shortlist_len(&ranked), 4);
        assert_eq!(search.shortlist_len(&[]), 0);
    }

    #[test]
    fn small_space_runs_exhaustively_and_finds_a_stable_optimum() {
        let search = two_class_search(4);
        let result = search.run().unwrap();
        assert!(!result.was_screened());
        assert_eq!(
            result.candidates(),
            14, // compositions with 1 <= total <= 4
        );
        let best = result.optimum().expect("stable mixes exist");
        assert!(best.servers() >= 2, "λ = 1.8 needs at least two unit-rate servers");
        assert!(best.cost().is_finite());
        // The ranking is consistent: best-first by the deterministic order.
        for pair in result.ranked().windows(2) {
            assert_ne!(candidate_order(&pair[0], &pair[1]), Ordering::Greater);
        }
        // Unstable small fleets were skipped, not evaluated.
        assert!(result.skipped_unstable() > 0);
        assert_eq!(
            result.evaluated.len() + result.skipped_unstable(),
            result.candidates(),
            "every candidate is either evaluated or skipped as unstable"
        );
    }
}
