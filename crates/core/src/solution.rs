//! The common interface exposed by every solution method.
//!
//! The paper computes the same performance measures from the exact spectral expansion,
//! from the geometric approximation and (implicitly, for validation) from simulation:
//! the queue-length distribution, its mean `L`, the mean response time `W = L/λ`
//! (Little's law) and derived cost metrics.  The [`QueueSolution`] trait captures those
//! measures so that the cost-optimisation and provisioning helpers can work with any
//! solver, and [`QueueSolver`] abstracts over the solution methods themselves.

use std::fmt;

use crate::config::SystemConfig;
use crate::Result;

/// A steady-state solution of the multi-server breakdown queue.
///
/// Implementations expose the joint distribution of (operational mode, queue length)
/// and the derived performance measures.  All probabilities refer to the stationary
/// regime.
pub trait QueueSolution: fmt::Debug {
    /// Number of operational modes `s` of the underlying environment.
    fn mode_count(&self) -> usize;

    /// Arrival rate `λ` of the solved configuration (needed for Little's law).
    fn arrival_rate(&self) -> f64;

    /// Joint stationary probability of being in operational mode `mode` with `level`
    /// jobs in the system.
    fn state_probability(&self, mode: usize, level: usize) -> f64;

    /// Marginal probability of `level` jobs in the system.
    fn level_probability(&self, level: usize) -> f64 {
        (0..self.mode_count()).map(|i| self.state_probability(i, level)).sum()
    }

    /// Marginal distribution over the operational modes.
    fn mode_marginal(&self) -> Vec<f64>;

    /// Mean number of jobs in the system, `L`.
    fn mean_queue_length(&self) -> f64;

    /// Probability that the number of jobs exceeds `level`, `P(Z > level)`.
    fn tail_probability(&self, level: usize) -> f64;

    /// Mean response time `W = L/λ` (Little's law).
    fn mean_response_time(&self) -> f64 {
        self.mean_queue_length() / self.arrival_rate()
    }

    /// The queue-length distribution up to and including `max_level`.
    fn queue_length_distribution(&self, max_level: usize) -> Vec<f64> {
        (0..=max_level).map(|j| self.level_probability(j)).collect()
    }

    /// The probability that the system is empty.
    fn empty_probability(&self) -> f64 {
        self.level_probability(0)
    }

    /// The joint (level, mode) distribution truncated so the remaining tail mass is at
    /// most `epsilon`, together with the actual residual mass beyond the truncation.
    ///
    /// By the PASTA property this is exactly the distribution of the state an arriving
    /// (Poisson) customer finds, which is what the response-time analysis of
    /// [`response`](crate::response) conditions on.  Entry `[level][mode]` of the
    /// returned vector is `P(mode, level)`; levels are truncated at the first level
    /// `J ≥ min_levels − 1` with `P(Z > J) ≤ epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoConvergence`](crate::ModelError::NoConvergence) when the
    /// tail does not drop below `epsilon` within a very large number of levels (which
    /// indicates a near-unstable configuration or an `epsilon` below the solution's own
    /// accuracy).
    fn arrival_state_distribution(
        &self,
        epsilon: f64,
        min_levels: usize,
    ) -> Result<(Vec<Vec<f64>>, f64)> {
        const MAX_LEVELS: usize = 1_000_000;
        let modes = self.mode_count();
        let mut levels = Vec::new();
        let mut residual = 1.0;
        for level in 0..MAX_LEVELS {
            levels.push((0..modes).map(|m| self.state_probability(m, level)).collect());
            residual = self.tail_probability(level);
            if level + 1 >= min_levels && residual <= epsilon {
                return Ok((levels, residual.max(0.0)));
            }
        }
        let _ = residual;
        Err(crate::ModelError::NoConvergence {
            algorithm: "arrival-state tail truncation",
            iterations: MAX_LEVELS,
        })
    }
}

/// A method that produces a [`QueueSolution`] from a [`SystemConfig`].
///
/// The three analytic methods of the paper ([`SpectralExpansionSolver`],
/// [`GeometricApproximation`], and the matrix-geometric cross-check
/// [`MatrixGeometricSolver`]) all implement this trait, as does the brute-force
/// [`TruncatedCtmcSolver`]; higher-level analyses (cost optimisation, capacity
/// planning) accept `&dyn QueueSolver` so the method can be swapped freely.
///
/// Solvers are required to be `Send + Sync`: the sweep helpers hand one `&dyn
/// QueueSolver` to every worker thread of a [`ThreadPool`](crate::ThreadPool), so
/// solving must be safe to invoke concurrently.  All solvers in this crate are either
/// stateless option structs or share only a thread-safe [`SolverCache`](crate::SolverCache).
///
/// [`SpectralExpansionSolver`]: crate::SpectralExpansionSolver
/// [`GeometricApproximation`]: crate::GeometricApproximation
/// [`MatrixGeometricSolver`]: crate::MatrixGeometricSolver
/// [`TruncatedCtmcSolver`]: crate::TruncatedCtmcSolver
pub trait QueueSolver: fmt::Debug + Send + Sync {
    /// Human-readable name of the method (used in reports and experiment output).
    fn name(&self) -> &'static str;

    /// Solves the model for the given configuration.
    ///
    /// # Errors
    ///
    /// Implementations return [`ModelError::Unstable`](crate::ModelError::Unstable) for
    /// non-ergodic configurations and method-specific failures otherwise.
    fn solve(&self, config: &SystemConfig) -> Result<Box<dyn QueueSolution>>;
}

/// Verifies the elementary consistency properties that every solution must satisfy;
/// intended for tests and debug assertions.  Returns a list of human-readable
/// violations (empty when the solution looks sane).
pub fn consistency_violations(
    solution: &dyn QueueSolution,
    levels_to_check: usize,
    tol: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let marginal = solution.mode_marginal();
    if marginal.len() != solution.mode_count() {
        violations.push(format!(
            "mode marginal has {} entries for {} modes",
            marginal.len(),
            solution.mode_count()
        ));
    }
    let total_mode: f64 = marginal.iter().sum();
    if (total_mode - 1.0).abs() > tol {
        violations.push(format!("mode marginal sums to {total_mode}, expected 1"));
    }
    for (i, p) in marginal.iter().enumerate() {
        if *p < -tol {
            violations.push(format!("mode {i} has negative probability {p}"));
        }
    }
    let mut acc = 0.0;
    for j in 0..levels_to_check {
        let p = solution.level_probability(j);
        if p < -tol {
            violations.push(format!("level {j} has negative probability {p}"));
        }
        acc += p;
        let tail = solution.tail_probability(j);
        if (acc + tail - 1.0).abs() > 10.0 * tol {
            violations.push(format!("P(Z ≤ {j}) + P(Z > {j}) = {} differs from 1", acc + tail));
        }
    }
    if solution.mean_queue_length() < -tol {
        violations.push(format!("negative mean queue length {}", solution.mean_queue_length()));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built geometric "solution" used to exercise the default methods.
    #[derive(Debug)]
    struct GeometricToy {
        rho: f64,
    }

    impl QueueSolution for GeometricToy {
        fn mode_count(&self) -> usize {
            1
        }
        fn arrival_rate(&self) -> f64 {
            self.rho
        }
        fn state_probability(&self, _mode: usize, level: usize) -> f64 {
            (1.0 - self.rho) * self.rho.powi(level as i32)
        }
        fn mode_marginal(&self) -> Vec<f64> {
            vec![1.0]
        }
        fn mean_queue_length(&self) -> f64 {
            self.rho / (1.0 - self.rho)
        }
        fn tail_probability(&self, level: usize) -> f64 {
            self.rho.powi(level as i32 + 1)
        }
    }

    #[test]
    fn default_methods_are_consistent_for_a_geometric_queue() {
        let toy = GeometricToy { rho: 0.5 };
        assert!((toy.level_probability(0) - 0.5).abs() < 1e-15);
        assert!((toy.empty_probability() - 0.5).abs() < 1e-15);
        // M/M/1-like: W = L/λ = (ρ/(1-ρ))/ρ = 1/(1-ρ) = 2.
        assert!((toy.mean_response_time() - 2.0).abs() < 1e-15);
        let dist = toy.queue_length_distribution(10);
        assert_eq!(dist.len(), 11);
        assert!((dist.iter().sum::<f64>() + toy.tail_probability(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arrival_state_distribution_truncates_at_requested_tail_mass() {
        let toy = GeometricToy { rho: 0.5 };
        let (levels, residual) = toy.arrival_state_distribution(1e-6, 1).unwrap();
        // 0.5^{J+1} first drops to 1e-6 at J = 19, so exactly 20 levels are kept.
        assert_eq!(levels.len(), 20);
        assert!(residual <= 1e-6);
        let total: f64 = levels.iter().flatten().sum::<f64>() + residual;
        assert!((total - 1.0).abs() < 1e-12);
        // The minimum-level floor is honoured even when the tail is already small.
        let (padded, _) = toy.arrival_state_distribution(1e-6, 30).unwrap();
        assert_eq!(padded.len(), 30);
    }

    #[test]
    fn consistency_checker_accepts_good_and_flags_bad() {
        let good = GeometricToy { rho: 0.3 };
        assert!(consistency_violations(&good, 20, 1e-9).is_empty());

        #[derive(Debug)]
        struct Broken;
        impl QueueSolution for Broken {
            fn mode_count(&self) -> usize {
                1
            }
            fn arrival_rate(&self) -> f64 {
                1.0
            }
            fn state_probability(&self, _m: usize, _l: usize) -> f64 {
                -0.1
            }
            fn mode_marginal(&self) -> Vec<f64> {
                vec![0.5]
            }
            fn mean_queue_length(&self) -> f64 {
                -1.0
            }
            fn tail_probability(&self, _level: usize) -> f64 {
                2.0
            }
        }
        let violations = consistency_violations(&Broken, 3, 1e-9);
        assert!(violations.len() >= 3, "violations: {violations:?}");
    }
}
