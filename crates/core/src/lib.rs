//! Analytical evaluation of multi-server systems with unreliable servers.
//!
//! This crate implements the modelling contribution of Palmer & Mitrani, *Empirical and
//! Analytical Evaluation of Systems with Multiple Unreliable Servers* (DSN 2006): an
//! M/M/N queue whose servers alternate between hyperexponentially distributed operative
//! periods and hyperexponentially distributed inoperative periods, modelled as a
//! Markov-modulated queue and solved
//!
//! * **exactly**, by the method of spectral expansion ([`SpectralExpansionSolver`]),
//! * **approximately**, by the heavy-traffic geometric approximation
//!   ([`GeometricApproximation`]),
//! * and, as independent cross-checks, by the matrix-geometric method
//!   ([`MatrixGeometricSolver`]) and by brute-force solution of a truncated chain
//!   ([`TruncatedCtmcSolver`]).
//!
//! On top of the solvers sit the analyses of the paper's Section 4: the cost model
//! `C = c₁L + c₂N` and its optimisation over the number of servers ([`CostSweep`]),
//! capacity planning ([`ProvisioningSweep`]), the sensitivity sweeps behind
//! Figures 6–8 ([`sweeps`]), and the per-class cost model ([`ClassCostModel`]) with
//! the fleet-mix optimiser built on it ([`mix::MixSearch`]).
//!
//! The model also implements the extension the paper flags as future work:
//! **heterogeneous server classes**.  [`SystemConfig::heterogeneous`] partitions the
//! fleet into [`ServerClass`]es with distinct service rates and lifecycles, the mode
//! space becomes the per-class product ([`ModeSpace::for_classes`]), jobs go to the
//! fastest operative servers first, and every solver above handles the extended model
//! unchanged — with equal-parameter classes collapsing to the homogeneous path bit
//! for bit.
//!
//! # Paper map
//!
//! | Paper section | Module |
//! |---|---|
//! | §3 state space (modes, eq. 12) | [`ModeSpace`] |
//! | §3.1 QBD generator blocks | [`QbdMatrices`], [`QbdSkeleton`] |
//! | §3.1 spectral expansion (exact) | [`SpectralExpansionSolver`] |
//! | §3.2 heavy-traffic geometric approximation | [`GeometricApproximation`] |
//! | §4 cost model (eq. 22) and Figure 5 | [`CostModel`], [`CostSweep`] |
//! | Figures 6–8 sensitivity sweeps | [`sweeps`] |
//! | Figure 9 capacity planning | [`ProvisioningSweep`] |
//! | §5 open problem: response-time *distribution* | [`response`] ([`ResponseAnalysis`], [`sweeps::percentile_vs_servers`]) |
//! | §6 future work: distinct server classes | [`ServerClass`], [`SystemConfig::heterogeneous`], [`ModeSpace::for_classes`], [`QbdSkeleton::for_classes`] |
//! | §6 future work: class-mix exploration | [`sweeps::queue_length_vs_class_mix`] |
//! | §4 cost model lifted to class mixes | [`ClassCostModel`], [`mix::MixSearch`] |
//! | §4–§5 analyses as a served query protocol | [`engine`] ([`Engine`], [`engine::Query`], the `urs-server` binary) |
//!
//! # Performance subsystem
//!
//! Every figure of the paper is a parameter sweep that re-solves the model per grid
//! point.  Two building blocks make those sweeps fast without changing their results:
//!
//! * [`ThreadPool`] — a scoped-thread worker pool whose `par_map` returns results in
//!   input order, so parallel sweeps are bit-identical to serial ones.  All sweep
//!   helpers fan out over it; pass [`ThreadPool::serial`] (or set `URS_THREADS=1`) to
//!   force the serial path.  The same pool also parallelises *inside* a single
//!   solve: [`SpectralExpansionSolver::with_pool`] extracts eigenvectors
//!   concurrently, while [`MatrixGeometricSolver::with_pool`],
//!   [`TruncatedCtmcSolver::with_pool`] and [`response::ResponseAnalysis::with_pool`]
//!   hand the pool to `urs-linalg`'s row-banded gemm/LU/right-solve kernels.
//!   Intra-solve parallelism is strictly opt-in (defaults stay serial) and is
//!   pinned bit-identical across thread counts by the `parallel_equivalence`
//!   thread-matrix suite.
//! * [`SolverCache`] — a shared, thread-safe, size-capped LRU cache of λ-independent
//!   QBD skeletons, unit-disk eigensystems and complete spectral solutions, attached
//!   via [`SpectralExpansionSolver::with_cache`] and
//!   [`GeometricApproximation::with_cache`]; sharing one cache between the two
//!   solvers factorises each `(skeleton, λ)` eigenproblem once, not twice.  Each
//!   level is split into independently locked shards (deterministic FNV-1a shard
//!   assignment), poisoned shards recover by clearing rather than propagating, and
//!   [`CacheStats::levels`] reports per-level hit rates and eviction ages.
//! * [`Engine`] — the standing query engine over both: parses [`engine::Query`]
//!   values from a newline-delimited JSON protocol, plans batches so queries with
//!   the same QBD skeleton share cache entries and one pool fan-out, and executes
//!   them bit-identically to the batch API.  The `urs-server` binary serves it over
//!   stdin or TCP.
//!
//! Underneath both, every solver runs on `urs-linalg`'s allocation-free kernels
//! (tiled `gemm`, blocked LU, `Workspace`-recycled scratch), and
//! [`MatrixGeometricSolver`] computes its `R` matrix by Latouche–Ramaswamy
//! logarithmic reduction — quadratic convergence with a single up-front LU of `Q1`
//! instead of the classical fixed point's per-step inverse (the achieved depth is
//! reported by [`MatrixGeometricSolution::reduction_depth`]).
//!
//! # Quick start
//!
//! ```
//! use urs_core::{QueueSolver, ServerLifecycle, SpectralExpansionSolver, SystemConfig};
//!
//! # fn main() -> Result<(), urs_core::ModelError> {
//! // 10 servers, Poisson arrivals at rate 8, unit service rate, and the
//! // breakdown/repair behaviour fitted to the Sun trace in the paper.
//! let config = SystemConfig::new(10, 8.0, 1.0, ServerLifecycle::paper_fitted()?)?;
//! let solution = SpectralExpansionSolver::default().solve(&config)?;
//! println!("mean jobs in system: {:.2}", solution.mean_queue_length());
//! println!("mean response time:  {:.2}", solution.mean_response_time());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod approx;
mod cache;
mod config;
mod cost;
mod error;
mod matrix_geometric;
mod modes;
mod parallel;
mod provisioning;
mod qbd;
mod solution;
mod spectral;
mod truncated;

pub mod engine;
pub mod mix;
pub mod response;
pub mod sweeps;

pub use approx::{dominant_eigenvalue, GeometricApproximation, GeometricSolution};
pub use cache::{CacheLevelStats, CacheOccupancy, CacheStats, SolverCache};
pub use config::{ServerClass, ServerLifecycle, SystemConfig};
pub use cost::{ClassCostModel, CostModel, CostPoint, CostSweep};
pub use engine::{Engine, Query, QueryResult};
pub use error::ModelError;
pub use matrix_geometric::{
    MatrixGeometricOptions, MatrixGeometricSolution, MatrixGeometricSolver,
};
pub use mix::{MixBounds, MixCandidate, MixSearch, MixSearchOptions, MixSearchResult};
pub use modes::{Mode, ModeSpace};
pub use parallel::{ThreadPool, WorkerPanic};
pub use provisioning::{min_servers_for_response_time, ProvisioningPoint, ProvisioningSweep};
pub use qbd::{QbdMatrices, QbdSkeleton};
pub use response::{
    invert_lst, invert_lst_cdf, InversionMethod, InversionOptions, ResponseAnalysis,
    ResponseOptions, ResponseTransform,
};
pub use solution::{consistency_violations, QueueSolution, QueueSolver};
pub use spectral::{SpectralExpansionSolver, SpectralOptions, SpectralSolution};
pub use truncated::{TruncatedCtmcSolver, TruncatedOptions, TruncatedSolution};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ModelError>;
