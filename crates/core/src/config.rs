//! System configuration: servers, traffic and the breakdown/repair lifecycle.

use urs_dist::{ContinuousDistribution, HyperExponential};

use crate::error::ModelError;
use crate::Result;

/// The breakdown/repair behaviour of a single server.
///
/// Each server alternates between *operative* periods (distribution with `n`
/// hyperexponential phases, weights `α_j` and rates `ξ_j`) and *inoperative* periods
/// (distribution with `m` phases, weights `β_k` and rates `η_k`), independently of the
/// other servers and of the queue.
///
/// # Example
///
/// ```
/// use urs_core::ServerLifecycle;
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// // The paper's fitted operative periods with exponential repairs of mean 1/25.
/// let lifecycle = ServerLifecycle::paper_fitted()?;
/// assert!((lifecycle.availability() - 0.9988).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServerLifecycle {
    operative: HyperExponential,
    inoperative: HyperExponential,
}

impl ServerLifecycle {
    /// Creates a lifecycle from explicit operative and inoperative period distributions.
    pub fn new(operative: HyperExponential, inoperative: HyperExponential) -> Self {
        ServerLifecycle { operative, inoperative }
    }

    /// Creates a lifecycle with a hyperexponential operative-period distribution and an
    /// exponential inoperative (repair) distribution with rate `repair_rate`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Dist`] if `repair_rate` is not positive and finite.
    pub fn with_exponential_repair(operative: HyperExponential, repair_rate: f64) -> Result<Self> {
        Ok(ServerLifecycle { operative, inoperative: HyperExponential::exponential(repair_rate)? })
    }

    /// A lifecycle in which both periods are exponential — the assumption made by the
    /// earlier literature that the paper challenges.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Dist`] if either rate is not positive and finite.
    pub fn exponential(breakdown_rate: f64, repair_rate: f64) -> Result<Self> {
        Ok(ServerLifecycle {
            operative: HyperExponential::exponential(breakdown_rate)?,
            inoperative: HyperExponential::exponential(repair_rate)?,
        })
    }

    /// The lifecycle fitted to the Sun data set in Section 2 of the paper and used for
    /// Figures 5, 8 and 9: operative periods `H₂(α = (0.7246, 0.2754),
    /// ξ = (0.1663, 0.0091))`, exponential repairs with rate `η = 25`.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature is fallible only because the underlying
    /// constructors are.
    pub fn paper_fitted() -> Result<Self> {
        let operative = HyperExponential::new(&[0.7246, 0.2754], &[0.1663, 0.0091])?;
        ServerLifecycle::with_exponential_repair(operative, 25.0)
    }

    /// The operative-period distribution.
    pub fn operative(&self) -> &HyperExponential {
        &self.operative
    }

    /// The inoperative-period distribution.
    pub fn inoperative(&self) -> &HyperExponential {
        &self.inoperative
    }

    /// Number of operative phases `n`.
    pub fn operative_phases(&self) -> usize {
        self.operative.phases()
    }

    /// Number of inoperative phases `m`.
    pub fn inoperative_phases(&self) -> usize {
        self.inoperative.phases()
    }

    /// Overall breakdown rate `ξ` defined through `1/ξ = Σ_j α_j/ξ_j` (paper, eq. 10).
    pub fn breakdown_rate(&self) -> f64 {
        1.0 / self.operative.mean()
    }

    /// Overall repair rate `η` defined through `1/η = Σ_k β_k/η_k` (paper, eq. 10).
    pub fn repair_rate(&self) -> f64 {
        1.0 / self.inoperative.mean()
    }

    /// Long-run fraction of time a server is operative, `η/(ξ+η)`.
    pub fn availability(&self) -> f64 {
        let xi = self.breakdown_rate();
        let eta = self.repair_rate();
        eta / (xi + eta)
    }

    /// Stationary probability that a server is in operative phase `j`
    /// (`(α_j/ξ_j) / (1/ξ + 1/η)`).
    pub fn operative_phase_probability(&self, phase: usize) -> f64 {
        let cycle = self.operative.mean() + self.inoperative.mean();
        self.operative.weights()[phase] / self.operative.rates()[phase] / cycle
    }

    /// Stationary probability that a server is in inoperative phase `k`.
    pub fn inoperative_phase_probability(&self, phase: usize) -> f64 {
        let cycle = self.operative.mean() + self.inoperative.mean();
        self.inoperative.weights()[phase] / self.inoperative.rates()[phase] / cycle
    }
}

/// A group of statistically identical servers: `count` servers sharing one service
/// rate `µ` and one breakdown/repair [`ServerLifecycle`].
///
/// The paper models `N` i.i.d. servers — a single class.  Its "future work" extension
/// to distinct server classes is obtained by giving a [`SystemConfig`] several classes
/// via [`SystemConfig::heterogeneous`]; the operational mode space then becomes the
/// product of the per-class occupancy spaces.
///
/// # Example
///
/// ```
/// use urs_core::{ServerClass, ServerLifecycle};
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let fast = ServerClass::new(4, 1.5, ServerLifecycle::exponential(0.05, 5.0)?)?;
/// assert_eq!(fast.count(), 4);
/// assert!((fast.effective_capacity() - 4.0 * fast.availability() * 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServerClass {
    count: usize,
    service_rate: f64,
    lifecycle: ServerLifecycle,
}

impl ServerClass {
    /// Creates a validated server class.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `count == 0` or the service rate
    /// is not positive and finite.
    pub fn new(count: usize, service_rate: f64, lifecycle: ServerLifecycle) -> Result<Self> {
        if count == 0 {
            return Err(ModelError::InvalidParameter {
                name: "servers",
                value: 0.0,
                constraint: "a server class must contain at least 1 server",
            });
        }
        if !(service_rate.is_finite() && service_rate > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "service_rate",
                value: service_rate,
                constraint: "must be finite and positive",
            });
        }
        Ok(ServerClass { count, service_rate, lifecycle })
    }

    /// Number of servers in the class.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Service rate `µ` of one operative server of this class.
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// The breakdown/repair lifecycle shared by the servers of this class.
    pub fn lifecycle(&self) -> &ServerLifecycle {
        &self.lifecycle
    }

    /// Long-run fraction of time one server of this class is operative.
    pub fn availability(&self) -> f64 {
        self.lifecycle.availability()
    }

    /// Steady-state service capacity contributed by the class,
    /// `count · availability · µ` (jobs per unit time).
    pub fn effective_capacity(&self) -> f64 {
        self.count as f64 * self.availability() * self.service_rate
    }

    /// Returns a copy of the class with a different server count.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `count == 0`.
    pub fn with_count(&self, count: usize) -> Result<Self> {
        ServerClass::new(count, self.service_rate, self.lifecycle.clone())
    }

    /// Canonical ordering key: bit patterns of the service rate and of every phase
    /// weight/rate, so that permuted class lists canonicalise identically.  Uses the
    /// same [`canonical_bits`] rule as the cache keys in `cache.rs`, so two classes
    /// merge here exactly when they share a cache slot there.
    fn canonical_key(&self) -> (u64, Vec<u64>, Vec<u64>) {
        let dist_bits = |dist: &HyperExponential| -> Vec<u64> {
            dist.weights().iter().chain(dist.rates()).map(|v| canonical_bits(*v)).collect()
        };
        (
            canonical_bits(self.service_rate),
            dist_bits(self.lifecycle.operative()),
            dist_bits(self.lifecycle.inoperative()),
        )
    }

    /// `true` when the two classes have bit-identical service rates and lifecycles
    /// (and therefore can be merged into one class).
    fn same_parameters(&self, other: &Self) -> bool {
        self.canonical_key() == other.canonical_key()
    }
}

/// Full configuration of the multi-server system with breakdowns and repairs.
///
/// Jobs arrive in a Poisson stream with rate `λ` and are served by any operative
/// server.  In the paper's model all `N` servers are statistically identical
/// ([`SystemConfig::new`]); the heterogeneous extension
/// ([`SystemConfig::heterogeneous`]) partitions the servers into [`ServerClass`]es
/// with distinct service rates and lifecycles.  Jobs are allocated to the fastest
/// operative servers first (classes are kept sorted by decreasing service rate), the
/// allocation assumed by the class-aware generator blocks in
/// [`QbdSkeleton`](crate::QbdSkeleton).
///
/// # Example
///
/// ```
/// use urs_core::{ServerLifecycle, SystemConfig};
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let config = SystemConfig::new(10, 8.0, 1.0, ServerLifecycle::paper_fitted()?)?;
/// assert!(config.is_stable());
/// assert!((config.offered_load() - 8.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    arrival_rate: f64,
    /// Invariant: non-empty, sorted by decreasing service rate (ties broken by the
    /// canonical lifecycle key), with bit-identical classes merged.
    classes: Vec<ServerClass>,
}

impl SystemConfig {
    /// Creates a validated homogeneous configuration: `servers` identical servers with
    /// service rate `service_rate` and the given lifecycle (the paper's model).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `servers == 0`, or when the arrival
    /// or service rate is not positive and finite.  Stability is *not* required here —
    /// use [`ensure_stable`](Self::ensure_stable) or let the solvers reject unstable
    /// systems — so that deliberately overloaded configurations can still be simulated.
    pub fn new(
        servers: usize,
        arrival_rate: f64,
        service_rate: f64,
        lifecycle: ServerLifecycle,
    ) -> Result<Self> {
        if servers == 0 {
            return Err(ModelError::InvalidParameter {
                name: "servers",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        Self::validate_arrival(arrival_rate)?;
        if !(service_rate.is_finite() && service_rate > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "service_rate",
                value: service_rate,
                constraint: "must be finite and positive",
            });
        }
        Ok(SystemConfig {
            arrival_rate,
            classes: vec![ServerClass { count: servers, service_rate, lifecycle }],
        })
    }

    /// Creates a validated heterogeneous configuration from explicit server classes
    /// (the extension the paper flags as future work).
    ///
    /// The class list is canonicalised: classes are sorted by decreasing service rate
    /// (jobs are allocated fastest-first) and classes with bit-identical parameters
    /// are merged.  A class list in which every class has the same rates therefore
    /// produces *exactly* the homogeneous configuration, so all solvers reproduce the
    /// homogeneous solution bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `classes` is empty or the arrival
    /// rate is not positive and finite.
    ///
    /// # Example
    ///
    /// ```
    /// use urs_core::{ServerClass, ServerLifecycle, SystemConfig};
    ///
    /// # fn main() -> Result<(), urs_core::ModelError> {
    /// let fast = ServerClass::new(4, 1.5, ServerLifecycle::exponential(0.1, 2.0)?)?;
    /// let slow = ServerClass::new(6, 1.0, ServerLifecycle::exponential(0.02, 5.0)?)?;
    /// let config = SystemConfig::heterogeneous(7.0, vec![slow, fast])?;
    /// assert_eq!(config.servers(), 10);
    /// assert_eq!(config.classes().len(), 2);
    /// // Canonical order: fastest class first.
    /// assert_eq!(config.classes()[0].service_rate(), 1.5);
    /// # Ok(())
    /// # }
    /// ```
    pub fn heterogeneous(arrival_rate: f64, classes: Vec<ServerClass>) -> Result<Self> {
        if classes.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "classes",
                value: 0.0,
                constraint: "at least one server class is required",
            });
        }
        Self::validate_arrival(arrival_rate)?;
        Ok(SystemConfig { arrival_rate, classes: canonicalise_classes(classes) })
    }

    fn validate_arrival(arrival_rate: f64) -> Result<()> {
        if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "arrival_rate",
                value: arrival_rate,
                constraint: "must be finite and positive",
            });
        }
        Ok(())
    }

    /// Total number of servers `N` across all classes.
    pub fn servers(&self) -> usize {
        self.classes.iter().map(ServerClass::count).sum()
    }

    /// The server classes in canonical (fastest-first) order.  Homogeneous
    /// configurations have exactly one class.
    pub fn classes(&self) -> &[ServerClass] {
        &self.classes
    }

    /// `true` when all servers belong to one class (the paper's i.i.d. model).
    pub fn is_homogeneous(&self) -> bool {
        self.classes.len() == 1
    }

    /// Poisson arrival rate `λ`.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Service rate `µ` of one operative server of the *fastest* class (the only
    /// class of a homogeneous configuration).
    pub fn service_rate(&self) -> f64 {
        self.classes[0].service_rate
    }

    /// The breakdown/repair lifecycle of the *fastest* class (the only class of a
    /// homogeneous configuration).
    pub fn lifecycle(&self) -> &ServerLifecycle {
        &self.classes[0].lifecycle
    }

    /// Returns a copy of the configuration with a different number of servers — handy
    /// for the cost and provisioning sweeps of Figures 5 and 9.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `servers == 0`, or if the
    /// configuration is heterogeneous (renumbering "the" server count of a multi-class
    /// mix is ambiguous — use [`with_class_counts`](Self::with_class_counts) for
    /// per-class control or [`with_total_servers`](Self::with_total_servers) for
    /// uniform scaling of the mix).
    pub fn with_servers(&self, servers: usize) -> Result<Self> {
        if !self.is_homogeneous() {
            return Err(ModelError::InvalidParameter {
                name: "servers",
                value: servers as f64,
                constraint: "with_servers requires a homogeneous configuration; use \
                             with_class_counts (per-class counts) or with_total_servers \
                             (uniform scaling) instead",
            });
        }
        SystemConfig::new(
            servers,
            self.arrival_rate,
            self.classes[0].service_rate,
            self.classes[0].lifecycle.clone(),
        )
    }

    /// Returns a copy of the configuration in which class `j` (canonical,
    /// fastest-first order — see [`classes`](Self::classes)) has `counts[j]` servers.
    /// Classes given a count of zero are dropped from the fleet, so a count vector
    /// with a single non-zero entry produces a homogeneous configuration.
    ///
    /// This is the per-class rescaling primitive behind the cost/provisioning sweeps
    /// and the [`mix`](crate::mix) search: sweeps rescale a heterogeneous base fleet
    /// without rebuilding class lists by hand.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `counts.len()` differs from the
    /// number of classes or when every count is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use urs_core::{ServerClass, ServerLifecycle, SystemConfig};
    ///
    /// # fn main() -> Result<(), urs_core::ModelError> {
    /// let fast = ServerClass::new(4, 1.5, ServerLifecycle::exponential(0.1, 2.0)?)?;
    /// let slow = ServerClass::new(6, 1.0, ServerLifecycle::exponential(0.02, 5.0)?)?;
    /// let config = SystemConfig::heterogeneous(4.0, vec![fast, slow])?;
    /// let rescaled = config.with_class_counts(&[2, 9])?;
    /// assert_eq!(rescaled.classes()[0].count(), 2); // fastest class first
    /// assert_eq!(rescaled.servers(), 11);
    /// // Zero counts drop the class entirely.
    /// assert!(config.with_class_counts(&[0, 5])?.is_homogeneous());
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_class_counts(&self, counts: &[usize]) -> Result<Self> {
        if counts.len() != self.classes.len() {
            return Err(ModelError::InvalidParameter {
                name: "counts",
                value: counts.len() as f64,
                constraint: "one count per server class is required",
            });
        }
        if counts.iter().all(|&c| c == 0) {
            return Err(ModelError::InvalidParameter {
                name: "counts",
                value: 0.0,
                constraint: "at least one class must keep at least 1 server",
            });
        }
        let classes = self
            .classes
            .iter()
            .zip(counts)
            .filter(|(_, &count)| count > 0)
            .map(|(class, &count)| class.with_count(count))
            .collect::<Result<Vec<_>>>()?;
        SystemConfig::heterogeneous(self.arrival_rate, classes)
    }

    /// Returns a copy of the configuration scaled to `total` servers, preserving the
    /// class proportions of the base mix as closely as integers allow.
    ///
    /// The per-class counts are apportioned by the largest-remainder method: every
    /// class first receives `⌊N_j·total/N⌋` servers, then the leftover servers go to
    /// the classes with the largest remainders (ties broken towards the faster class).
    /// The result always sums to exactly `total`, and for a homogeneous configuration
    /// this is identical to [`with_servers`](Self::with_servers).  Classes whose share
    /// rounds to zero are dropped, like in [`with_class_counts`](Self::with_class_counts).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `total == 0`.
    pub fn with_total_servers(&self, total: usize) -> Result<Self> {
        if total == 0 {
            return Err(ModelError::InvalidParameter {
                name: "total",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        if self.is_homogeneous() {
            return self.with_class_counts(&[total]);
        }
        let base_total = self.servers() as u128;
        let mut counts: Vec<usize> = Vec::with_capacity(self.classes.len());
        let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(self.classes.len());
        for (j, class) in self.classes.iter().enumerate() {
            let share = class.count() as u128 * total as u128;
            counts.push((share / base_total) as usize);
            remainders.push((share % base_total, j));
        }
        let assigned: usize = counts.iter().sum();
        // Largest remainder first; equal remainders favour the faster (lower-index)
        // class so the apportionment is deterministic.
        remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, j) in remainders.iter().take(total - assigned) {
            counts[*j] += 1;
        }
        self.with_class_counts(&counts)
    }

    /// Returns a copy of the configuration with a different arrival rate.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the rate is not positive and finite.
    pub fn with_arrival_rate(&self, arrival_rate: f64) -> Result<Self> {
        Self::validate_arrival(arrival_rate)?;
        Ok(SystemConfig { arrival_rate, classes: self.classes.clone() })
    }

    /// Returns a copy of the configuration in which *every* class uses the given
    /// lifecycle (for homogeneous configurations: simply the new lifecycle).
    pub fn with_lifecycle(&self, lifecycle: ServerLifecycle) -> Self {
        let classes = self
            .classes
            .iter()
            .map(|c| ServerClass {
                count: c.count,
                service_rate: c.service_rate,
                lifecycle: lifecycle.clone(),
            })
            .collect();
        SystemConfig { arrival_rate: self.arrival_rate, classes: canonicalise_classes(classes) }
    }

    /// Offered load (expected work arriving per unit time, in server-units): `λ/µ` for
    /// a homogeneous configuration; for a heterogeneous one, `λ` divided by the
    /// availability-weighted mean service rate.
    pub fn offered_load(&self) -> f64 {
        if self.is_homogeneous() {
            self.arrival_rate / self.classes[0].service_rate
        } else {
            self.arrival_rate / (self.effective_capacity() / self.effective_servers())
        }
    }

    /// Steady-state average number of operative servers, `Σ_c N_c·η_c/(ξ_c+η_c)`.
    pub fn effective_servers(&self) -> f64 {
        self.classes.iter().map(|c| c.count as f64 * c.availability()).sum()
    }

    /// Steady-state service capacity `Σ_c N_c·availability_c·µ_c` (jobs per unit
    /// time); the queue is stable iff `λ` is below this.
    pub fn effective_capacity(&self) -> f64 {
        self.classes.iter().map(ServerClass::effective_capacity).sum()
    }

    /// Server utilisation `ρ = offered load / effective servers`; the queue is stable
    /// iff `ρ < 1`.
    pub fn utilisation(&self) -> f64 {
        self.offered_load() / self.effective_servers()
    }

    /// Stability condition (paper, equation 11, capacity-weighted for classes):
    /// `λ/µ < N·η/(ξ+η)` in the homogeneous case, `λ < Σ_c N_c·a_c·µ_c` in general.
    pub fn is_stable(&self) -> bool {
        self.offered_load() < self.effective_servers()
    }

    /// Returns an error when the system is not stable; used by the analytic solvers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unstable`] when the stability condition fails.
    pub fn ensure_stable(&self) -> Result<()> {
        if self.is_stable() {
            Ok(())
        } else {
            Err(ModelError::Unstable {
                offered_load: self.offered_load(),
                effective_servers: self.effective_servers(),
            })
        }
    }

    /// Number of operational modes of the Markovian environment: the product over
    /// classes of `C(N_c+n_c+m_c−1, n_c+m_c−1)` (paper, equation 12; one factor for
    /// the homogeneous model).
    pub fn environment_states(&self) -> usize {
        self.classes
            .iter()
            .map(|c| {
                let n = c.lifecycle.operative_phases();
                let m = c.lifecycle.inoperative_phases();
                binomial(c.count + n + m - 1, n + m - 1)
            })
            .product()
    }
}

/// Sorts classes fastest-first (ties broken by the canonical lifecycle key, so any
/// permutation of the same classes canonicalises identically) and merges classes with
/// bit-identical parameters.  Equal-parameter class lists therefore collapse to the
/// homogeneous representation.
fn canonicalise_classes(mut classes: Vec<ServerClass>) -> Vec<ServerClass> {
    classes.sort_by(|a, b| {
        b.service_rate
            .total_cmp(&a.service_rate)
            .then_with(|| a.canonical_key().cmp(&b.canonical_key()))
    });
    let mut merged: Vec<ServerClass> = Vec::with_capacity(classes.len());
    for class in classes {
        match merged.last_mut() {
            Some(last) if last.same_parameters(&class) => last.count += class.count,
            _ => merged.push(class),
        }
    }
    merged
}

/// Canonical bit pattern of an `f64` for identity comparisons: signed zero is
/// normalised so `-0.0` and `0.0` are the same value.  This single rule underlies
/// both the class merging in [`SystemConfig::heterogeneous`] and the cache keys in
/// `cache.rs` (which additionally rejects non-finite values), keeping "these classes
/// are identical" consistent between canonicalisation and caching.
pub(crate) fn canonical_bits(value: f64) -> u64 {
    // urs-analyze: allow(float_cmp, reason = "this IS the bit-identity function; == merges the two signed-zero representations")
    if value == 0.0 {
        0
    } else {
        value.to_bits()
    }
}

/// Binomial coefficient computed in floating point free, overflow-aware integer form.
pub(crate) fn binomial(n: usize, k: usize) -> usize {
    let k = k.min(n - k.min(n));
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
    }
    result as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_paper_fitted_quantities() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        assert_eq!(lc.operative_phases(), 2);
        assert_eq!(lc.inoperative_phases(), 1);
        assert!((lc.operative().mean() - 34.62).abs() < 0.05);
        assert!((lc.breakdown_rate() - 0.0289).abs() < 3e-4);
        assert!((lc.repair_rate() - 25.0).abs() < 1e-12);
        // Availability ≈ 25/(25+0.0289) ≈ 0.99885
        assert!((lc.availability() - 0.99885).abs() < 1e-4);
        // Phase probabilities sum to 1.
        let total: f64 = (0..2).map(|j| lc.operative_phase_probability(j)).sum::<f64>()
            + lc.inoperative_phase_probability(0);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_lifecycle() {
        let lc = ServerLifecycle::exponential(0.05, 2.0).unwrap();
        assert_eq!(lc.operative_phases(), 1);
        assert_eq!(lc.inoperative_phases(), 1);
        assert!((lc.availability() - 2.0 / 2.05).abs() < 1e-12);
        assert!(ServerLifecycle::exponential(-1.0, 2.0).is_err());
    }

    #[test]
    fn config_validation() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        assert!(SystemConfig::new(0, 1.0, 1.0, lc.clone()).is_err());
        assert!(SystemConfig::new(2, 0.0, 1.0, lc.clone()).is_err());
        assert!(SystemConfig::new(2, 1.0, f64::NAN, lc.clone()).is_err());
        assert!(SystemConfig::new(2, 1.0, 1.0, lc).is_ok());
    }

    #[test]
    fn stability_condition_matches_paper_formula() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        // With availability ≈ 0.99885, 9 servers carry ≈ 8.99 Erlangs.
        let stable = SystemConfig::new(9, 8.5, 1.0, lc.clone()).unwrap();
        assert!(stable.is_stable());
        assert!(stable.ensure_stable().is_ok());
        let unstable = SystemConfig::new(8, 8.5, 1.0, lc).unwrap();
        assert!(!unstable.is_stable());
        assert!(matches!(unstable.ensure_stable(), Err(ModelError::Unstable { .. })));
    }

    #[test]
    fn environment_state_count_matches_formula() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        // n = 2, m = 1: s = (N+2)(N+1)/2.
        for n in [1usize, 2, 5, 10, 17] {
            let cfg = SystemConfig::new(n, 1.0, 1.0, lc.clone()).unwrap();
            assert_eq!(cfg.environment_states(), (n + 2) * (n + 1) / 2);
        }
    }

    #[test]
    fn with_servers_and_arrival_rate() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        let cfg = SystemConfig::new(10, 8.0, 1.0, lc).unwrap();
        let cfg12 = cfg.with_servers(12).unwrap();
        assert_eq!(cfg12.servers(), 12);
        assert_eq!(cfg12.arrival_rate(), 8.0);
        let cfg_fast = cfg.with_arrival_rate(9.5).unwrap();
        assert_eq!(cfg_fast.arrival_rate(), 9.5);
        assert!(cfg.with_servers(0).is_err());
        assert!((cfg.utilisation() - 8.0 / cfg.effective_servers()).abs() < 1e-12);
    }

    #[test]
    fn server_class_validation() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        assert!(ServerClass::new(0, 1.0, lc.clone()).is_err());
        assert!(ServerClass::new(2, 0.0, lc.clone()).is_err());
        assert!(ServerClass::new(2, f64::NAN, lc.clone()).is_err());
        let class = ServerClass::new(3, 2.0, lc.clone()).unwrap();
        assert_eq!(class.count(), 3);
        assert_eq!(class.service_rate(), 2.0);
        assert!((class.effective_capacity() - 3.0 * lc.availability() * 2.0).abs() < 1e-12);
        assert_eq!(class.with_count(5).unwrap().count(), 5);
        assert!(class.with_count(0).is_err());
    }

    #[test]
    fn heterogeneous_canonicalisation_sorts_and_merges() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        let slow = ServerClass::new(2, 1.0, lc.clone()).unwrap();
        let fast = ServerClass::new(1, 2.0, lc.clone()).unwrap();
        let also_slow = ServerClass::new(3, 1.0, lc.clone()).unwrap();
        let config = SystemConfig::heterogeneous(3.0, vec![slow, fast, also_slow]).unwrap();
        // Fastest first; the two µ = 1 classes merged.
        assert_eq!(config.classes().len(), 2);
        assert_eq!(config.classes()[0].service_rate(), 2.0);
        assert_eq!(config.classes()[1].count(), 5);
        assert_eq!(config.servers(), 6);
        assert!(!config.is_homogeneous());
        // Equal-parameter classes collapse to the homogeneous representation.
        let split = SystemConfig::heterogeneous(
            3.0,
            vec![
                ServerClass::new(4, 1.0, lc.clone()).unwrap(),
                ServerClass::new(2, 1.0, lc.clone()).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(split, SystemConfig::new(6, 3.0, 1.0, lc).unwrap());
        assert!(split.is_homogeneous());
        assert!(SystemConfig::heterogeneous(1.0, vec![]).is_err());
    }

    #[test]
    fn heterogeneous_capacity_and_stability() {
        let reliable = ServerLifecycle::exponential(1e-9, 1e3).unwrap();
        let fast = ServerClass::new(2, 2.0, reliable.clone()).unwrap();
        let slow = ServerClass::new(4, 0.5, reliable.clone()).unwrap();
        let config = SystemConfig::heterogeneous(5.0, vec![fast, slow]).unwrap();
        // Capacity ≈ 2·2 + 4·0.5 = 6 (availability ≈ 1).
        assert!((config.effective_capacity() - 6.0).abs() < 1e-6);
        assert!((config.effective_servers() - 6.0).abs() < 1e-6);
        assert!(config.is_stable());
        assert!((config.utilisation() - 5.0 / 6.0).abs() < 1e-6);
        // λ above the capacity is unstable even though λ/µ_max < N.
        let overloaded = config.with_arrival_rate(6.5).unwrap();
        assert!(!overloaded.is_stable());
        // Product-form environment state count: one factor per class.
        let lc2 = ServerLifecycle::paper_fitted().unwrap();
        let mixed = SystemConfig::heterogeneous(
            1.0,
            vec![
                ServerClass::new(2, 2.0, lc2).unwrap(),
                ServerClass::new(3, 1.0, reliable).unwrap(),
            ],
        )
        .unwrap();
        // Paper lifecycle class (n=2, m=1, N=2): C(4,2) = 6; exponential class
        // (n=m=1, N=3): C(4,1) = 4.
        assert_eq!(mixed.environment_states(), 24);
    }

    #[test]
    fn with_class_counts_rescales_and_drops_zero_classes() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        let exp = ServerLifecycle::exponential(0.1, 2.0).unwrap();
        let config = SystemConfig::heterogeneous(
            3.0,
            vec![
                ServerClass::new(2, 2.0, exp.clone()).unwrap(),
                ServerClass::new(4, 1.0, lc.clone()).unwrap(),
            ],
        )
        .unwrap();
        let rescaled = config.with_class_counts(&[5, 1]).unwrap();
        assert_eq!(rescaled.classes()[0].count(), 5);
        assert_eq!(rescaled.classes()[1].count(), 1);
        assert_eq!(rescaled.servers(), 6);
        // Zero counts drop the class; the survivor is homogeneous.
        let only_slow = config.with_class_counts(&[0, 3]).unwrap();
        assert!(only_slow.is_homogeneous());
        assert_eq!(only_slow.service_rate(), 1.0);
        // Errors: wrong arity, all-zero counts.
        assert!(config.with_class_counts(&[1]).is_err());
        assert!(config.with_class_counts(&[0, 0]).is_err());
        // Homogeneous path matches with_servers exactly.
        let homo = SystemConfig::new(4, 2.0, 1.0, lc).unwrap();
        assert_eq!(homo.with_class_counts(&[9]).unwrap(), homo.with_servers(9).unwrap());
    }

    #[test]
    fn with_total_servers_preserves_proportions() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        let exp = ServerLifecycle::exponential(0.1, 2.0).unwrap();
        let config = SystemConfig::heterogeneous(
            3.0,
            vec![
                ServerClass::new(2, 2.0, exp.clone()).unwrap(),
                ServerClass::new(4, 1.0, lc.clone()).unwrap(),
            ],
        )
        .unwrap();
        // Exact multiple: 2:4 at total 12 is 4:8.
        let doubled = config.with_total_servers(12).unwrap();
        assert_eq!(doubled.classes()[0].count(), 4);
        assert_eq!(doubled.classes()[1].count(), 8);
        // Non-multiple totals still sum exactly and keep the ordering of shares.
        for total in 1..=15 {
            let scaled = config.with_total_servers(total).unwrap();
            assert_eq!(scaled.servers(), total, "total {total}");
        }
        // 2:4 at total 7: floors are (2, 4) + one remainder server; the slow class has
        // the larger remainder (28 % 6 = 4 > 14 % 6 = 2).
        let seven = config.with_total_servers(7).unwrap();
        assert_eq!(seven.classes()[0].count(), 2);
        assert_eq!(seven.classes()[1].count(), 5);
        // Small totals may drop a class entirely.
        let one = config.with_total_servers(1).unwrap();
        assert!(one.is_homogeneous());
        assert!(config.with_total_servers(0).is_err());
        // Homogeneous configurations delegate to the with_servers representation.
        let homo = SystemConfig::new(5, 2.0, 1.0, lc).unwrap();
        assert_eq!(homo.with_total_servers(8).unwrap(), homo.with_servers(8).unwrap());
    }

    #[test]
    fn with_servers_error_points_at_class_apis() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        let exp = ServerLifecycle::exponential(0.1, 2.0).unwrap();
        let config = SystemConfig::heterogeneous(
            1.0,
            vec![ServerClass::new(1, 2.0, exp).unwrap(), ServerClass::new(1, 1.0, lc).unwrap()],
        )
        .unwrap();
        let err = config.with_servers(5).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("with_class_counts"), "{message}");
        assert!(message.contains("with_total_servers"), "{message}");
    }

    #[test]
    fn binomial_coefficients() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(19, 2), 171);
        assert_eq!(binomial(7, 0), 1);
        assert_eq!(binomial(7, 7), 1);
        assert_eq!(binomial(30, 3), 4060);
    }
}
