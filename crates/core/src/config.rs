//! System configuration: servers, traffic and the breakdown/repair lifecycle.

use urs_dist::{ContinuousDistribution, HyperExponential};

use crate::error::ModelError;
use crate::Result;

/// The breakdown/repair behaviour of a single server.
///
/// Each server alternates between *operative* periods (distribution with `n`
/// hyperexponential phases, weights `α_j` and rates `ξ_j`) and *inoperative* periods
/// (distribution with `m` phases, weights `β_k` and rates `η_k`), independently of the
/// other servers and of the queue.
///
/// # Example
///
/// ```
/// use urs_core::ServerLifecycle;
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// // The paper's fitted operative periods with exponential repairs of mean 1/25.
/// let lifecycle = ServerLifecycle::paper_fitted()?;
/// assert!((lifecycle.availability() - 0.9988).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServerLifecycle {
    operative: HyperExponential,
    inoperative: HyperExponential,
}

impl ServerLifecycle {
    /// Creates a lifecycle from explicit operative and inoperative period distributions.
    pub fn new(operative: HyperExponential, inoperative: HyperExponential) -> Self {
        ServerLifecycle { operative, inoperative }
    }

    /// Creates a lifecycle with a hyperexponential operative-period distribution and an
    /// exponential inoperative (repair) distribution with rate `repair_rate`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Dist`] if `repair_rate` is not positive and finite.
    pub fn with_exponential_repair(operative: HyperExponential, repair_rate: f64) -> Result<Self> {
        Ok(ServerLifecycle { operative, inoperative: HyperExponential::exponential(repair_rate)? })
    }

    /// A lifecycle in which both periods are exponential — the assumption made by the
    /// earlier literature that the paper challenges.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Dist`] if either rate is not positive and finite.
    pub fn exponential(breakdown_rate: f64, repair_rate: f64) -> Result<Self> {
        Ok(ServerLifecycle {
            operative: HyperExponential::exponential(breakdown_rate)?,
            inoperative: HyperExponential::exponential(repair_rate)?,
        })
    }

    /// The lifecycle fitted to the Sun data set in Section 2 of the paper and used for
    /// Figures 5, 8 and 9: operative periods `H₂(α = (0.7246, 0.2754),
    /// ξ = (0.1663, 0.0091))`, exponential repairs with rate `η = 25`.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature is fallible only because the underlying
    /// constructors are.
    pub fn paper_fitted() -> Result<Self> {
        let operative = HyperExponential::new(&[0.7246, 0.2754], &[0.1663, 0.0091])?;
        ServerLifecycle::with_exponential_repair(operative, 25.0)
    }

    /// The operative-period distribution.
    pub fn operative(&self) -> &HyperExponential {
        &self.operative
    }

    /// The inoperative-period distribution.
    pub fn inoperative(&self) -> &HyperExponential {
        &self.inoperative
    }

    /// Number of operative phases `n`.
    pub fn operative_phases(&self) -> usize {
        self.operative.phases()
    }

    /// Number of inoperative phases `m`.
    pub fn inoperative_phases(&self) -> usize {
        self.inoperative.phases()
    }

    /// Overall breakdown rate `ξ` defined through `1/ξ = Σ_j α_j/ξ_j` (paper, eq. 10).
    pub fn breakdown_rate(&self) -> f64 {
        1.0 / self.operative.mean()
    }

    /// Overall repair rate `η` defined through `1/η = Σ_k β_k/η_k` (paper, eq. 10).
    pub fn repair_rate(&self) -> f64 {
        1.0 / self.inoperative.mean()
    }

    /// Long-run fraction of time a server is operative, `η/(ξ+η)`.
    pub fn availability(&self) -> f64 {
        let xi = self.breakdown_rate();
        let eta = self.repair_rate();
        eta / (xi + eta)
    }

    /// Stationary probability that a server is in operative phase `j`
    /// (`(α_j/ξ_j) / (1/ξ + 1/η)`).
    pub fn operative_phase_probability(&self, phase: usize) -> f64 {
        let cycle = self.operative.mean() + self.inoperative.mean();
        self.operative.weights()[phase] / self.operative.rates()[phase] / cycle
    }

    /// Stationary probability that a server is in inoperative phase `k`.
    pub fn inoperative_phase_probability(&self, phase: usize) -> f64 {
        let cycle = self.operative.mean() + self.inoperative.mean();
        self.inoperative.weights()[phase] / self.inoperative.rates()[phase] / cycle
    }
}

/// Full configuration of the multi-server system with breakdowns and repairs.
///
/// Jobs arrive in a Poisson stream with rate `λ`, are served at rate `µ` by any
/// operative server, and each of the `N` servers follows the given
/// [`ServerLifecycle`].
///
/// # Example
///
/// ```
/// use urs_core::{ServerLifecycle, SystemConfig};
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let config = SystemConfig::new(10, 8.0, 1.0, ServerLifecycle::paper_fitted()?)?;
/// assert!(config.is_stable());
/// assert!((config.offered_load() - 8.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    servers: usize,
    arrival_rate: f64,
    service_rate: f64,
    lifecycle: ServerLifecycle,
}

impl SystemConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `servers == 0`, or when the arrival
    /// or service rate is not positive and finite.  Stability is *not* required here —
    /// use [`ensure_stable`](Self::ensure_stable) or let the solvers reject unstable
    /// systems — so that deliberately overloaded configurations can still be simulated.
    pub fn new(
        servers: usize,
        arrival_rate: f64,
        service_rate: f64,
        lifecycle: ServerLifecycle,
    ) -> Result<Self> {
        if servers == 0 {
            return Err(ModelError::InvalidParameter {
                name: "servers",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "arrival_rate",
                value: arrival_rate,
                constraint: "must be finite and positive",
            });
        }
        if !(service_rate.is_finite() && service_rate > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "service_rate",
                value: service_rate,
                constraint: "must be finite and positive",
            });
        }
        Ok(SystemConfig { servers, arrival_rate, service_rate, lifecycle })
    }

    /// Number of servers `N`.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Poisson arrival rate `λ`.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Service rate `µ` of one operative server.
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// The per-server breakdown/repair lifecycle.
    pub fn lifecycle(&self) -> &ServerLifecycle {
        &self.lifecycle
    }

    /// Returns a copy of the configuration with a different number of servers — handy
    /// for the cost and provisioning sweeps of Figures 5 and 9.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `servers == 0`.
    pub fn with_servers(&self, servers: usize) -> Result<Self> {
        SystemConfig::new(servers, self.arrival_rate, self.service_rate, self.lifecycle.clone())
    }

    /// Returns a copy of the configuration with a different arrival rate.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the rate is not positive and finite.
    pub fn with_arrival_rate(&self, arrival_rate: f64) -> Result<Self> {
        SystemConfig::new(self.servers, arrival_rate, self.service_rate, self.lifecycle.clone())
    }

    /// Returns a copy of the configuration with a different lifecycle.
    pub fn with_lifecycle(&self, lifecycle: ServerLifecycle) -> Self {
        SystemConfig {
            servers: self.servers,
            arrival_rate: self.arrival_rate,
            service_rate: self.service_rate,
            lifecycle,
        }
    }

    /// Offered load `λ/µ` (expected work arriving per unit time, in server-units).
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// Steady-state average number of operative servers `N·η/(ξ+η)`.
    pub fn effective_servers(&self) -> f64 {
        self.servers as f64 * self.lifecycle.availability()
    }

    /// Server utilisation `ρ = offered load / effective servers`; the queue is stable
    /// iff `ρ < 1`.
    pub fn utilisation(&self) -> f64 {
        self.offered_load() / self.effective_servers()
    }

    /// Stability condition of the paper (equation 11): `λ/µ < N·η/(ξ+η)`.
    pub fn is_stable(&self) -> bool {
        self.offered_load() < self.effective_servers()
    }

    /// Returns an error when the system is not stable; used by the analytic solvers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unstable`] when the stability condition fails.
    pub fn ensure_stable(&self) -> Result<()> {
        if self.is_stable() {
            Ok(())
        } else {
            Err(ModelError::Unstable {
                offered_load: self.offered_load(),
                effective_servers: self.effective_servers(),
            })
        }
    }

    /// Number of operational modes `s = C(N+n+m−1, n+m−1)` of the Markovian
    /// environment (paper, equation 12).
    pub fn environment_states(&self) -> usize {
        let n = self.lifecycle.operative_phases();
        let m = self.lifecycle.inoperative_phases();
        binomial(self.servers + n + m - 1, n + m - 1)
    }
}

/// Binomial coefficient computed in floating point free, overflow-aware integer form.
pub(crate) fn binomial(n: usize, k: usize) -> usize {
    let k = k.min(n - k.min(n));
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
    }
    result as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_paper_fitted_quantities() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        assert_eq!(lc.operative_phases(), 2);
        assert_eq!(lc.inoperative_phases(), 1);
        assert!((lc.operative().mean() - 34.62).abs() < 0.05);
        assert!((lc.breakdown_rate() - 0.0289).abs() < 3e-4);
        assert!((lc.repair_rate() - 25.0).abs() < 1e-12);
        // Availability ≈ 25/(25+0.0289) ≈ 0.99885
        assert!((lc.availability() - 0.99885).abs() < 1e-4);
        // Phase probabilities sum to 1.
        let total: f64 = (0..2).map(|j| lc.operative_phase_probability(j)).sum::<f64>()
            + lc.inoperative_phase_probability(0);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_lifecycle() {
        let lc = ServerLifecycle::exponential(0.05, 2.0).unwrap();
        assert_eq!(lc.operative_phases(), 1);
        assert_eq!(lc.inoperative_phases(), 1);
        assert!((lc.availability() - 2.0 / 2.05).abs() < 1e-12);
        assert!(ServerLifecycle::exponential(-1.0, 2.0).is_err());
    }

    #[test]
    fn config_validation() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        assert!(SystemConfig::new(0, 1.0, 1.0, lc.clone()).is_err());
        assert!(SystemConfig::new(2, 0.0, 1.0, lc.clone()).is_err());
        assert!(SystemConfig::new(2, 1.0, f64::NAN, lc.clone()).is_err());
        assert!(SystemConfig::new(2, 1.0, 1.0, lc).is_ok());
    }

    #[test]
    fn stability_condition_matches_paper_formula() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        // With availability ≈ 0.99885, 9 servers carry ≈ 8.99 Erlangs.
        let stable = SystemConfig::new(9, 8.5, 1.0, lc.clone()).unwrap();
        assert!(stable.is_stable());
        assert!(stable.ensure_stable().is_ok());
        let unstable = SystemConfig::new(8, 8.5, 1.0, lc).unwrap();
        assert!(!unstable.is_stable());
        assert!(matches!(unstable.ensure_stable(), Err(ModelError::Unstable { .. })));
    }

    #[test]
    fn environment_state_count_matches_formula() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        // n = 2, m = 1: s = (N+2)(N+1)/2.
        for n in [1usize, 2, 5, 10, 17] {
            let cfg = SystemConfig::new(n, 1.0, 1.0, lc.clone()).unwrap();
            assert_eq!(cfg.environment_states(), (n + 2) * (n + 1) / 2);
        }
    }

    #[test]
    fn with_servers_and_arrival_rate() {
        let lc = ServerLifecycle::paper_fitted().unwrap();
        let cfg = SystemConfig::new(10, 8.0, 1.0, lc).unwrap();
        let cfg12 = cfg.with_servers(12).unwrap();
        assert_eq!(cfg12.servers(), 12);
        assert_eq!(cfg12.arrival_rate(), 8.0);
        let cfg_fast = cfg.with_arrival_rate(9.5).unwrap();
        assert_eq!(cfg_fast.arrival_rate(), 9.5);
        assert!(cfg.with_servers(0).is_err());
        assert!((cfg.utilisation() - 8.0 / cfg.effective_servers()).abs() < 1e-12);
    }

    #[test]
    fn binomial_coefficients() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(19, 2), 171);
        assert_eq!(binomial(7, 0), 1);
        assert_eq!(binomial(7, 7), 1);
        assert_eq!(binomial(30, 3), 4060);
    }
}
