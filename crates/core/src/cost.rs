//! The cost model of Section 4 and the optimisation over the number of servers.
//!
//! The paper's cost function (equation 22) charges `c₁` per unit time for every job in
//! the system (user dissatisfaction) and `c₂` per unit time for every server deployed
//! (provider expenditure):
//!
//! ```text
//! C = c₁·L + c₂·N .
//! ```
//!
//! The user cost decreases with `N` while the provider cost grows linearly, so for every
//! parameter set there is an optimal number of servers — the content of Figure 5.

use crate::config::SystemConfig;
use crate::parallel::ThreadPool;
use crate::solution::QueueSolver;
use crate::Result;

/// The linear holding/provisioning cost model `C = c₁·L + c₂·N`.
///
/// # Example
///
/// ```
/// use urs_core::CostModel;
///
/// let cost = CostModel::new(4.0, 1.0);
/// assert_eq!(cost.evaluate(10.0, 12), 52.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    holding_cost: f64,
    server_cost: f64,
}

impl CostModel {
    /// Creates a cost model with holding cost `c₁` (per job per unit time) and server
    /// cost `c₂` (per server per unit time).
    pub fn new(holding_cost: f64, server_cost: f64) -> Self {
        CostModel { holding_cost, server_cost }
    }

    /// The cost model used in the paper's Figure 5: `c₁ = 4`, `c₂ = 1` ("waiting is
    /// quite strongly discouraged").
    pub fn paper_figure5() -> Self {
        CostModel::new(4.0, 1.0)
    }

    /// Holding cost `c₁`.
    pub fn holding_cost(&self) -> f64 {
        self.holding_cost
    }

    /// Server cost `c₂`.
    pub fn server_cost(&self) -> f64 {
        self.server_cost
    }

    /// Evaluates `C = c₁·L + c₂·N`.
    pub fn evaluate(&self, mean_queue_length: f64, servers: usize) -> f64 {
        self.holding_cost * mean_queue_length + self.server_cost * servers as f64
    }
}

/// One row of a cost sweep: the number of servers, the mean queue length and the cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// Number of servers `N`.
    pub servers: usize,
    /// Mean number of jobs in the system `L`.
    pub mean_queue_length: f64,
    /// Total cost `C = c₁·L + c₂·N`.
    pub cost: f64,
}

/// The result of sweeping the cost function over a range of server counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CostSweep {
    points: Vec<CostPoint>,
}

impl CostSweep {
    /// Evaluates the cost for every server count in `server_range`, using `solver` for
    /// the performance model.  Server counts for which the system is unstable are
    /// skipped (their cost is effectively infinite).  Grid points are evaluated in
    /// parallel on the default [`ThreadPool`].
    ///
    /// # Errors
    ///
    /// Propagates solver failures other than instability.
    pub fn evaluate(
        solver: &dyn QueueSolver,
        base_config: &SystemConfig,
        cost_model: &CostModel,
        server_range: std::ops::RangeInclusive<usize>,
    ) -> Result<Self> {
        Self::evaluate_with(solver, base_config, cost_model, server_range, &ThreadPool::default())
    }

    /// [`evaluate`](Self::evaluate) with an explicit worker pool.
    ///
    /// # Errors
    ///
    /// Propagates solver failures other than instability (first failing grid point).
    pub fn evaluate_with(
        solver: &dyn QueueSolver,
        base_config: &SystemConfig,
        cost_model: &CostModel,
        server_range: std::ops::RangeInclusive<usize>,
        pool: &ThreadPool,
    ) -> Result<Self> {
        let counts: Vec<usize> = server_range.collect();
        let points = pool.try_par_map(&counts, |&servers| -> Result<Option<CostPoint>> {
            let config = base_config.with_servers(servers)?;
            if !config.is_stable() {
                return Ok(None);
            }
            let l = solver.solve(&config)?.mean_queue_length();
            Ok(Some(CostPoint {
                servers,
                mean_queue_length: l,
                cost: cost_model.evaluate(l, servers),
            }))
        })?;
        Ok(CostSweep { points: points.into_iter().flatten().collect() })
    }

    /// All evaluated points, ordered by server count.
    pub fn points(&self) -> &[CostPoint] {
        &self.points
    }

    /// The point with the minimal cost, if any server count was stable.
    pub fn optimum(&self) -> Option<CostPoint> {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap_or(std::cmp::Ordering::Equal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;
    use crate::spectral::SpectralExpansionSolver;

    #[test]
    fn cost_model_arithmetic() {
        let cost = CostModel::paper_figure5();
        assert_eq!(cost.holding_cost(), 4.0);
        assert_eq!(cost.server_cost(), 1.0);
        assert_eq!(cost.evaluate(5.0, 10), 30.0);
    }

    #[test]
    fn sweep_finds_an_interior_optimum() {
        // A scaled-down version of Figure 5: the cost is high with few servers (large L),
        // high with many servers (server cost), and minimal somewhere in between.
        let lifecycle = ServerLifecycle::paper_fitted().unwrap();
        let base = SystemConfig::new(5, 4.0, 1.0, lifecycle).unwrap();
        let sweep = CostSweep::evaluate(
            &SpectralExpansionSolver::default(),
            &base,
            &CostModel::paper_figure5(),
            5..=12,
        )
        .unwrap();
        assert!(!sweep.points().is_empty());
        let optimum = sweep.optimum().unwrap();
        assert!(optimum.servers > 5 && optimum.servers < 12, "optimum at {}", optimum.servers);
        // Cost is not monotone: the optimum is strictly better than both ends.
        let first = sweep.points().first().unwrap();
        let last = sweep.points().last().unwrap();
        assert!(optimum.cost < first.cost);
        assert!(optimum.cost < last.cost);
    }

    #[test]
    fn unstable_counts_are_skipped() {
        let lifecycle = ServerLifecycle::paper_fitted().unwrap();
        let base = SystemConfig::new(5, 7.0, 1.0, lifecycle).unwrap();
        let sweep = CostSweep::evaluate(
            &SpectralExpansionSolver::default(),
            &base,
            &CostModel::paper_figure5(),
            5..=10,
        )
        .unwrap();
        // N = 5, 6, 7 are unstable for λ = 7 (availability < 1), so they must be absent.
        assert!(sweep.points().iter().all(|p| p.servers >= 8));
    }
}
