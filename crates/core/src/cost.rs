//! The cost model of Section 4 and the optimisation over the number of servers.
//!
//! The paper's cost function (equation 22) charges `c₁` per unit time for every job in
//! the system (user dissatisfaction) and `c₂` per unit time for every server deployed
//! (provider expenditure):
//!
//! ```text
//! C = c₁·L + c₂·N .
//! ```
//!
//! The user cost decreases with `N` while the provider cost grows linearly, so for every
//! parameter set there is an optimal number of servers — the content of Figure 5.

use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::parallel::ThreadPool;
use crate::solution::QueueSolver;
use crate::Result;

/// Rejects a non-finite cost coefficient: NaN/∞ coefficients would silently poison
/// every cost in a sweep and defeat the finite-cost filtering in the optimisers.
fn validate_coefficient(name: &'static str, value: f64) -> Result<()> {
    if !value.is_finite() {
        return Err(ModelError::InvalidParameter {
            name,
            value,
            constraint: "cost coefficients must be finite",
        });
    }
    Ok(())
}

/// The linear holding/provisioning cost model `C = c₁·L + c₂·N`.
///
/// # Example
///
/// ```
/// use urs_core::CostModel;
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let cost = CostModel::new(4.0, 1.0)?;
/// assert_eq!(cost.evaluate(10.0, 12), 52.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    holding_cost: f64,
    server_cost: f64,
}

impl CostModel {
    /// Creates a cost model with holding cost `c₁` (per job per unit time) and server
    /// cost `c₂` (per server per unit time).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when either coefficient is not finite
    /// (a NaN coefficient would otherwise make every swept cost NaN and the optimum
    /// arbitrary).
    pub fn new(holding_cost: f64, server_cost: f64) -> Result<Self> {
        validate_coefficient("holding_cost", holding_cost)?;
        validate_coefficient("server_cost", server_cost)?;
        Ok(CostModel { holding_cost, server_cost })
    }

    /// The cost model used in the paper's Figure 5: `c₁ = 4`, `c₂ = 1` ("waiting is
    /// quite strongly discouraged").
    pub fn paper_figure5() -> Self {
        CostModel { holding_cost: 4.0, server_cost: 1.0 }
    }

    /// Holding cost `c₁`.
    pub fn holding_cost(&self) -> f64 {
        self.holding_cost
    }

    /// Server cost `c₂`.
    pub fn server_cost(&self) -> f64 {
        self.server_cost
    }

    /// Evaluates `C = c₁·L + c₂·N`.
    pub fn evaluate(&self, mean_queue_length: f64, servers: usize) -> f64 {
        self.holding_cost * mean_queue_length + self.server_cost * servers as f64
    }
}

/// The per-class extension of the Section-4 cost model:
/// `C = c₁·L + Σ_j c₂ⱼ·Nⱼ`, with one server price per class.
///
/// With a single class this is *bit-identical* to [`CostModel`] — the sum collapses to
/// `c₂·N` and the expression tree matches [`CostModel::evaluate`] exactly — so the
/// homogeneous cost analyses are unchanged by the extension.  With several classes it
/// prices fast and slow (or fragile and reliable) servers differently, which is what
/// makes the fleet-mix question of [`mix`](crate::mix) non-trivial: the cheapest
/// composition balances holding cost against heterogeneous hardware prices.
///
/// # Example
///
/// ```
/// use urs_core::ClassCostModel;
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// // Fast servers cost 1.4 per unit time, slow ones 1.0.
/// let cost = ClassCostModel::new(4.0, vec![1.4, 1.0])?;
/// assert_eq!(cost.evaluate(10.0, &[2, 3]), 4.0 * 10.0 + 2.0 * 1.4 + 3.0 * 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClassCostModel {
    holding_cost: f64,
    server_costs: Vec<f64>,
}

impl ClassCostModel {
    /// Creates a per-class cost model with holding cost `c₁` and one server price
    /// `c₂ⱼ` per class (aligned with the class order used by the caller).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `server_costs` is empty or any
    /// coefficient is not finite.
    pub fn new(holding_cost: f64, server_costs: Vec<f64>) -> Result<Self> {
        validate_coefficient("holding_cost", holding_cost)?;
        if server_costs.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "server_costs",
                value: 0.0,
                constraint: "at least one per-class server cost is required",
            });
        }
        for cost in &server_costs {
            validate_coefficient("server_cost", *cost)?;
        }
        Ok(ClassCostModel { holding_cost, server_costs })
    }

    /// Lifts a homogeneous [`CostModel`] to `classes` identically priced classes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when `classes == 0`.
    pub fn uniform(model: &CostModel, classes: usize) -> Result<Self> {
        ClassCostModel::new(model.holding_cost(), vec![model.server_cost(); classes])
    }

    /// Holding cost `c₁`.
    pub fn holding_cost(&self) -> f64 {
        self.holding_cost
    }

    /// Per-class server prices `c₂ⱼ`.
    pub fn server_costs(&self) -> &[f64] {
        &self.server_costs
    }

    /// Number of classes this model prices.
    pub fn classes(&self) -> usize {
        self.server_costs.len()
    }

    /// The pure provisioning part `Σ_j c₂ⱼ·Nⱼ` (no holding cost) — the quantity a
    /// hardware budget bounds in the [`mix`](crate::mix) search.
    ///
    /// # Panics
    ///
    /// Panics when `counts.len()` differs from [`classes`](Self::classes).
    pub fn fleet_cost(&self, counts: &[usize]) -> f64 {
        assert_eq!(counts.len(), self.server_costs.len(), "one count per priced class");
        self.server_costs.iter().zip(counts).map(|(c, &n)| *c * n as f64).sum()
    }

    /// Evaluates `C = c₁·L + Σ_j c₂ⱼ·Nⱼ`.
    ///
    /// # Panics
    ///
    /// Panics when `counts.len()` differs from [`classes`](Self::classes).
    pub fn evaluate(&self, mean_queue_length: f64, counts: &[usize]) -> f64 {
        self.holding_cost * mean_queue_length + self.fleet_cost(counts)
    }
}

/// One row of a cost sweep: the number of servers, the mean queue length and the cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// Number of servers `N`.
    pub servers: usize,
    /// Mean number of jobs in the system `L`.
    pub mean_queue_length: f64,
    /// Total cost `C = c₁·L + c₂·N`.
    pub cost: f64,
}

/// The result of sweeping the cost function over a range of server counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CostSweep {
    points: Vec<CostPoint>,
}

impl CostSweep {
    /// Evaluates the cost for every server count in `server_range`, using `solver` for
    /// the performance model.  Server counts for which the system is unstable are
    /// skipped (their cost is effectively infinite).  Grid points are evaluated in
    /// parallel on the default [`ThreadPool`].
    ///
    /// Heterogeneous base configurations are swept by scaling the class mix uniformly
    /// to each total in the range ([`SystemConfig::with_total_servers`], the
    /// largest-remainder apportionment); to optimise the *composition* rather than the
    /// size of a mixed fleet, use the per-class search in [`mix`](crate::mix).
    ///
    /// # Errors
    ///
    /// Propagates solver failures other than instability.
    pub fn evaluate(
        solver: &dyn QueueSolver,
        base_config: &SystemConfig,
        cost_model: &CostModel,
        server_range: std::ops::RangeInclusive<usize>,
    ) -> Result<Self> {
        Self::evaluate_with(solver, base_config, cost_model, server_range, &ThreadPool::default())
    }

    /// [`evaluate`](Self::evaluate) with an explicit worker pool.
    ///
    /// # Errors
    ///
    /// Propagates solver failures other than instability (first failing grid point).
    pub fn evaluate_with(
        solver: &dyn QueueSolver,
        base_config: &SystemConfig,
        cost_model: &CostModel,
        server_range: std::ops::RangeInclusive<usize>,
        pool: &ThreadPool,
    ) -> Result<Self> {
        let counts: Vec<usize> = server_range.collect();
        let points =
            crate::engine::exec::cost_sweep(solver, base_config, cost_model, &counts, pool)?;
        Ok(CostSweep { points })
    }

    /// Wraps pre-computed points (the engine's construction path).
    pub(crate) fn from_points(points: Vec<CostPoint>) -> Self {
        CostSweep { points }
    }

    /// All evaluated points, ordered by server count.
    pub fn points(&self) -> &[CostPoint] {
        &self.points
    }

    /// The point with the minimal *finite* cost, if any server count was stable.
    ///
    /// Points whose cost is NaN or infinite are ignored: a NaN cost admits no order,
    /// so comparing it would make the reported optimum depend on the comparison
    /// sequence rather than on the costs.  Ties between equal finite costs go to the
    /// smallest server count (the points are ordered by `N`).
    pub fn optimum(&self) -> Option<CostPoint> {
        self.points
            .iter()
            .filter(|p| p.cost.is_finite())
            .copied()
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;
    use crate::spectral::SpectralExpansionSolver;

    #[test]
    fn cost_model_arithmetic() {
        let cost = CostModel::paper_figure5();
        assert_eq!(cost.holding_cost(), 4.0);
        assert_eq!(cost.server_cost(), 1.0);
        assert_eq!(cost.evaluate(5.0, 10), 30.0);
        assert_eq!(CostModel::new(4.0, 1.0).unwrap(), cost);
    }

    #[test]
    fn non_finite_coefficients_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(CostModel::new(bad, 1.0).is_err());
            assert!(CostModel::new(4.0, bad).is_err());
            assert!(ClassCostModel::new(bad, vec![1.0]).is_err());
            assert!(ClassCostModel::new(4.0, vec![1.0, bad]).is_err());
        }
        assert!(ClassCostModel::new(4.0, vec![]).is_err());
    }

    #[test]
    fn class_cost_model_matches_homogeneous_model_bit_for_bit() {
        let flat = CostModel::new(4.0, 1.3).unwrap();
        let per_class = ClassCostModel::uniform(&flat, 1).unwrap();
        for (l, n) in [(0.37, 1usize), (12.25, 10), (173.0625, 31), (1e-9, 4)] {
            assert_eq!(per_class.evaluate(l, &[n]).to_bits(), flat.evaluate(l, n).to_bits());
        }
    }

    #[test]
    fn class_cost_model_prices_each_class() {
        let cost = ClassCostModel::new(2.0, vec![1.4, 1.0, 0.25]).unwrap();
        assert_eq!(cost.classes(), 3);
        assert_eq!(cost.holding_cost(), 2.0);
        assert_eq!(cost.server_costs(), &[1.4, 1.0, 0.25]);
        assert_eq!(cost.fleet_cost(&[2, 3, 4]), 2.0 * 1.4 + 3.0 + 1.0);
        assert_eq!(cost.evaluate(5.0, &[2, 3, 4]), 10.0 + 2.0 * 1.4 + 3.0 + 1.0);
    }

    #[test]
    fn optimum_skips_non_finite_costs() {
        // A NaN- or ∞-cost point must never win (or arbitrarily lose) the optimum:
        // the minimum is taken over finite costs only.
        let finite = CostPoint { servers: 7, mean_queue_length: 2.0, cost: 11.0 };
        let sweep = CostSweep {
            points: vec![
                CostPoint { servers: 5, mean_queue_length: f64::NAN, cost: f64::NAN },
                CostPoint { servers: 6, mean_queue_length: 3.0, cost: f64::INFINITY },
                finite,
                CostPoint { servers: 8, mean_queue_length: 2.5, cost: 12.5 },
            ],
        };
        assert_eq!(sweep.optimum(), Some(finite));
        // All-non-finite sweeps report no optimum instead of a poisoned point.
        let poisoned = CostSweep {
            points: vec![CostPoint { servers: 5, mean_queue_length: 1.0, cost: f64::NAN }],
        };
        assert_eq!(poisoned.optimum(), None);
        // Equal finite costs tie towards the smaller fleet.
        let tied = CostSweep {
            points: vec![
                CostPoint { servers: 4, mean_queue_length: 2.0, cost: 9.0 },
                CostPoint { servers: 5, mean_queue_length: 1.0, cost: 9.0 },
            ],
        };
        assert_eq!(tied.optimum().unwrap().servers, 4);
    }

    #[test]
    fn heterogeneous_base_configs_sweep_by_uniform_scaling() {
        use crate::config::ServerClass;
        let steady = ServerClass::new(2, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap();
        let fast =
            ServerClass::new(1, 1.5, ServerLifecycle::exponential(0.1, 2.0).unwrap()).unwrap();
        let base = SystemConfig::heterogeneous(4.0, vec![steady, fast]).unwrap();
        let sweep = CostSweep::evaluate(
            &SpectralExpansionSolver::default(),
            &base,
            &CostModel::paper_figure5(),
            5..=9,
        )
        .unwrap();
        assert!(!sweep.points().is_empty());
        // Each point solved the uniformly scaled mix at exactly the requested total.
        for point in sweep.points() {
            let scaled = base.with_total_servers(point.servers).unwrap();
            assert_eq!(scaled.servers(), point.servers);
            assert!(!scaled.is_homogeneous(), "2:1 mixes stay mixed for N >= 5");
        }
        assert!(sweep.optimum().is_some());
    }

    #[test]
    fn sweep_finds_an_interior_optimum() {
        // A scaled-down version of Figure 5: the cost is high with few servers (large L),
        // high with many servers (server cost), and minimal somewhere in between.
        let lifecycle = ServerLifecycle::paper_fitted().unwrap();
        let base = SystemConfig::new(5, 4.0, 1.0, lifecycle).unwrap();
        let sweep = CostSweep::evaluate(
            &SpectralExpansionSolver::default(),
            &base,
            &CostModel::paper_figure5(),
            5..=12,
        )
        .unwrap();
        assert!(!sweep.points().is_empty());
        let optimum = sweep.optimum().unwrap();
        assert!(optimum.servers > 5 && optimum.servers < 12, "optimum at {}", optimum.servers);
        // Cost is not monotone: the optimum is strictly better than both ends.
        let first = sweep.points().first().unwrap();
        let last = sweep.points().last().unwrap();
        assert!(optimum.cost < first.cost);
        assert!(optimum.cost < last.cost);
    }

    #[test]
    fn unstable_counts_are_skipped() {
        let lifecycle = ServerLifecycle::paper_fitted().unwrap();
        let base = SystemConfig::new(5, 7.0, 1.0, lifecycle).unwrap();
        let sweep = CostSweep::evaluate(
            &SpectralExpansionSolver::default(),
            &base,
            &CostModel::paper_figure5(),
            5..=10,
        )
        .unwrap();
        // N = 5, 6, 7 are unstable for λ = 7 (availability < 1), so they must be absent.
        assert!(sweep.points().iter().all(|p| p.servers >= 8));
    }
}
