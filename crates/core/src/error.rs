//! Error type for model construction and solution.

use std::error::Error;
use std::fmt;

use urs_dist::DistError;
use urs_linalg::LinalgError;

/// Errors produced when building or solving the multi-server breakdown model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A configuration parameter is outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// The queue is not ergodic: the offered load is not smaller than the average number
    /// of operative servers (paper, equation 11).
    Unstable {
        /// Offered load `λ/µ`.
        offered_load: f64,
        /// Steady-state average number of operative servers `N·η/(ξ+η)`.
        effective_servers: f64,
    },
    /// The spectral expansion produced an unexpected number of eigenvalues inside the
    /// unit disk, or otherwise failed to deliver a usable solution.
    SpectralFailure(String),
    /// An iterative solver did not converge.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// The two independent Laplace-transform inversion methods (Euler summation and
    /// fixed Talbot) disagree beyond the declared tolerance, so neither value can be
    /// certified.  Produced by the runtime accuracy check of
    /// [`response`](crate::response).
    InversionDivergence {
        /// The time point at which the inverted values disagree.
        time: f64,
        /// Value produced by Euler summation.
        euler: f64,
        /// Value produced by the fixed-Talbot contour.
        talbot: f64,
        /// The declared agreement tolerance that was exceeded.
        tolerance: f64,
    },
    /// A broken internal invariant that would previously have panicked.  Seeing
    /// this variant is a bug in this crate, but a recoverable one: callers get a
    /// diagnosable error instead of a dead process.
    Internal(&'static str),
    /// An error bubbled up from the linear-algebra layer.
    Linalg(LinalgError),
    /// An error bubbled up from the distribution layer.
    Dist(DistError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter { name, value, constraint } => {
                write!(f, "invalid parameter {name} = {value}: {constraint}")
            }
            ModelError::Unstable { offered_load, effective_servers } => write!(
                f,
                "queue is unstable: offered load {offered_load:.4} is not below the average \
                 number of operative servers {effective_servers:.4}"
            ),
            ModelError::SpectralFailure(msg) => write!(f, "spectral expansion failed: {msg}"),
            ModelError::NoConvergence { algorithm, iterations } => {
                write!(f, "{algorithm} did not converge after {iterations} iterations")
            }
            ModelError::InversionDivergence { time, euler, talbot, tolerance } => write!(
                f,
                "transform inversion methods disagree at t = {time}: Euler {euler:.12e} vs \
                 Talbot {talbot:.12e} exceeds tolerance {tolerance:.3e}"
            ),
            ModelError::Internal(invariant) => {
                write!(f, "internal invariant violated (please report): {invariant}")
            }
            ModelError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            ModelError::Dist(e) => write!(f, "distribution error: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Linalg(e) => Some(e),
            ModelError::Dist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ModelError {
    fn from(e: LinalgError) -> Self {
        ModelError::Linalg(e)
    }
}

impl From<urs_linalg::WorkerPanic> for ModelError {
    /// A contained worker panic surfaces as [`LinalgError::WorkerPanic`]; this impl
    /// lets [`ThreadPool::try_par_map`](crate::ThreadPool::try_par_map) convert panics
    /// directly into the solver error type.
    fn from(p: urs_linalg::WorkerPanic) -> Self {
        ModelError::Linalg(p.into())
    }
}

impl From<DistError> for ModelError {
    fn from(e: DistError) -> Self {
        ModelError::Dist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ModelError::InvalidParameter { name: "servers", value: 0.0, constraint: "≥ 1" };
        assert!(e.to_string().contains("servers"));
        let e = ModelError::Unstable { offered_load: 9.0, effective_servers: 8.5 };
        assert!(e.to_string().contains("unstable"));
        assert!(ModelError::SpectralFailure("missing eigenvalue".into())
            .to_string()
            .contains("missing eigenvalue"));
        let e = ModelError::NoConvergence { algorithm: "R iteration", iterations: 500 };
        assert!(e.to_string().contains("R iteration"));
        let e =
            ModelError::InversionDivergence { time: 2.0, euler: 0.5, talbot: 0.6, tolerance: 1e-8 };
        assert!(e.to_string().contains("disagree"));
    }

    #[test]
    fn conversions_preserve_source() {
        let lin: ModelError = LinalgError::Singular { pivot: 3 }.into();
        assert!(lin.source().is_some());
        let dist: ModelError = DistError::InsufficientData("x".into()).into();
        assert!(dist.to_string().contains("distribution"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ModelError>();
    }
}
