//! Capacity-planning questions: "what is the minimum number of servers that ensures a
//! given quality of service?"
//!
//! This answers the second question posed in the paper's introduction and reproduced in
//! Figure 9, where the average response time is plotted against the number of servers
//! and the smallest `N` meeting a response-time target is read off the curve.

use crate::config::SystemConfig;
use crate::parallel::ThreadPool;
use crate::solution::QueueSolver;
use crate::Result;

/// One row of a provisioning sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvisioningPoint {
    /// Number of servers `N`.
    pub servers: usize,
    /// Mean queue length `L`.
    pub mean_queue_length: f64,
    /// Mean response time `W = L/λ`.
    pub mean_response_time: f64,
}

/// The result of sweeping the performance model over a range of server counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvisioningSweep {
    points: Vec<ProvisioningPoint>,
}

impl ProvisioningSweep {
    /// Evaluates the performance for every server count in `server_range`; unstable
    /// counts are skipped.  Grid points are evaluated in parallel on the default
    /// [`ThreadPool`].
    ///
    /// Heterogeneous base configurations are swept by scaling the class mix uniformly
    /// to each total ([`SystemConfig::with_total_servers`]); per-class provisioning
    /// decisions belong to the [`mix`](crate::mix) search.
    ///
    /// # Errors
    ///
    /// Propagates solver failures other than instability.
    pub fn evaluate(
        solver: &dyn QueueSolver,
        base_config: &SystemConfig,
        server_range: std::ops::RangeInclusive<usize>,
    ) -> Result<Self> {
        Self::evaluate_with(solver, base_config, server_range, &ThreadPool::default())
    }

    /// [`evaluate`](Self::evaluate) with an explicit worker pool.
    ///
    /// # Errors
    ///
    /// Propagates solver failures other than instability (first failing grid point).
    pub fn evaluate_with(
        solver: &dyn QueueSolver,
        base_config: &SystemConfig,
        server_range: std::ops::RangeInclusive<usize>,
        pool: &ThreadPool,
    ) -> Result<Self> {
        let counts: Vec<usize> = server_range.collect();
        let points = crate::engine::exec::provisioning_sweep(solver, base_config, &counts, pool)?;
        Ok(ProvisioningSweep { points })
    }

    /// Wraps pre-computed points (the engine's construction path).
    pub(crate) fn from_points(points: Vec<ProvisioningPoint>) -> Self {
        ProvisioningSweep { points }
    }

    /// All evaluated points, ordered by server count.
    pub fn points(&self) -> &[ProvisioningPoint] {
        &self.points
    }

    /// The smallest number of servers whose mean response time does not exceed
    /// `target`, if any.
    pub fn min_servers_for_response_time(&self, target: f64) -> Option<usize> {
        self.points.iter().find(|p| p.mean_response_time <= target).map(|p| p.servers)
    }

    /// The smallest number of servers whose mean queue length does not exceed `target`,
    /// if any.
    pub fn min_servers_for_queue_length(&self, target: f64) -> Option<usize> {
        self.points.iter().find(|p| p.mean_queue_length <= target).map(|p| p.servers)
    }
}

/// Convenience wrapper answering the Figure 9 question directly: the minimum number of
/// servers (searched in `server_range`) for which the mean response time is at most
/// `target_response_time`.
///
/// # Errors
///
/// Propagates solver failures other than instability.
pub fn min_servers_for_response_time(
    solver: &dyn QueueSolver,
    base_config: &SystemConfig,
    server_range: std::ops::RangeInclusive<usize>,
    target_response_time: f64,
) -> Result<Option<usize>> {
    Ok(ProvisioningSweep::evaluate(solver, base_config, server_range)?
        .min_servers_for_response_time(target_response_time))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;
    use crate::spectral::SpectralExpansionSolver;

    #[test]
    fn response_time_decreases_with_servers() {
        let lifecycle = ServerLifecycle::paper_fitted().unwrap();
        let base = SystemConfig::new(8, 6.0, 1.0, lifecycle).unwrap();
        let sweep = ProvisioningSweep::evaluate(&SpectralExpansionSolver::default(), &base, 7..=12)
            .unwrap();
        let points = sweep.points();
        assert!(points.len() >= 4);
        for pair in points.windows(2) {
            assert!(
                pair[1].mean_response_time <= pair[0].mean_response_time + 1e-9,
                "W should be non-increasing in N"
            );
        }
    }

    #[test]
    fn min_servers_queries() {
        let lifecycle = ServerLifecycle::paper_fitted().unwrap();
        let base = SystemConfig::new(8, 6.0, 1.0, lifecycle).unwrap();
        let sweep = ProvisioningSweep::evaluate(&SpectralExpansionSolver::default(), &base, 7..=13)
            .unwrap();
        // A generous target is achieved by the smallest stable count; an impossible one
        // by none.
        let generous = sweep.min_servers_for_response_time(100.0);
        assert_eq!(generous, Some(sweep.points()[0].servers));
        assert_eq!(sweep.min_servers_for_response_time(1e-6), None);
        let by_queue = sweep.min_servers_for_queue_length(1000.0);
        assert_eq!(by_queue, Some(sweep.points()[0].servers));
        // The convenience function agrees with the sweep.
        let direct = min_servers_for_response_time(
            &SpectralExpansionSolver::default(),
            &base,
            7..=13,
            100.0,
        )
        .unwrap();
        assert_eq!(direct, generous);
    }

    #[test]
    fn heterogeneous_base_configs_are_scaled_not_rejected() {
        use crate::config::ServerClass;
        let steady = ServerClass::new(2, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap();
        let fast =
            ServerClass::new(1, 1.5, ServerLifecycle::exponential(0.1, 2.0).unwrap()).unwrap();
        let base = SystemConfig::heterogeneous(4.5, vec![steady, fast]).unwrap();
        let sweep =
            ProvisioningSweep::evaluate(&SpectralExpansionSolver::default(), &base, 5..=9).unwrap();
        assert!(!sweep.points().is_empty());
        for pair in sweep.points().windows(2) {
            assert!(
                pair[1].mean_response_time <= pair[0].mean_response_time + 1e-9,
                "W should be non-increasing in N for the scaled mix"
            );
        }
        // The provisioning question is answerable on the mixed fleet.
        assert!(sweep.min_servers_for_response_time(100.0).is_some());
    }

    #[test]
    fn tighter_targets_need_more_servers() {
        let lifecycle = ServerLifecycle::paper_fitted().unwrap();
        let base = SystemConfig::new(8, 7.5, 1.0, lifecycle).unwrap();
        let sweep = ProvisioningSweep::evaluate(&SpectralExpansionSolver::default(), &base, 8..=13)
            .unwrap();
        let loose = sweep.min_servers_for_response_time(3.0);
        let tight = sweep.min_servers_for_response_time(1.2);
        if let (Some(loose), Some(tight)) = (loose, tight) {
            assert!(tight >= loose);
        } else {
            panic!("both targets should be achievable within the range");
        }
    }
}
