//! The exact spectral-expansion solution (Section 3.1 of the paper).
//!
//! For queue lengths `j ≥ N` the balance equations form the constant-coefficient
//! difference equation `v_j Q0 + v_{j+1} Q1 + v_{j+2} Q2 = 0`.  Its bounded solutions
//! are spanned by `u_k z_k^j` where `z_k` are the eigenvalues of the characteristic
//! matrix polynomial `Q(z)` inside the unit disk and `u_k` the corresponding left
//! eigenvectors; ergodicity guarantees exactly `s` such eigenvalues.  The unknown
//! boundary vectors `v_0 … v_{N−1}` and the expansion coefficients `γ_k` follow from
//! the level-`0..N` balance equations plus normalisation.
//!
//! Implementation notes:
//!
//! * the eigenvalues come from the companion linearisation in
//!   [`urs_linalg::QuadraticEigenProblem`] (Francis QR under the hood);
//! * the boundary equations are assembled as a complex block-tridiagonal system with
//!   `N+1` block rows (the last block holds the `γ` coefficients) and solved by block
//!   elimination with a dense fallback;
//! * instead of replacing an equation by the normalisation condition (which would
//!   destroy the banded structure), one balance equation is replaced by pinning the
//!   probability of a well-chosen reference state to 1; the whole solution is rescaled
//!   afterwards.  Any single balance equation is redundant, so this is exact.

use std::sync::Arc;

use urs_linalg::{BlockTridiagonal, CMatrix, Complex, LinalgError, Matrix};

use crate::cache::SolverCache;
use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::parallel::ThreadPool;
use crate::qbd::QbdMatrices;
use crate::solution::{QueueSolution, QueueSolver};
use crate::Result;

/// Options controlling the spectral-expansion solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralOptions {
    /// Eigenvalues with `|z| < 1 − unit_disk_margin` are considered to lie inside the
    /// unit disk.  The margin guards against the eigenvalue at 1 (which always exists
    /// for the conservative generator) being misclassified due to rounding.
    pub unit_disk_margin: f64,
    /// Maximum tolerated imaginary part (relative to 1) surviving in probabilities.
    pub reality_tolerance: f64,
    /// Maximum tolerated eigen-residual `‖u Q(z)‖∞` relative to the matrix scale.
    pub residual_tolerance: f64,
}

impl Default for SpectralOptions {
    fn default() -> Self {
        SpectralOptions {
            unit_disk_margin: 1e-9,
            reality_tolerance: 1e-6,
            residual_tolerance: 1e-6,
        }
    }
}

/// The exact solver based on spectral expansion.
///
/// # Example
///
/// ```
/// use urs_core::{QueueSolver, ServerLifecycle, SpectralExpansionSolver, SystemConfig};
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let config = SystemConfig::new(10, 8.0, 1.0, ServerLifecycle::paper_fitted()?)?;
/// let solution = SpectralExpansionSolver::default().solve(&config)?;
/// let l = solution.mean_queue_length();
/// assert!(l > 8.0 && l < 40.0);
/// # Ok(())
/// # }
/// ```
///
/// For parameter sweeps, attach a shared [`SolverCache`] with
/// [`with_cache`](Self::with_cache): grid points that differ only in the arrival rate
/// then reuse the λ-independent QBD skeleton, and repeated configurations are answered
/// from the cache outright — bit-identically in both cases.
#[derive(Debug, Clone)]
pub struct SpectralExpansionSolver {
    options: SpectralOptions,
    cache: Option<Arc<SolverCache>>,
    pool: ThreadPool,
}

impl Default for SpectralExpansionSolver {
    /// Default options, no cache, and a serial pool (parallelism is strictly opt-in
    /// via [`with_pool`](Self::with_pool)).
    fn default() -> Self {
        SpectralExpansionSolver::new(SpectralOptions::default())
    }
}

impl SpectralExpansionSolver {
    /// Creates a solver with explicit options.
    pub fn new(options: SpectralOptions) -> Self {
        SpectralExpansionSolver { options, cache: None, pool: ThreadPool::serial() }
    }

    /// Attaches a cache of QBD skeletons and complete solutions.  The same cache can
    /// be shared by several solvers and by every thread of a parallel sweep.
    pub fn with_cache(mut self, cache: Arc<SolverCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Runs the solver's internal kernels — eigenvector extraction, the boundary
    /// block-tridiagonal elimination, and the dense multiplies feeding it — on `pool`.
    ///
    /// Every parallel path preserves the serial accumulation order, so the solution
    /// is bit-identical to the default serial solver at any thread count.
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<SolverCache>> {
        self.cache.as_ref()
    }

    /// Solves the model, returning the concrete [`SpectralSolution`] (richer than the
    /// boxed trait object returned via [`QueueSolver::solve`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unstable`] for non-ergodic configurations and
    /// [`ModelError::SpectralFailure`] when the eigenvalue count or the residuals do
    /// not meet expectations (typically for very large, ill-conditioned systems — the
    /// situation the paper's geometric approximation is designed for).
    pub fn solve_detailed(&self, config: &SystemConfig) -> Result<SpectralSolution> {
        config.ensure_stable()?;
        match &self.cache {
            Some(cache) => {
                if let Some(hit) = cache.lookup_solution(config, &self.options)? {
                    return Ok((*hit).clone());
                }
                let qbd =
                    QbdMatrices::with_skeleton(cache.skeleton(config)?, config.arrival_rate());
                let solution = self.solve_qbd(config, &qbd)?;
                cache.store_solution(config, &self.options, solution.clone())?;
                Ok(solution)
            }
            None => {
                let qbd = QbdMatrices::new(config)?;
                self.solve_qbd(config, &qbd)
            }
        }
    }

    /// Runs the spectral expansion on prebuilt QBD matrices.
    fn solve_qbd(&self, config: &SystemConfig, qbd: &QbdMatrices) -> Result<SpectralSolution> {
        let s = qbd.order();

        // 1. Eigenvalues and left eigenvectors of Q(z) inside the unit disk.  A
        // cache-sharing GeometricApproximation may already have factorised this
        // (skeleton, λ, margin) — e.g. during the screening pass of a mix search whose
        // top candidates are then verified exactly — in which case the cached
        // eigenvalues (and any cached eigenvectors, typically the dominant one) are
        // reused and only the missing eigenvectors are extracted.  Both producers
        // compute the same deterministic quantities from the same skeleton, so the
        // cached and freshly factorised paths are bit-identical.
        let problem = urs_linalg::QuadraticEigenProblem::new(qbd.q0(), qbd.q1(), qbd.q2())?;
        let cached_entry = match &self.cache {
            Some(cache) => cache
                .lookup_eigensystem(config, self.options.unit_disk_margin)?
                .filter(|entry| entry.eigenvalues.len() == s),
            None => None,
        };
        // Deterministic order: by modulus, then by real/imaginary part.
        let order = |a: &Complex, b: &Complex| {
            a.abs().total_cmp(&b.abs()).then(a.re.total_cmp(&b.re)).then(a.im.total_cmp(&b.im))
        };
        // The eigenvalue list paired with any already-extracted left eigenvectors.
        let mut inside: Vec<(Complex, Option<Vec<Complex>>)> = match cached_entry {
            Some(entry) => {
                entry.eigenvalues.iter().copied().zip(entry.eigenvectors.iter().cloned()).collect()
            }
            None => problem
                .eigenvalues_inside_unit_disk(self.options.unit_disk_margin)?
                .iter()
                .map(|e| (e.z, None))
                .collect(),
        };
        if inside.len() != s {
            return Err(ModelError::SpectralFailure(format!(
                "expected {s} eigenvalues strictly inside the unit disk, found {}",
                inside.len()
            )));
        }
        inside.sort_by(|a, b| order(&a.0, &b.0));
        let scale = qbd.q1().max_abs().max(1.0);
        // Each eigenvector extraction is independent, so the sorted list fans out
        // across the pool.  When the QBD blocks are banded-profitable the extraction
        // is shifted inverse iteration on one packed banded LU of Q(z)ᵀ per
        // eigenvalue (O(s·b²) instead of the dense O(s³) null-space path, which
        // remains the certified fallback); both routes are deterministic, so cached
        // vectors from either agree bitwise with a fresh solve.  `try_par_map`
        // reports the smallest-indexed failure, which is exactly the one a serial
        // loop over the same sorted order would have hit first.
        let extracted: Vec<(Complex, Vec<Complex>)> =
            self.pool.try_par_map(&inside, |(z, cached_u)| -> Result<(Complex, Vec<Complex>)> {
                let u = match cached_u {
                    Some(u) => u.clone(),
                    None => problem.left_eigenvector(*z)?,
                };
                let residual = problem.residual(*z, &u)?;
                if residual > self.options.residual_tolerance * scale {
                    return Err(ModelError::SpectralFailure(format!(
                        "left eigenvector residual {residual:.3e} at z = {z} exceeds tolerance",
                    )));
                }
                Ok((*z, u))
            })?;
        let mut eigenvalues = Vec::with_capacity(s);
        let mut eigenvectors: Vec<Vec<Complex>> = Vec::with_capacity(s);
        for (z, u) in extracted {
            eigenvalues.push(z);
            eigenvectors.push(u);
        }
        // Publish the factorised eigensystem so a cache-sharing
        // GeometricApproximation solving the same (skeleton, λ) does not repeat the
        // quadratic eigensolve (Figures 8 and 9 compare the two per grid point).
        if let Some(cache) = &self.cache {
            cache.store_eigensystem(
                config,
                self.options.unit_disk_margin,
                crate::cache::EigenEntry {
                    eigenvalues: eigenvalues.clone(),
                    eigenvectors: eigenvectors.iter().cloned().map(Some).collect(),
                },
            )?;
        }

        // 2. Boundary equations: block-tridiagonal system over v_0..v_{N-1} and γ.
        // The pin mode (largest stationary environment probability) is λ-independent
        // and precomputed in the skeleton.
        let pin_mode = qbd.skeleton().pin_mode();
        let boundary = solve_boundary(qbd, &eigenvalues, &eigenvectors, pin_mode, &self.pool)?;

        // 3. Assemble the solution and normalise.
        SpectralSolution::assemble(config, qbd, eigenvalues, eigenvectors, boundary, self.options)
    }
}

impl QueueSolver for SpectralExpansionSolver {
    fn name(&self) -> &'static str {
        "spectral expansion (exact)"
    }

    fn solve(&self, config: &SystemConfig) -> Result<Box<dyn QueueSolution>> {
        Ok(Box::new(self.solve_detailed(config)?))
    }
}

/// Raw (un-normalised) boundary unknowns: `v_0..v_{N-1}` followed by the coefficient
/// vector `γ`.
struct BoundaryUnknowns {
    levels: Vec<Vec<Complex>>,
    gamma: Vec<Complex>,
}

/// Builds and solves the boundary block-tridiagonal system.
fn solve_boundary(
    qbd: &QbdMatrices,
    eigenvalues: &[Complex],
    eigenvectors: &[Vec<Complex>],
    pin_mode: usize,
    pool: &ThreadPool,
) -> Result<BoundaryUnknowns> {
    let s = qbd.order();
    let servers = qbd.servers();
    let block_rows = servers + 1;

    // U_mat(j): s×s complex matrix whose k-th row is u_k · z_k^j.
    let u_mat = |level: u32| -> CMatrix {
        CMatrix::from_fn(s, s, |k, i| eigenvectors[k][i] * eigenvalues[k].powi(level))
    };
    // C is diagonal, so every U·C product below is a column scaling (`O(s²)`)
    // instead of a dense complex matmul (`O(s³)`).
    let c_diag = qbd.c().diagonal();
    let u_mat_c = |level: u32| -> Result<CMatrix> {
        let mut m = u_mat(level);
        m.scale_columns_real(&c_diag)?;
        Ok(m)
    };

    let b = qbd.b();
    let to_cmatrix = CMatrix::from_real;

    let mut system = BlockTridiagonal::new(block_rows, s)?;

    for j in 0..block_rows {
        if j < servers {
            // Plain boundary level j: diagonal block (Dᴬ+B+C_j−A)ᵀ.
            let mut diag_t = transpose_to_cmatrix(&qbd.local_matrix(j));
            let mut rhs = vec![Complex::ZERO; s];
            // Sub-diagonal block −Bᵀ (B is diagonal, so transpose is itself).
            if j > 0 {
                system.set_lower(j, &to_cmatrix(b) * Complex::from_real(-1.0))?;
            }
            // Super-diagonal: −C_{j+1}ᵀ towards v_{j+1}, or towards γ when j = N−1.
            if j + 1 < servers {
                system.set_upper(
                    j,
                    &transpose_to_cmatrix(qbd.c_level(j + 1)) * Complex::from_real(-1.0),
                )?;
            } else {
                // Coupling to γ through v_N = γ·U_mat(N):  −(U_mat(N)·C)ᵀ.
                let coupling = u_mat_c(servers as u32)?;
                system.set_upper(j, &coupling.transpose() * Complex::from_real(-1.0))?;
            }
            if j == 0 {
                // Replace the balance equation of the pin state by  v_0[pin] = 1.
                for col in 0..s {
                    diag_t[(pin_mode, col)] =
                        if col == pin_mode { Complex::ONE } else { Complex::ZERO };
                }
                if servers > 1 {
                    // Zero the pin row of the super-diagonal block as well.
                    let mut upper = transpose_to_cmatrix(qbd.c_level(1));
                    for col in 0..s {
                        upper[(pin_mode, col)] = Complex::ZERO;
                    }
                    system.set_upper(0, &upper * Complex::from_real(-1.0))?;
                    // set_upper(0) may have been set above for the γ coupling when N = 1;
                    // here servers > 1 so this is the plain −C_1ᵀ block with a zeroed row.
                } else {
                    // N = 1: the super-diagonal couples to γ; zero its pin row too.
                    let coupling = u_mat_c(1)?;
                    let mut upper = coupling.transpose();
                    for col in 0..s {
                        upper[(pin_mode, col)] = Complex::ZERO;
                    }
                    system.set_upper(0, &upper * Complex::from_real(-1.0))?;
                }
                rhs[pin_mode] = Complex::ONE;
            }
            system.set_diagonal(j, diag_t)?;
            system.set_rhs(j, rhs)?;
        } else {
            // Level N: −v_{N−1}·B + γ·[U_N·(Dᴬ+B+C−A) − U_{N+1}·C] = 0.
            system.set_lower(j, &to_cmatrix(b) * Complex::from_real(-1.0))?;
            let mut term1 = CMatrix::zeros(s, s);
            term1.gemm_with(
                Complex::ONE,
                &u_mat(servers as u32),
                &to_cmatrix(&qbd.local_matrix(servers)),
                Complex::ZERO,
                pool,
            )?;
            let term2 = u_mat_c(servers as u32 + 1)?;
            let diag = (&term1 - &term2).transpose();
            system.set_diagonal(j, diag)?;
            system.set_rhs(j, vec![Complex::ZERO; s])?;
        }
    }

    let solution = match system.solve_with(pool) {
        Ok(x) => x,
        Err(LinalgError::Singular { .. }) => system.solve_dense()?,
        Err(e) => return Err(e.into()),
    };
    let gamma = solution[servers].clone();
    let levels = solution[..servers].to_vec();
    Ok(BoundaryUnknowns { levels, gamma })
}

/// Transposes a real matrix into a complex one.
fn transpose_to_cmatrix(m: &Matrix) -> CMatrix {
    CMatrix::from_fn(m.cols(), m.rows(), |i, j| Complex::from_real(m[(j, i)]))
}

/// One term of the spectral expansion: the eigenvalue `z_k` together with the
/// coefficient-weighted eigenvector `w_k = γ_k·u_k` and its component sum.
#[derive(Debug, Clone)]
struct SpectralTerm {
    z: Complex,
    weighted_vector: Vec<Complex>,
    weighted_sum: Complex,
}

/// The exact steady-state solution produced by [`SpectralExpansionSolver`].
#[derive(Debug, Clone)]
pub struct SpectralSolution {
    servers: usize,
    arrival_rate: f64,
    mode_count: usize,
    /// Probability vectors of the boundary levels `0..N-1`.
    boundary: Vec<Vec<f64>>,
    terms: Vec<SpectralTerm>,
    mean_queue_length: f64,
    max_imaginary_residue: f64,
}

impl SpectralSolution {
    fn assemble(
        config: &SystemConfig,
        qbd: &QbdMatrices,
        eigenvalues: Vec<Complex>,
        eigenvectors: Vec<Vec<Complex>>,
        boundary: BoundaryUnknowns,
        options: SpectralOptions,
    ) -> Result<Self> {
        let s = qbd.order();
        let servers = qbd.servers();

        // Fold the coefficients γ_k into the eigenvectors.
        let mut terms: Vec<SpectralTerm> = eigenvalues
            .iter()
            .zip(&eigenvectors)
            .zip(&boundary.gamma)
            .map(|((z, u), gamma)| {
                let weighted_vector: Vec<Complex> = u.iter().map(|c| *c * *gamma).collect();
                let weighted_sum = weighted_vector.iter().copied().sum();
                SpectralTerm { z: *z, weighted_vector, weighted_sum }
            })
            .collect();

        // Total (un-normalised) probability mass.
        let boundary_mass: Complex =
            boundary.levels.iter().map(|v| v.iter().copied().sum::<Complex>()).sum();
        let tail_mass: Complex = terms
            .iter()
            .map(|t| t.weighted_sum * t.z.powi(servers as u32) / (Complex::ONE - t.z))
            .sum();
        let total = boundary_mass + tail_mass;
        if total.abs() < 1e-300 {
            return Err(ModelError::SpectralFailure(
                "total probability mass vanished during normalisation".into(),
            ));
        }
        let max_imag = (total.im / total.abs()).abs();

        // Normalise: divide every unknown by the total mass.
        let boundary_real: Vec<Vec<f64>> =
            boundary.levels.iter().map(|v| v.iter().map(|c| (*c / total).re).collect()).collect();
        for term in &mut terms {
            for w in &mut term.weighted_vector {
                *w /= total;
            }
            term.weighted_sum /= total;
        }

        // Track how far from real the normalised solution is.
        let mut max_imaginary_residue = max_imag;
        for (level, complex_level) in boundary.levels.iter().enumerate() {
            for c in complex_level {
                let normalised = *c / total;
                let residue = normalised.im.abs();
                if residue > max_imaginary_residue {
                    max_imaginary_residue = residue;
                }
            }
            let _ = level;
        }
        if max_imaginary_residue > options.reality_tolerance {
            return Err(ModelError::SpectralFailure(format!(
                "probabilities retain imaginary residue {max_imaginary_residue:.3e}"
            )));
        }

        // Mean queue length:
        //   L = Σ_{j<N} j·(v_j·1) + Σ_k w_k_sum · z^N (N − (N−1)z) / (1−z)².
        let boundary_part: f64 =
            boundary_real.iter().enumerate().map(|(j, v)| j as f64 * v.iter().sum::<f64>()).sum();
        let tail_part: Complex = terms
            .iter()
            .map(|t| {
                let one_minus = Complex::ONE - t.z;
                t.weighted_sum
                    * t.z.powi(servers as u32)
                    * (Complex::from_real(servers as f64) - t.z * (servers as f64 - 1.0))
                    / (one_minus * one_minus)
            })
            .sum();
        let mean_queue_length = boundary_part + tail_part.re;

        Ok(SpectralSolution {
            servers,
            arrival_rate: config.arrival_rate(),
            mode_count: s,
            boundary: boundary_real,
            terms,
            mean_queue_length,
            max_imaginary_residue,
        })
    }

    /// The eigenvalues `z_k` of the characteristic polynomial inside the unit disk,
    /// sorted by increasing modulus.
    pub fn eigenvalues(&self) -> Vec<Complex> {
        self.terms.iter().map(|t| t.z).collect()
    }

    /// The dominant (largest-modulus) eigenvalue; it is real and positive for an
    /// ergodic queue and governs the geometric tail decay.
    pub fn dominant_eigenvalue(&self) -> f64 {
        self.terms.last().map(|t| t.z.re).unwrap_or(0.0)
    }

    /// The largest imaginary residue observed when converting the (theoretically real)
    /// probabilities from complex arithmetic; a solver-quality diagnostic.
    pub fn max_imaginary_residue(&self) -> f64 {
        self.max_imaginary_residue
    }

    /// Number of servers `N` of the solved configuration.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Joint probabilities of the boundary levels `0..N−1` (level → mode → probability).
    pub fn boundary_levels(&self) -> &[Vec<f64>] {
        &self.boundary
    }
}

impl QueueSolution for SpectralSolution {
    fn mode_count(&self) -> usize {
        self.mode_count
    }

    fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    fn state_probability(&self, mode: usize, level: usize) -> f64 {
        if mode >= self.mode_count {
            return 0.0;
        }
        if level < self.servers {
            self.boundary[level][mode]
        } else {
            self.terms.iter().map(|t| (t.weighted_vector[mode] * t.z.powi(level as u32)).re).sum()
        }
    }

    fn mode_marginal(&self) -> Vec<f64> {
        (0..self.mode_count)
            .map(|mode| {
                let boundary: f64 = self.boundary.iter().map(|v| v[mode]).sum();
                let tail: f64 = self
                    .terms
                    .iter()
                    .map(|t| {
                        (t.weighted_vector[mode] * t.z.powi(self.servers as u32)
                            / (Complex::ONE - t.z))
                            .re
                    })
                    .sum();
                boundary + tail
            })
            .collect()
    }

    fn mean_queue_length(&self) -> f64 {
        self.mean_queue_length
    }

    fn tail_probability(&self, level: usize) -> f64 {
        if level + 1 >= self.servers {
            // P(Z > level) = Σ_k w_sum z^{level+1}/(1−z)
            self.terms
                .iter()
                .map(|t| (t.weighted_sum * t.z.powi(level as u32 + 1) / (Complex::ONE - t.z)).re)
                .sum()
        } else {
            let below: f64 = (0..=level).map(|j| self.level_probability(j)).sum();
            (1.0 - below).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;
    use crate::solution::consistency_violations;

    fn solve(servers: usize, lambda: f64, lifecycle: ServerLifecycle) -> SpectralSolution {
        let config = SystemConfig::new(servers, lambda, 1.0, lifecycle).unwrap();
        SpectralExpansionSolver::default().solve_detailed(&config).unwrap()
    }

    #[test]
    fn mm1_limit_no_breakdowns() {
        // A single server that is essentially always operative: the queue behaves as an
        // M/M/1 with ρ = λ/µ, whose queue-length distribution is geometric.
        let lifecycle = ServerLifecycle::exponential(1e-9, 1e3).unwrap();
        let solution = solve(1, 0.6, lifecycle);
        let rho: f64 = 0.6;
        for j in 0..20 {
            let expected = (1.0 - rho) * rho.powi(j as i32);
            assert!(
                (solution.level_probability(j) - expected).abs() < 1e-6,
                "level {j}: {} vs {expected}",
                solution.level_probability(j)
            );
        }
        assert!((solution.mean_queue_length() - rho / (1.0 - rho)).abs() < 1e-5);
        assert!((solution.dominant_eigenvalue() - rho).abs() < 1e-6);
    }

    #[test]
    fn mm2_limit_matches_erlang_formula() {
        // Two always-operative servers: M/M/2 with λ = 1.2, µ = 1.
        let lifecycle = ServerLifecycle::exponential(1e-9, 1e3).unwrap();
        let solution = solve(2, 1.2, lifecycle);
        // M/M/c closed form for c = 2: p0 = (1-ρ)/(1+ρ) with ρ = λ/(2µ),
        // L = 2ρ + ρ(2ρ)²p0/(2!(1-ρ)²) … use the standard Erlang-C based formula.
        let rho: f64 = 0.6;
        let p0 = (1.0 - rho) / (1.0 + rho);
        let lq = (2.0 * rho).powi(2) * rho * p0 / (2.0 * (1.0 - rho) * (1.0 - rho));
        let l = lq + 2.0 * rho;
        assert!(
            (solution.mean_queue_length() - l).abs() < 1e-4,
            "L = {} vs {l}",
            solution.mean_queue_length()
        );
    }

    #[test]
    fn solution_is_internally_consistent() {
        let solution = solve(3, 2.0, ServerLifecycle::paper_fitted().unwrap());
        let violations = consistency_violations(&solution, 60, 1e-7);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(solution.max_imaginary_residue() < 1e-7);
        assert_eq!(solution.eigenvalues().len(), solution.mode_count());
        assert_eq!(solution.servers(), 3);
        assert_eq!(solution.boundary_levels().len(), 3);
    }

    #[test]
    fn mode_marginal_matches_environment_product_form() {
        // The environment evolves independently of the queue, so the mode marginal must
        // equal the multinomial stationary distribution.
        let lifecycle = ServerLifecycle::paper_fitted().unwrap();
        let config = SystemConfig::new(4, 3.0, 1.0, lifecycle.clone()).unwrap();
        let solution = SpectralExpansionSolver::default().solve_detailed(&config).unwrap();
        let qbd = QbdMatrices::new(&config).unwrap();
        let expected = qbd.modes().stationary_distribution(&lifecycle);
        for (got, want) in solution.mode_marginal().iter().zip(&expected) {
            assert!((got - want).abs() < 1e-6, "mode marginal {got} vs {want}");
        }
    }

    #[test]
    fn unstable_configuration_is_rejected() {
        let lifecycle = ServerLifecycle::paper_fitted().unwrap();
        let config = SystemConfig::new(2, 5.0, 1.0, lifecycle).unwrap();
        assert!(matches!(
            SpectralExpansionSolver::default().solve_detailed(&config),
            Err(ModelError::Unstable { .. })
        ));
    }

    #[test]
    fn single_server_with_breakdowns_matches_truncated_reference() {
        // Cross-checked more broadly in the integration tests; here a small smoke test
        // that probabilities decay geometrically with the dominant eigenvalue.
        let lifecycle = ServerLifecycle::exponential(0.2, 1.0).unwrap();
        let solution = solve(1, 0.5, lifecycle);
        let z = solution.dominant_eigenvalue();
        assert!(z > 0.0 && z < 1.0);
        let p20 = solution.level_probability(20);
        let p21 = solution.level_probability(21);
        assert!((p21 / p20 - z).abs() < 1e-6);
    }

    #[test]
    fn little_law_holds() {
        let solution = solve(5, 3.5, ServerLifecycle::paper_fitted().unwrap());
        assert!((solution.mean_response_time() - solution.mean_queue_length() / 3.5).abs() < 1e-12);
    }

    #[test]
    fn level_probabilities_sum_to_one() {
        let solution = solve(4, 3.0, ServerLifecycle::paper_fitted().unwrap());
        let mut total = 0.0;
        for j in 0..2000 {
            total += solution.level_probability(j);
        }
        total += solution.tail_probability(1999);
        assert!((total - 1.0).abs() < 1e-9, "total probability {total}");
    }
}
