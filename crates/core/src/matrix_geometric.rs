//! The matrix-geometric solution of the same quasi-birth-death process.
//!
//! Besides the spectral expansion, the classical way to solve a QBD process is Neuts's
//! matrix-geometric method: find the minimal non-negative solution `R` of
//! `Q0 + R·Q1 + R²·Q2 = 0`; then `v_{j+1} = v_j·R` for `j ≥ N` and the boundary vectors
//! follow from the level-`0..N` balance equations.  The paper's reference [6]
//! (Mitrani & Chakka 1995) compares the two methods; here the matrix-geometric solver
//! acts as an *independent cross-check* of the spectral expansion — the two must agree
//! to within numerical accuracy on every probability, which the integration tests
//! verify.
//!
//! `R` is computed by **Latouche–Ramaswamy logarithmic reduction**: the first-passage
//! matrix `G` (minimal solution of `Q2 + Q1·G + Q0·G² = 0`) is built by a doubling
//! recursion that squares the effective step every iteration — quadratic convergence,
//! so a dozen iterations replace the thousands of linear-convergence steps of the
//! natural fixed point `R ← −(Q0 + R²·Q2)·Q1⁻¹`, which survives here only as the
//! reference implementation [`MatrixGeometricSolver::rate_matrix_fixed_point`].  All
//! inner products run on the in-place [`gemm`](Matrix::gemm)/LU-solve kernels of
//! `urs-linalg` with a single [`Workspace`], so the iteration allocates nothing and
//! no explicit matrix inverse is ever formed.

use urs_linalg::{
    banded_profitable, BandedLu, BandedMatrix, LinalgError, LuDecomposition, Matrix,
    RealBlockTridiagonal, Workspace,
};

use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::parallel::ThreadPool;
use crate::qbd::QbdMatrices;
use crate::solution::{QueueSolution, QueueSolver};
use crate::Result;

/// Options for the `R`-matrix computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixGeometricOptions {
    /// Convergence tolerance: the logarithmic reduction stops once the first-passage
    /// matrix `G` is stochastic to this accuracy (or the accumulated correction term
    /// underflows it); the fixed-point reference stops on the max-norm change of `R`.
    pub tolerance: f64,
    /// Maximum number of iterations (reduction doublings, or fixed-point steps for
    /// the reference implementation).
    pub max_iterations: usize,
}

impl Default for MatrixGeometricOptions {
    fn default() -> Self {
        MatrixGeometricOptions { tolerance: 1e-13, max_iterations: 100_000 }
    }
}

/// The matrix-geometric solver.
///
/// # Example
///
/// ```
/// use urs_core::{MatrixGeometricSolver, QueueSolver, ServerLifecycle, SystemConfig};
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let config = SystemConfig::new(4, 3.0, 1.0, ServerLifecycle::paper_fitted()?)?;
/// let solution = MatrixGeometricSolver::default().solve(&config)?;
/// assert!(solution.mean_queue_length() > 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixGeometricSolver {
    options: MatrixGeometricOptions,
    pool: ThreadPool,
}

impl Default for MatrixGeometricSolver {
    /// Default options and a serial pool (parallelism is strictly opt-in via
    /// [`with_pool`](Self::with_pool)).
    fn default() -> Self {
        MatrixGeometricSolver::new(MatrixGeometricOptions::default())
    }
}

impl MatrixGeometricSolver {
    /// Creates a solver with explicit iteration options.
    pub fn new(options: MatrixGeometricOptions) -> Self {
        MatrixGeometricSolver { options, pool: ThreadPool::serial() }
    }

    /// Runs the solver's dense kernels — the `gemm` products and blocked-LU trailing
    /// updates of the logarithmic reduction plus the boundary elimination — on
    /// `pool`.  Every parallel path preserves the serial accumulation order, so the
    /// solution is bit-identical to the serial solver at any thread count.
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// Computes the minimal non-negative solution of `Q0 + R·Q1 + R²·Q2 = 0` by
    /// logarithmic reduction.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoConvergence`] if the reduction does not converge within
    /// the configured budget.
    pub fn rate_matrix(&self, qbd: &QbdMatrices) -> Result<Matrix> {
        Ok(self.rate_matrix_with_depth(qbd)?.0)
    }

    /// Computes `R` by Latouche–Ramaswamy logarithmic reduction, returning the
    /// reduction depth alongside (the number of doubling steps; step `k` covers
    /// `2^k` levels of the underlying first-passage expansion).
    ///
    /// The only factorisations are one up-front LU of `−Q1` (reused for both initial
    /// solves) and one LU of `I − U_k` per doubling step; every product runs on the
    /// in-place kernels with workspace-recycled buffers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoConvergence`] if the reduction does not converge within
    /// the configured budget.
    pub fn rate_matrix_with_depth(&self, qbd: &QbdMatrices) -> Result<(Matrix, usize)> {
        let s = qbd.order();
        let q0 = qbd.q0();
        let q2 = qbd.q2();
        let mut ws = Workspace::new();

        // One up-front LU of −Q1 (a strictly diagonally dominant M-matrix), reused
        // via solves for both starting blocks — no explicit inverse.  −Q1 is a band
        // matrix in the mode ordering (|i−j| ≤ N+1), so when the bandwidth clears
        // the crossover the factorisation runs on the packed banded kernel — the
        // banded LU is bit-identical to the dense one on the same pattern, so this
        // routing never changes `R`.
        let mut neg_q1 = qbd.q1();
        neg_q1.scale_mut(-1.0);
        let mut h = ws.real_matrix(s, s); // H_k: "up" block, starts (−Q1)⁻¹·Q0
        let mut l = ws.real_matrix(s, s); // L_k: "down" block, starts (−Q1)⁻¹·Q2
        let (kl, ku) = qbd.q1_bandwidths();
        if banded_profitable(s, kl, ku) {
            let banded = BandedMatrix::from_dense(&neg_q1, kl, ku)?;
            let q1_lu = BandedLu::new_pooled(&banded, &mut ws)?;
            q1_lu.solve_matrix_into(&q0, &mut h)?;
            q1_lu.solve_matrix_into(&q2, &mut l)?;
            q1_lu.recycle(&mut ws);
        } else {
            let q1_lu = LuDecomposition::from_matrix_with(neg_q1, &self.pool)?;
            q1_lu.solve_matrix_into(&q0, &mut h)?;
            q1_lu.solve_matrix_into(&q2, &mut l)?;
        }

        let mut g = l.clone(); // G accumulates the first-passage matrix
        let mut t = h.clone(); // T_k = H_0·H_1⋯H_{k-1}
        let mut u = ws.real_matrix(s, s);
        let mut m = ws.real_matrix(s, s);
        let mut tmp = ws.real_matrix(s, s);

        let mut depth = 0;
        let mut converged = false;
        while depth < self.options.max_iterations {
            depth += 1;
            // U_k = H·L + L·H, then factor I − U_k once for both updates.
            u.gemm_with(1.0, &h, &l, 0.0, &self.pool)?;
            u.gemm_with(1.0, &l, &h, 1.0, &self.pool)?;
            let mut eye_minus_u = ws.real_matrix(s, s);
            eye_minus_u.copy_from(&u)?;
            eye_minus_u.scale_mut(-1.0);
            for i in 0..s {
                eye_minus_u[(i, i)] += 1.0;
            }
            let iu_lu = LuDecomposition::from_matrix_with(eye_minus_u, &self.pool)?;
            // H ← (I−U)⁻¹·H², L ← (I−U)⁻¹·L².
            m.gemm_with(1.0, &h, &h, 0.0, &self.pool)?;
            iu_lu.solve_matrix_into(&m, &mut h)?;
            m.gemm_with(1.0, &l, &l, 0.0, &self.pool)?;
            iu_lu.solve_matrix_into(&m, &mut l)?;
            ws.release_real_matrix(iu_lu.into_matrix());
            // G ← G + T·L, T ← T·H.
            g.gemm_with(1.0, &t, &l, 1.0, &self.pool)?;
            tmp.gemm_with(1.0, &t, &h, 0.0, &self.pool)?;
            std::mem::swap(&mut t, &mut tmp);
            // For an ergodic queue G is stochastic; the correction term T decays
            // quadratically, so either criterion detects convergence scale-free.
            let mut residual = 0.0_f64;
            for row in g.as_slice().chunks_exact(s) {
                residual = residual.max((1.0 - row.iter().sum::<f64>()).abs());
            }
            if residual < self.options.tolerance || t.max_abs() < self.options.tolerance {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(ModelError::NoConvergence {
                algorithm: "matrix-geometric logarithmic reduction",
                iterations: depth,
            });
        }

        // R = Q0·(−U)⁻¹ with U = Q1 + Q0·G: one more LU, one right solve.
        let mut neg_u = qbd.q1();
        neg_u.scale_mut(-1.0);
        neg_u.gemm_with(-1.0, &q0, &g, 1.0, &self.pool)?;
        let u_lu = LuDecomposition::from_matrix_with(neg_u, &self.pool)?;
        let mut r = Matrix::zeros(s, s);
        u_lu.solve_right_matrix_into_with(&q0, &mut r, &mut ws, &self.pool)?;
        Ok((r, depth))
    }

    /// The natural fixed-point iteration `R ← −(Q0 + R²·Q2)·Q1⁻¹`, kept as the
    /// linear-convergence reference implementation that the equivalence tests pin
    /// the logarithmic reduction against.  Returns `R` and the number of iterations.
    ///
    /// Even here no explicit inverse is formed: `Q1` is factorised once up front and
    /// every step performs one right solve against the factors.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoConvergence`] if the iteration does not converge within
    /// the configured budget.
    pub fn rate_matrix_fixed_point(&self, qbd: &QbdMatrices) -> Result<(Matrix, usize)> {
        let s = qbd.order();
        let q0 = qbd.q0();
        let q2 = qbd.q2();
        let q1_lu = LuDecomposition::from_matrix(qbd.q1())?;
        let mut ws = Workspace::new();
        let mut r = Matrix::zeros(s, s);
        let mut r_squared = ws.real_matrix(s, s);
        let mut rhs = ws.real_matrix(s, s);
        let mut next = ws.real_matrix(s, s);
        for iteration in 1..=self.options.max_iterations {
            r_squared.gemm(1.0, &r, &r, 0.0)?;
            rhs.copy_from(&q0)?;
            rhs.gemm(1.0, &r_squared, &q2, 1.0)?;
            rhs.scale_mut(-1.0);
            // next·Q1 = −(Q0 + R²·Q2)
            q1_lu.solve_right_matrix_into(&rhs, &mut next, &mut ws)?;
            let mut diff = 0.0_f64;
            for (a, b) in next.as_slice().iter().zip(r.as_slice()) {
                diff = diff.max((a - b).abs());
            }
            std::mem::swap(&mut r, &mut next);
            if diff < self.options.tolerance {
                return Ok((r, iteration));
            }
        }
        Err(ModelError::NoConvergence {
            algorithm: "matrix-geometric R iteration",
            iterations: self.options.max_iterations,
        })
    }

    /// Solves the model, returning the concrete [`MatrixGeometricSolution`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unstable`] for non-ergodic configurations,
    /// [`ModelError::NoConvergence`] if the `R` computation stalls, or a
    /// linear-algebra error from the boundary solve.
    pub fn solve_detailed(&self, config: &SystemConfig) -> Result<MatrixGeometricSolution> {
        config.ensure_stable()?;
        let qbd = QbdMatrices::new(config)?;
        let s = qbd.order();
        let servers = qbd.servers();
        let (r, reduction_depth) = self.rate_matrix_with_depth(&qbd)?;

        // Boundary equations for levels 0..N with v_{N+1} = v_N·R substituted into the
        // level-N equation; one equation is replaced by pinning a reference state.
        // The pin mode (largest stationary environment probability) is λ-independent
        // and precomputed — class-aware — in the skeleton.
        let pin_mode = qbd.skeleton().pin_mode();

        // The whole boundary system is real (the QBD generator blocks and `R` are
        // real), so it runs on the all-real block-tridiagonal elimination — same
        // block structure as the former complex formulation at a quarter of the
        // arithmetic.  The diagonal `−B` and `−Cᵀ` couplings additionally trigger
        // the solver's O(s²) diagonal-block Schur fast path.
        let block_rows = servers + 1;
        let mut system = RealBlockTridiagonal::new(block_rows, s)?;
        let b = qbd.b();
        let c_full = qbd.c();
        // C is diagonal, so R·C is a column scaling — no dense product needed.
        let c_diag = c_full.diagonal();
        let mut r_c = r.clone();
        r_c.scale_columns(&c_diag)?;
        // The level-local coefficient `(Dᴬ + B + C_j − A)ᵀ` varies between levels
        // only on its diagonal (every `C_j` is diagonal and `C_0 = 0`): build the
        // `C`-free transpose once and refresh the diagonal per level with the exact
        // operation order of `local_matrix`, so each block stays bit-identical to
        // the former per-level construction at a fraction of its allocation and
        // memory traffic (three full `s × s` passes per level down to one copy).
        let base_t = qbd.local_matrix(0).transpose();
        let da = qbd.da();
        let a = qbd.a();
        for j in 0..block_rows {
            let mut rhs = vec![0.0; s];
            if j > 0 {
                // B = λI is diagonal and symmetric: Bᵀ = B, coefficient −B,
                // handed to the solver packed (s numbers, not an s × s block).
                let mut lower = b.diagonal();
                for v in lower.iter_mut() {
                    *v *= -1.0;
                }
                system.set_lower_diagonal(j, lower)?;
            }
            let mut diag = base_t.clone();
            let cj = qbd.c_level(j.min(servers));
            for i in 0..s {
                // urs-analyze: allow(slice_index, reason = "indexes the s x s QBD blocks sized at build time")
                diag[(i, i)] = ((da[(i, i)] + b[(i, i)]) + cj[(i, i)]) - a[(i, i)];
            }
            if j == servers {
                // Level N: v_N·(Dᴬ+B+C−A) − v_N·R·C  ⇒ coefficient (local(N) − R·C)ᵀ.
                for row in 0..s {
                    for col in 0..s {
                        // urs-analyze: allow(slice_index, reason = "indexes the s x s QBD blocks sized at build time")
                        diag[(row, col)] -= r_c[(col, row)];
                    }
                }
            }
            if j + 1 < block_rows {
                // `C_{j+1}ᵀ = C_{j+1}` is diagonal, handed to the solver packed;
                // the pin replaces the level-0 equation, so its coupling column
                // (row `pin_mode` of `−C₁ᵀ`) is zeroed before the sign flip.
                let mut upper =
                    if j < servers { qbd.c_level(j + 1).diagonal() } else { c_full.diagonal() };
                if j == 0 {
                    // urs-analyze: allow(slice_index, reason = "indexes the s x s QBD blocks sized at build time")
                    upper[pin_mode] = 0.0;
                }
                for v in upper.iter_mut() {
                    *v *= -1.0;
                }
                system.set_upper_diagonal(j, upper)?;
            }
            if j == 0 {
                for col in 0..s {
                    // urs-analyze: allow(slice_index, reason = "indexes the s x s QBD blocks sized at build time")
                    diag[(pin_mode, col)] = if col == pin_mode { 1.0 } else { 0.0 };
                }
                // urs-analyze: allow(slice_index, reason = "indexes the s x s QBD blocks sized at build time")
                rhs[pin_mode] = 1.0;
            }
            system.set_diagonal(j, diag)?;
            system.set_rhs(j, rhs)?;
        }
        let mut levels = match system.solve_with(&self.pool) {
            Ok(x) => x,
            Err(LinalgError::Singular { .. }) => system.solve_dense()?,
            Err(e) => return Err(e.into()),
        };

        // Normalisation: Σ_{j<N} v_j·1 + v_N·(I−R)⁻¹·1 = 1.  The inverse of `I − R`
        // is reused by every tail query of the solution, so it is materialised once
        // here — through LU solves, not an adjugate-style explicit inversion.
        let mut i_minus_r = r.clone();
        i_minus_r.scale_mut(-1.0);
        for i in 0..s {
            i_minus_r[(i, i)] += 1.0;
        }
        let i_minus_r_inv = LuDecomposition::from_matrix_with(i_minus_r, &self.pool)?.inverse()?;
        let v_n = levels[servers].clone();
        let boundary_mass: f64 = levels[..servers].iter().map(|v| v.iter().sum::<f64>()).sum();
        let tail_mass: f64 = i_minus_r_inv.vecmat(&v_n)?.iter().sum();
        let total = boundary_mass + tail_mass;
        if total.abs() < 1e-300 {
            return Err(ModelError::SpectralFailure(
                "matrix-geometric normalisation mass vanished".into(),
            ));
        }
        for level in &mut levels {
            for p in level.iter_mut() {
                *p /= total;
            }
        }

        // Mean queue length: Σ_{j<N} j·v_j·1 + v_N·[N(I−R)⁻¹ + R(I−R)⁻²]·1.
        let boundary_part: f64 = levels[..servers]
            .iter()
            .enumerate()
            .map(|(j, v)| j as f64 * v.iter().sum::<f64>())
            .sum();
        let v_n: Vec<f64> = levels[servers].clone();
        let mut weighted = i_minus_r_inv.clone();
        weighted.scale_mut(servers as f64);
        let sq = i_minus_r_inv.matmul(&i_minus_r_inv)?;
        weighted.gemm(1.0, &r, &sq, 1.0)?;
        let tail_part: f64 = weighted.vecmat(&v_n)?.iter().sum();
        let mean_queue_length = boundary_part + tail_part;

        Ok(MatrixGeometricSolution {
            arrival_rate: config.arrival_rate(),
            servers,
            mode_count: s,
            levels,
            rate_matrix: r,
            i_minus_r_inv,
            mean_queue_length,
            reduction_depth,
        })
    }
}

impl QueueSolver for MatrixGeometricSolver {
    fn name(&self) -> &'static str {
        "matrix geometric (R matrix)"
    }

    fn solve(&self, config: &SystemConfig) -> Result<Box<dyn QueueSolution>> {
        Ok(Box::new(self.solve_detailed(config)?))
    }
}

/// The steady-state solution produced by [`MatrixGeometricSolver`]: boundary vectors
/// `v_0..v_N` and the rate matrix `R` that generates all deeper levels.
#[derive(Debug, Clone)]
pub struct MatrixGeometricSolution {
    arrival_rate: f64,
    servers: usize,
    mode_count: usize,
    /// `v_0 ..= v_N`.
    levels: Vec<Vec<f64>>,
    rate_matrix: Matrix,
    i_minus_r_inv: Matrix,
    mean_queue_length: f64,
    /// Number of logarithmic-reduction doublings that produced `R`.
    reduction_depth: usize,
}

impl MatrixGeometricSolution {
    /// The rate matrix `R` (spectral radius < 1 for a stable queue).
    pub fn rate_matrix(&self) -> &Matrix {
        &self.rate_matrix
    }

    /// Number of logarithmic-reduction doubling steps it took to compute `R`; step
    /// `k` covers `2^k` levels of the first-passage expansion, so this is the base-2
    /// logarithm of the equivalent fixed-point iteration count.  Exposed for
    /// observability: a depth creeping towards the budget signals a near-unstable
    /// configuration.
    pub fn reduction_depth(&self) -> usize {
        self.reduction_depth
    }

    /// Probability vector of level `j` (computed through `v_N·R^{j−N}` for `j > N`).
    pub fn level_vector(&self, level: usize) -> Vec<f64> {
        if level <= self.servers {
            return self.levels[level].clone();
        }
        let mut v = self.levels[self.servers].clone();
        for _ in self.servers..level {
            // urs-analyze: allow(no_panic, reason = "R is square with the solver's own mode dimension; the trait method returns a plain Vec")
            v = self.rate_matrix.vecmat(&v).expect("rate matrix dimensions match by construction");
        }
        v
    }
}

impl QueueSolution for MatrixGeometricSolution {
    fn mode_count(&self) -> usize {
        self.mode_count
    }

    fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    fn state_probability(&self, mode: usize, level: usize) -> f64 {
        if mode >= self.mode_count {
            return 0.0;
        }
        self.level_vector(level)[mode]
    }

    fn mode_marginal(&self) -> Vec<f64> {
        let mut marginal = vec![0.0; self.mode_count];
        for v in &self.levels[..self.servers] {
            for (m, p) in marginal.iter_mut().zip(v) {
                *m += p;
            }
        }
        let tail = self
            .i_minus_r_inv
            .vecmat(&self.levels[self.servers])
            // urs-analyze: allow(no_panic, reason = "(I-R)^-1 and the boundary level share the solver's mode dimension; the trait method returns a plain Vec")
            .expect("dimensions match by construction");
        for (m, p) in marginal.iter_mut().zip(tail) {
            *m += p;
        }
        marginal
    }

    fn mean_queue_length(&self) -> f64 {
        self.mean_queue_length
    }

    fn tail_probability(&self, level: usize) -> f64 {
        if level + 1 >= self.servers {
            // P(Z > level) = v_N R^{level+1-N} (I-R)^{-1} · 1
            let v = self.level_vector(level + 1);
            // urs-analyze: allow(no_panic, reason = "(I-R)^-1 and level vectors share the solver's mode dimension; the trait method returns a plain f64")
            self.i_minus_r_inv.vecmat(&v).expect("dimensions match by construction").iter().sum()
        } else {
            let below: f64 = (0..=level).map(|j| self.level_probability(j)).sum();
            (1.0 - below).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;
    use crate::solution::consistency_violations;
    use crate::spectral::SpectralExpansionSolver;

    fn paper_config(servers: usize, lambda: f64) -> SystemConfig {
        SystemConfig::new(servers, lambda, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap()
    }

    #[test]
    fn rate_matrix_satisfies_quadratic_equation() {
        let config = paper_config(3, 2.0);
        let qbd = QbdMatrices::new(&config).unwrap();
        let solver = MatrixGeometricSolver::default();
        let r = solver.rate_matrix(&qbd).unwrap();
        let residual = &(&qbd.q0() + &r.matmul(&qbd.q1()).unwrap())
            + &r.matmul(&r).unwrap().matmul(&qbd.q2()).unwrap();
        assert!(residual.max_abs() < 1e-9, "residual {}", residual.max_abs());
        // R must be non-negative with spectral radius < 1.
        for i in 0..r.rows() {
            for j in 0..r.cols() {
                assert!(r[(i, j)] > -1e-12);
            }
        }
    }

    #[test]
    fn logarithmic_reduction_matches_fixed_point_iteration() {
        let config = paper_config(3, 2.5);
        let qbd = QbdMatrices::new(&config).unwrap();
        let solver = MatrixGeometricSolver::default();
        let (lr, depth) = solver.rate_matrix_with_depth(&qbd).unwrap();
        let (fp, iterations) = solver.rate_matrix_fixed_point(&qbd).unwrap();
        assert!(lr.approx_eq(&fp, 1e-10), "max diff {}", (&lr - &fp).max_abs());
        // The whole point: quadratic vs linear convergence.
        assert!(depth < 64, "reduction depth {depth}");
        assert!(iterations > depth, "fixed point took {iterations}, reduction {depth}");
    }

    #[test]
    fn solution_is_consistent_and_matches_spectral_expansion() {
        let config = paper_config(4, 3.0);
        let mg = MatrixGeometricSolver::default().solve_detailed(&config).unwrap();
        assert!(consistency_violations(&mg, 40, 1e-8).is_empty());
        assert!(mg.reduction_depth() > 0);
        let spectral = SpectralExpansionSolver::default().solve_detailed(&config).unwrap();
        assert!(
            (mg.mean_queue_length() - spectral.mean_queue_length()).abs()
                / spectral.mean_queue_length()
                < 1e-8
        );
        for level in 0..30 {
            assert!(
                (mg.level_probability(level) - spectral.level_probability(level)).abs() < 1e-9,
                "level {level}"
            );
        }
    }

    #[test]
    fn mm1_closed_form() {
        let lifecycle = ServerLifecycle::exponential(1e-9, 1e3).unwrap();
        let config = SystemConfig::new(1, 0.7, 1.0, lifecycle).unwrap();
        let solution = MatrixGeometricSolver::default().solve_detailed(&config).unwrap();
        assert!((solution.mean_queue_length() - 0.7 / 0.3).abs() < 1e-5);
    }

    #[test]
    fn unstable_rejected() {
        assert!(matches!(
            MatrixGeometricSolver::default().solve_detailed(&paper_config(2, 9.0)),
            Err(ModelError::Unstable { .. })
        ));
    }

    #[test]
    fn level_vectors_follow_the_rate_matrix() {
        let config = paper_config(3, 2.5);
        let solution = MatrixGeometricSolver::default().solve_detailed(&config).unwrap();
        let direct = solution.level_vector(6);
        let via_r = solution.rate_matrix().vecmat(&solution.level_vector(5)).unwrap();
        for (a, b) in direct.iter().zip(via_r) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
