//! The matrix-geometric solution of the same quasi-birth-death process.
//!
//! Besides the spectral expansion, the classical way to solve a QBD process is Neuts's
//! matrix-geometric method: find the minimal non-negative solution `R` of
//! `Q0 + R·Q1 + R²·Q2 = 0`; then `v_{j+1} = v_j·R` for `j ≥ N` and the boundary vectors
//! follow from the level-`0..N` balance equations.  The paper's reference [6]
//! (Mitrani & Chakka 1995) compares the two methods; here the matrix-geometric solver
//! acts as an *independent cross-check* of the spectral expansion — the two must agree
//! to within numerical accuracy on every probability, which the integration tests
//! verify.

use urs_linalg::{BlockTridiagonal, CMatrix, Complex, LinalgError, Matrix};

use crate::config::SystemConfig;
use crate::error::ModelError;
use crate::qbd::QbdMatrices;
use crate::solution::{QueueSolution, QueueSolver};
use crate::Result;

/// Options for the `R`-matrix fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixGeometricOptions {
    /// Convergence tolerance on the max-norm change of `R` between iterations.
    pub tolerance: f64,
    /// Maximum number of fixed-point iterations.
    pub max_iterations: usize,
}

impl Default for MatrixGeometricOptions {
    fn default() -> Self {
        MatrixGeometricOptions { tolerance: 1e-13, max_iterations: 100_000 }
    }
}

/// The matrix-geometric solver.
///
/// # Example
///
/// ```
/// use urs_core::{MatrixGeometricSolver, QueueSolver, ServerLifecycle, SystemConfig};
///
/// # fn main() -> Result<(), urs_core::ModelError> {
/// let config = SystemConfig::new(4, 3.0, 1.0, ServerLifecycle::paper_fitted()?)?;
/// let solution = MatrixGeometricSolver::default().solve(&config)?;
/// assert!(solution.mean_queue_length() > 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MatrixGeometricSolver {
    options: MatrixGeometricOptions,
}

impl MatrixGeometricSolver {
    /// Creates a solver with explicit iteration options.
    pub fn new(options: MatrixGeometricOptions) -> Self {
        MatrixGeometricSolver { options }
    }

    /// Computes the minimal non-negative solution of `Q0 + R·Q1 + R²·Q2 = 0` by the
    /// natural fixed-point iteration `R ← −(Q0 + R²·Q2)·Q1⁻¹` started from `R = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoConvergence`] if the iteration does not converge within
    /// the configured budget.
    pub fn rate_matrix(&self, qbd: &QbdMatrices) -> Result<Matrix> {
        let s = qbd.order();
        let q0 = qbd.q0();
        let q1_inv = qbd.q1().inverse()?;
        let q2 = qbd.q2();
        let mut r = Matrix::zeros(s, s);
        for _ in 0..self.options.max_iterations {
            let r_squared = r.matmul(&r)?;
            let next = (&(&q0 + &r_squared.matmul(&q2)?) * -1.0).matmul(&q1_inv)?;
            let diff = (&next - &r).max_abs();
            r = next;
            if diff < self.options.tolerance {
                return Ok(r);
            }
        }
        Err(ModelError::NoConvergence {
            algorithm: "matrix-geometric R iteration",
            iterations: self.options.max_iterations,
        })
    }

    /// Solves the model, returning the concrete [`MatrixGeometricSolution`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unstable`] for non-ergodic configurations,
    /// [`ModelError::NoConvergence`] if the `R` iteration stalls, or a linear-algebra
    /// error from the boundary solve.
    pub fn solve_detailed(&self, config: &SystemConfig) -> Result<MatrixGeometricSolution> {
        config.ensure_stable()?;
        let qbd = QbdMatrices::new(config)?;
        let s = qbd.order();
        let servers = qbd.servers();
        let r = self.rate_matrix(&qbd)?;

        // Boundary equations for levels 0..N with v_{N+1} = v_N·R substituted into the
        // level-N equation; one equation is replaced by pinning a reference state.
        // The pin mode (largest stationary environment probability) is λ-independent
        // and precomputed — class-aware — in the skeleton.
        let pin_mode = qbd.skeleton().pin_mode();

        let block_rows = servers + 1;
        let mut system = BlockTridiagonal::new(block_rows, s)?;
        let b = qbd.b();
        let c_full = qbd.c();
        for j in 0..block_rows {
            let mut rhs = vec![Complex::ZERO; s];
            if j > 0 {
                system.set_lower(j, &CMatrix::from_real(b) * Complex::from_real(-1.0))?;
            }
            let mut diag = if j < servers {
                transpose_to_cmatrix(&qbd.local_matrix(j))
            } else {
                // Level N: v_N·(Dᴬ+B+C−A) − v_N·R·C  ⇒ coefficient (local(N) − R·C)ᵀ.
                transpose_to_cmatrix(&(&qbd.local_matrix(servers) - &r.matmul(c_full)?))
            };
            if j + 1 < block_rows {
                let upper_real = if j < servers { qbd.c_at(j + 1) } else { c_full.clone() };
                let mut upper = transpose_to_cmatrix(&upper_real);
                if j == 0 {
                    for col in 0..s {
                        upper[(pin_mode, col)] = Complex::ZERO;
                    }
                }
                system.set_upper(j, &upper * Complex::from_real(-1.0))?;
            }
            if j == 0 {
                for col in 0..s {
                    diag[(pin_mode, col)] =
                        if col == pin_mode { Complex::ONE } else { Complex::ZERO };
                }
                rhs[pin_mode] = Complex::ONE;
            }
            system.set_diagonal(j, diag)?;
            system.set_rhs(j, rhs)?;
        }
        let unknowns = match system.solve() {
            Ok(x) => x,
            Err(LinalgError::Singular { .. }) => system.solve_dense()?,
            Err(e) => return Err(e.into()),
        };
        let mut levels: Vec<Vec<f64>> =
            unknowns.iter().map(|v| v.iter().map(|c| c.re).collect()).collect();

        // Normalisation: Σ_{j<N} v_j·1 + v_N·(I−R)⁻¹·1 = 1.
        let identity = Matrix::identity(s);
        let i_minus_r_inv = (&identity - &r).inverse()?;
        let v_n = levels[servers].clone();
        let boundary_mass: f64 = levels[..servers].iter().map(|v| v.iter().sum::<f64>()).sum();
        let tail_mass: f64 = i_minus_r_inv.vecmat(&v_n)?.iter().sum();
        let total = boundary_mass + tail_mass;
        if total.abs() < 1e-300 {
            return Err(ModelError::SpectralFailure(
                "matrix-geometric normalisation mass vanished".into(),
            ));
        }
        for level in &mut levels {
            for p in level.iter_mut() {
                *p /= total;
            }
        }

        // Mean queue length: Σ_{j<N} j·v_j·1 + v_N·[N(I−R)⁻¹ + R(I−R)⁻²]·1.
        let boundary_part: f64 = levels[..servers]
            .iter()
            .enumerate()
            .map(|(j, v)| j as f64 * v.iter().sum::<f64>())
            .sum();
        let v_n: Vec<f64> = levels[servers].clone();
        let geometric_sum = i_minus_r_inv.scale(servers as f64);
        let weighted = &geometric_sum + &r.matmul(&i_minus_r_inv.matmul(&i_minus_r_inv)?)?;
        let tail_part: f64 = weighted.vecmat(&v_n)?.iter().sum();
        let mean_queue_length = boundary_part + tail_part;

        Ok(MatrixGeometricSolution {
            arrival_rate: config.arrival_rate(),
            servers,
            mode_count: s,
            levels,
            rate_matrix: r,
            i_minus_r_inv,
            mean_queue_length,
        })
    }
}

impl QueueSolver for MatrixGeometricSolver {
    fn name(&self) -> &'static str {
        "matrix geometric (R matrix)"
    }

    fn solve(&self, config: &SystemConfig) -> Result<Box<dyn QueueSolution>> {
        Ok(Box::new(self.solve_detailed(config)?))
    }
}

fn transpose_to_cmatrix(m: &Matrix) -> CMatrix {
    CMatrix::from_fn(m.cols(), m.rows(), |i, j| Complex::from_real(m[(j, i)]))
}

/// The steady-state solution produced by [`MatrixGeometricSolver`]: boundary vectors
/// `v_0..v_N` and the rate matrix `R` that generates all deeper levels.
#[derive(Debug, Clone)]
pub struct MatrixGeometricSolution {
    arrival_rate: f64,
    servers: usize,
    mode_count: usize,
    /// `v_0 ..= v_N`.
    levels: Vec<Vec<f64>>,
    rate_matrix: Matrix,
    i_minus_r_inv: Matrix,
    mean_queue_length: f64,
}

impl MatrixGeometricSolution {
    /// The rate matrix `R` (spectral radius < 1 for a stable queue).
    pub fn rate_matrix(&self) -> &Matrix {
        &self.rate_matrix
    }

    /// Probability vector of level `j` (computed through `v_N·R^{j−N}` for `j > N`).
    pub fn level_vector(&self, level: usize) -> Vec<f64> {
        if level <= self.servers {
            return self.levels[level].clone();
        }
        let mut v = self.levels[self.servers].clone();
        for _ in self.servers..level {
            v = self.rate_matrix.vecmat(&v).expect("rate matrix dimensions match by construction");
        }
        v
    }
}

impl QueueSolution for MatrixGeometricSolution {
    fn mode_count(&self) -> usize {
        self.mode_count
    }

    fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    fn state_probability(&self, mode: usize, level: usize) -> f64 {
        if mode >= self.mode_count {
            return 0.0;
        }
        self.level_vector(level)[mode]
    }

    fn mode_marginal(&self) -> Vec<f64> {
        let mut marginal = vec![0.0; self.mode_count];
        for v in &self.levels[..self.servers] {
            for (m, p) in marginal.iter_mut().zip(v) {
                *m += p;
            }
        }
        let tail = self
            .i_minus_r_inv
            .vecmat(&self.levels[self.servers])
            .expect("dimensions match by construction");
        for (m, p) in marginal.iter_mut().zip(tail) {
            *m += p;
        }
        marginal
    }

    fn mean_queue_length(&self) -> f64 {
        self.mean_queue_length
    }

    fn tail_probability(&self, level: usize) -> f64 {
        if level + 1 >= self.servers {
            // P(Z > level) = v_N R^{level+1-N} (I-R)^{-1} · 1
            let v = self.level_vector(level + 1);
            self.i_minus_r_inv.vecmat(&v).expect("dimensions match by construction").iter().sum()
        } else {
            let below: f64 = (0..=level).map(|j| self.level_probability(j)).sum();
            (1.0 - below).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerLifecycle;
    use crate::solution::consistency_violations;
    use crate::spectral::SpectralExpansionSolver;

    fn paper_config(servers: usize, lambda: f64) -> SystemConfig {
        SystemConfig::new(servers, lambda, 1.0, ServerLifecycle::paper_fitted().unwrap()).unwrap()
    }

    #[test]
    fn rate_matrix_satisfies_quadratic_equation() {
        let config = paper_config(3, 2.0);
        let qbd = QbdMatrices::new(&config).unwrap();
        let solver = MatrixGeometricSolver::default();
        let r = solver.rate_matrix(&qbd).unwrap();
        let residual = &(&qbd.q0() + &r.matmul(&qbd.q1()).unwrap())
            + &r.matmul(&r).unwrap().matmul(&qbd.q2()).unwrap();
        assert!(residual.max_abs() < 1e-9, "residual {}", residual.max_abs());
        // R must be non-negative with spectral radius < 1.
        for i in 0..r.rows() {
            for j in 0..r.cols() {
                assert!(r[(i, j)] > -1e-12);
            }
        }
    }

    #[test]
    fn solution_is_consistent_and_matches_spectral_expansion() {
        let config = paper_config(4, 3.0);
        let mg = MatrixGeometricSolver::default().solve_detailed(&config).unwrap();
        assert!(consistency_violations(&mg, 40, 1e-8).is_empty());
        let spectral = SpectralExpansionSolver::default().solve_detailed(&config).unwrap();
        assert!(
            (mg.mean_queue_length() - spectral.mean_queue_length()).abs()
                / spectral.mean_queue_length()
                < 1e-8
        );
        for level in 0..30 {
            assert!(
                (mg.level_probability(level) - spectral.level_probability(level)).abs() < 1e-9,
                "level {level}"
            );
        }
    }

    #[test]
    fn mm1_closed_form() {
        let lifecycle = ServerLifecycle::exponential(1e-9, 1e3).unwrap();
        let config = SystemConfig::new(1, 0.7, 1.0, lifecycle).unwrap();
        let solution = MatrixGeometricSolver::default().solve_detailed(&config).unwrap();
        assert!((solution.mean_queue_length() - 0.7 / 0.3).abs() < 1e-5);
    }

    #[test]
    fn unstable_rejected() {
        assert!(matches!(
            MatrixGeometricSolver::default().solve_detailed(&paper_config(2, 9.0)),
            Err(ModelError::Unstable { .. })
        ));
    }

    #[test]
    fn level_vectors_follow_the_rate_matrix() {
        let config = paper_config(3, 2.5);
        let solution = MatrixGeometricSolver::default().solve_detailed(&config).unwrap();
        let direct = solution.level_vector(6);
        let via_r = solution.rate_matrix().vecmat(&solution.level_vector(5)).unwrap();
        for (a, b) in direct.iter().zip(via_r) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
