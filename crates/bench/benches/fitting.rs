//! Criterion benchmarks of the Section-2 statistical pipeline.
//!
//! Measures the cost of the hyperexponential fitting procedures (closed-form moment
//! matching, the paper's brute-force rate search, EM) and of the Kolmogorov–Smirnov
//! test on trace-sized samples.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use urs_bench::paper_operative;
use urs_dist::fit::{
    fit_hyperexp2_moments, fit_hyperexp_brute_force, fit_hyperexp_em, BruteForceOptions,
};
use urs_dist::ks::KsTest;
use urs_dist::ContinuousDistribution;

fn bench_fitting(c: &mut Criterion) {
    let target = paper_operative();
    let mut rng = StdRng::seed_from_u64(7);
    let samples: Vec<f64> = (0..50_000).map(|_| target.sample(&mut rng)).collect();
    let moments =
        [target.moment(1), target.moment(2), target.moment(3), target.moment(4), target.moment(5)];

    c.bench_function("fit/prony_three_moments", |b| {
        b.iter(|| fit_hyperexp2_moments(moments[0], moments[1], moments[2]).unwrap())
    });

    let options = BruteForceOptions { grid_points: 20, ..BruteForceOptions::default() };
    c.bench_function("fit/brute_force_two_phase_20pts", |b| {
        b.iter(|| fit_hyperexp_brute_force(&moments, 2, &options).unwrap())
    });

    let em_samples = &samples[..10_000];
    c.bench_function("fit/em_two_phase_10k_samples_50_iters", |b| {
        b.iter(|| fit_hyperexp_em(em_samples, 2, 50).unwrap())
    });

    c.bench_function("ks/one_sample_statistic_50k", |b| {
        b.iter(|| KsTest::from_samples(&samples, |x| target.cdf(x)).unwrap())
    });
}

criterion_group!(benches, bench_fitting);
criterion_main!(benches);
