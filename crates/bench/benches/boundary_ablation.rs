//! Ablation benchmark: blocked vs dense solution of the boundary equations.
//!
//! DESIGN.md calls out the block-tridiagonal elimination of the spectral-expansion
//! boundary system as the choice that keeps the exact solution practical (`O(N·s³)`
//! instead of `O((N·s)³)`).  This bench quantifies that choice by timing the blocked
//! solver against the dense fallback on boundary-sized systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urs_linalg::{BlockTridiagonal, CMatrix, Complex};

/// Builds a well-conditioned block-tridiagonal system with `rows` block rows of size
/// `size`, mimicking the structure of the spectral-expansion boundary equations.
fn sample_system(rows: usize, size: usize) -> BlockTridiagonal {
    let mut seed = 0x2006_u64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut system = BlockTridiagonal::new(rows, size).expect("valid dimensions");
    for row in 0..rows {
        let mut diagonal = CMatrix::from_fn(size, size, |_, _| Complex::new(next(), 0.1 * next()));
        for i in 0..size {
            diagonal[(i, i)] += Complex::from_real(4.0 * size as f64);
        }
        system.set_diagonal(row, diagonal).unwrap();
        if row > 0 {
            system
                .set_lower(row, CMatrix::from_fn(size, size, |_, _| Complex::from_real(next())))
                .unwrap();
        }
        if row + 1 < rows {
            system
                .set_upper(row, CMatrix::from_fn(size, size, |_, _| Complex::from_real(next())))
                .unwrap();
        }
        system.set_rhs(row, (0..size).map(|_| Complex::new(next(), next())).collect()).unwrap();
    }
    system
}

fn bench_boundary_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("boundary_solver");
    group.sample_size(10);
    // (block rows, block size) ≈ (N+1, s) for N servers with n = 2, m = 1 phases.
    for &(rows, size) in &[(6usize, 21usize), (9, 45), (11, 66)] {
        let system = sample_system(rows, size);
        group.bench_with_input(
            BenchmarkId::new("block_tridiagonal", format!("{rows}x{size}")),
            &system,
            |b, s| b.iter(|| s.solve().unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("dense_fallback", format!("{rows}x{size}")),
            &system,
            |b, s| b.iter(|| s.solve_dense().unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_boundary_solvers);
criterion_main!(benches);
