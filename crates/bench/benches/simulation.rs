//! Criterion benchmarks of the discrete-event simulator.
//!
//! Measures the cost of simulating the paper's reference system for a fixed horizon,
//! which is what determines how expensive the simulation-only points of Figure 6 are
//! relative to the analytic solutions.

use criterion::{criterion_group, criterion_main, Criterion};
use urs_bench::{paper_inoperative, paper_operative};
use urs_dist::Exponential;
use urs_sim::{BreakdownQueueSimulation, SimulationConfig};

fn bench_simulation(c: &mut Criterion) {
    let config = SimulationConfig::builder(10, 8.0)
        .service(Exponential::new(1.0).unwrap())
        .operative(paper_operative())
        .inoperative(paper_inoperative())
        .warmup(500.0)
        .horizon(5_000.0)
        .build()
        .unwrap();
    let simulation = BreakdownQueueSimulation::new(config);
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("ten_servers_horizon_5000", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            simulation.run(seed).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
