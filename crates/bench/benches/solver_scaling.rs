//! Criterion benchmarks of the analytic solvers as the system grows.
//!
//! Measures the wall-clock cost of the exact spectral expansion, the matrix-geometric
//! method and the geometric approximation for increasing numbers of servers (and hence
//! operational modes), quantifying the complexity argument behind the paper's
//! recommendation of the approximation for large systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urs_bench::{figure5_lifecycle, system};
use urs_core::{
    GeometricApproximation, MatrixGeometricSolver, QueueSolver, SpectralExpansionSolver,
};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    for &servers in &[4usize, 8, 12] {
        let lifecycle = figure5_lifecycle();
        let config = system(servers, 0.85 * servers as f64 * lifecycle.availability(), lifecycle);
        group.bench_with_input(
            BenchmarkId::new("spectral_expansion", servers),
            &config,
            |b, cfg| b.iter(|| SpectralExpansionSolver::default().solve(cfg).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("matrix_geometric", servers), &config, |b, cfg| {
            b.iter(|| MatrixGeometricSolver::default().solve(cfg).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("geometric_approximation", servers),
            &config,
            |b, cfg| b.iter(|| GeometricApproximation::default().solve(cfg).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
