//! Criterion benchmarks of the analytic solvers as the system grows, plus the raw
//! linear-algebra kernels they stand on.
//!
//! Measures the wall-clock cost of the exact spectral expansion, the matrix-geometric
//! method (logarithmic reduction) and the geometric approximation for increasing
//! numbers of servers (and hence operational modes), quantifying the complexity
//! argument behind the paper's recommendation of the approximation for large systems.
//! The `kernels` group pins the blocked/tiled production kernels against naive
//! reference implementations so a kernel regression fails loudly in CI (the bench
//! smoke step runs `kernels`, `sweeps`, `mix` and `response`); under `URS_SMOKE`
//! every group shrinks to CI-sized instances.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use urs_bench::{figure5_lifecycle, smoke, system};
use urs_core::sweeps::queue_length_vs_load_with;
use urs_core::{
    ClassCostModel, CostModel, CostSweep, GeometricApproximation, MatrixGeometricSolver, MixBounds,
    MixSearch, MixSearchOptions, QueueSolver, ResponseAnalysis, ResponseOptions, ServerClass,
    ServerLifecycle, SolverCache, SpectralExpansionSolver, ThreadPool,
};
use urs_linalg::{BandedLu, BandedMatrix, LuDecomposition, Matrix};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    // The logarithmic-reduction rewrite pushed the practical range of both exact
    // solvers to N = 32 (561 modes); smoke runs keep the historical small sizes.
    let sizes: &[usize] = if smoke() { &[4, 8] } else { &[4, 8, 12, 16, 24, 32] };
    for &servers in sizes {
        let lifecycle = figure5_lifecycle();
        let config = system(servers, 0.85 * servers as f64 * lifecycle.availability(), lifecycle);
        group.bench_with_input(
            BenchmarkId::new("spectral_expansion", servers),
            &config,
            |b, cfg| b.iter(|| SpectralExpansionSolver::default().solve(cfg).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("matrix_geometric", servers), &config, |b, cfg| {
            b.iter(|| MatrixGeometricSolver::default().solve(cfg).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("geometric_approximation", servers),
            &config,
            |b, cfg| b.iter(|| GeometricApproximation::default().solve(cfg).unwrap()),
        );
    }
    group.finish();
}

/// Naive reference kernels: the pre-refactor triple-loop product and unblocked,
/// index-addressed LU elimination.  Benchmarked against the production kernels so the
/// old-vs-new ratio is regenerated on every bench run.
mod naive {
    use urs_linalg::Matrix;

    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let aik = a[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols() {
                    out[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        out
    }

    /// Unblocked LU with partial pivoting; returns the packed factors.
    pub fn lu(a: &Matrix) -> Matrix {
        let n = a.rows();
        let mut lu = a.clone();
        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                if lu[(i, k)].abs() > pivot_val {
                    pivot_val = lu[(i, k)].abs();
                    pivot_row = i;
                }
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        lu
    }
}

/// Deterministic pseudo-random test matrix with a boosted diagonal.
fn kernel_matrix(n: usize, mut seed: u64) -> Matrix {
    let mut next = || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut m = Matrix::from_fn(n, n, |_, _| next());
    for i in 0..n {
        m[(i, i)] += 4.0;
    }
    m
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    let sizes: &[usize] = if smoke() { &[48, 96] } else { &[64, 128, 256] };
    for &n in sizes {
        let a = kernel_matrix(n, 7);
        let b = kernel_matrix(n, 11);
        group.bench_with_input(BenchmarkId::new("gemm_naive", n), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| black_box(naive::matmul(a, b)))
        });
        group.bench_with_input(BenchmarkId::new("gemm_blocked", n), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| black_box(a.matmul(b).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("lu_naive", n), &a, |bench, a| {
            bench.iter(|| black_box(naive::lu(a)))
        });
        group.bench_with_input(BenchmarkId::new("lu_blocked", n), &a, |bench, a| {
            bench.iter(|| black_box(LuDecomposition::new(a).unwrap()))
        });
    }
    group.finish();
}

/// Serial versus pooled production kernels at s = 561 — the QBD block size of the
/// largest benchmarked system (N = 32 servers ⇒ 561 modes), i.e. the matrix shape
/// the spectral and matrix-geometric solvers actually multiply and factorise.
/// Bit-identity across thread counts is pinned by the equivalence suites; this
/// group only reports the intra-solve speed-up of `gemm_with`/`from_matrix_with`
/// over the serial path (the pool comes from `ThreadPool::default()`, so the CI
/// thread matrix exercises it at both one and several workers).
fn bench_kernels_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels-par");
    group.sample_size(10);
    let n = if smoke() { 192 } else { 561 };
    let a = kernel_matrix(n, 17);
    let b = kernel_matrix(n, 19);
    let pool = ThreadPool::default();
    group.bench_with_input(BenchmarkId::new("gemm_serial", n), &(&a, &b), |bench, (a, b)| {
        bench.iter(|| {
            let mut c = Matrix::zeros(n, n);
            c.gemm(1.0, a, b, 0.0).unwrap();
            black_box(c)
        })
    });
    group.bench_with_input(BenchmarkId::new("gemm_pooled", n), &(&a, &b), |bench, (a, b)| {
        bench.iter(|| {
            let mut c = Matrix::zeros(n, n);
            c.gemm_with(1.0, a, b, 0.0, &pool).unwrap();
            black_box(c)
        })
    });
    group.bench_with_input(BenchmarkId::new("lu_serial", n), &a, |bench, a| {
        bench.iter(|| black_box(LuDecomposition::from_matrix((*a).clone()).unwrap()))
    });
    group.bench_with_input(BenchmarkId::new("lu_pooled", n), &a, |bench, a| {
        bench.iter(|| black_box(LuDecomposition::from_matrix_with((*a).clone(), &pool).unwrap()))
    });
    group.finish();
}

/// Deterministic banded test matrix (boosted diagonal) with the given bandwidths.
fn kernel_banded(n: usize, kl: usize, ku: usize, mut seed: u64) -> BandedMatrix {
    let mut next = || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    BandedMatrix::from_fn(n, kl, ku, |i, j| {
        let v = next();
        if i == j {
            v + 4.0
        } else {
            v
        }
    })
}

/// Dense versus packed-banded kernels at QBD-realistic shapes.  At N servers the
/// repeat block is s = (N+1)(N+2)/2 with bandwidth N+1, so (153, 17) is N = 16 and
/// (561, 33) is N = 32 — the shapes the structured solver paths actually factor.
/// The extra (153, 38) point sits at the `banded_profitable` crossover boundary
/// (band width ≈ n/2); this group is the measurement that rule cites.  Bit-identity
/// of banded vs dense on the same pattern is pinned by the property suite; this
/// group only reports the speed ratio.
fn bench_kernels_banded(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels-banded");
    group.sample_size(10);
    let shapes: &[(usize, usize)] =
        if smoke() { &[(96, 9)] } else { &[(153, 17), (153, 38), (561, 33)] };
    for &(n, half_band) in shapes {
        let banded = kernel_banded(n, half_band, half_band, 23);
        let dense = banded.to_dense();
        let rhs = kernel_matrix(n, 29);
        let id = format!("{n}x{half_band}");
        group.bench_with_input(BenchmarkId::new("gemm_dense", &id), &(), |bench, ()| {
            bench.iter(|| {
                let mut c = Matrix::zeros(n, n);
                c.gemm(1.0, &dense, &rhs, 0.0).unwrap();
                black_box(c)
            })
        });
        group.bench_with_input(BenchmarkId::new("gemm_banded", &id), &(), |bench, ()| {
            bench.iter(|| {
                let mut c = Matrix::zeros(n, n);
                banded.gemm_into(1.0, &rhs, 0.0, &mut c).unwrap();
                black_box(c)
            })
        });
        group.bench_with_input(BenchmarkId::new("lu_dense", &id), &(), |bench, ()| {
            bench.iter(|| black_box(LuDecomposition::new(&dense).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("lu_banded", &id), &(), |bench, ()| {
            bench.iter(|| black_box(BandedLu::new(&banded).unwrap()))
        });
        let blu = BandedLu::new(&banded).unwrap();
        let dlu = LuDecomposition::new(&dense).unwrap();
        let rhs8 = Matrix::from_fn(n, 8, |i, j| rhs[(i, j)]);
        group.bench_with_input(BenchmarkId::new("solve_dense", &id), &(), |bench, ()| {
            bench.iter(|| {
                let mut out = Matrix::zeros(n, 8);
                dlu.solve_matrix_into(&rhs8, &mut out).unwrap();
                black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("solve_banded", &id), &(), |bench, ()| {
            bench.iter(|| {
                let mut out = Matrix::zeros(n, 8);
                blu.solve_matrix_into(&rhs8, &mut out).unwrap();
                black_box(out)
            })
        });
    }
    group.finish();
}

/// The Figure 8 load sweep (12 arrival rates, one lifecycle) under the three execution
/// strategies introduced by the performance subsystem:
///
/// * `load_sweep_serial` — the pre-existing one-thread path;
/// * `load_sweep_parallel` — the default worker pool (the win scales with cores);
/// * `load_sweep_cached` — a *fresh* cache per iteration, so what is measured is
///   genuine within-sweep skeleton reuse, not memoisation of a previous iteration.
fn bench_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweeps");
    group.sample_size(10);
    let (servers, points, cost_range) = if smoke() { (6, 4, 5..=8) } else { (10, 12, 9..=14) };
    let base = system(servers, 0.8 * servers as f64, figure5_lifecycle());
    let utilisations: Vec<f64> = (0..points).map(|i| 0.89 + i as f64 * 0.009).collect();
    let approx = GeometricApproximation::default();

    group.bench_function("load_sweep_serial", |b| {
        let solver = SpectralExpansionSolver::default();
        b.iter(|| {
            queue_length_vs_load_with(&solver, &approx, &base, &utilisations, &ThreadPool::serial())
                .unwrap()
        })
    });
    group.bench_function("load_sweep_parallel", |b| {
        let solver = SpectralExpansionSolver::default();
        let pool = ThreadPool::default();
        b.iter(|| queue_length_vs_load_with(&solver, &approx, &base, &utilisations, &pool).unwrap())
    });
    group.bench_function("load_sweep_cached", |b| {
        b.iter(|| {
            let solver = SpectralExpansionSolver::default().with_cache(SolverCache::shared());
            queue_length_vs_load_with(&solver, &approx, &base, &utilisations, &ThreadPool::serial())
                .unwrap()
        })
    });

    // Re-running a cost sweep with a different cost model re-solves the identical
    // configurations: with a shared cache the second sweep is answered from memory.
    group.bench_function("cost_resweep_uncached", |b| {
        let solver = SpectralExpansionSolver::default();
        b.iter(|| {
            for cost in [CostModel::new(4.0, 1.0).unwrap(), CostModel::new(2.0, 1.0).unwrap()] {
                CostSweep::evaluate_with(
                    &solver,
                    &base,
                    &cost,
                    cost_range.clone(),
                    &ThreadPool::serial(),
                )
                .unwrap();
            }
        })
    });
    group.bench_function("cost_resweep_cached", |b| {
        b.iter(|| {
            let solver = SpectralExpansionSolver::default().with_cache(SolverCache::shared());
            for cost in [CostModel::new(4.0, 1.0).unwrap(), CostModel::new(2.0, 1.0).unwrap()] {
                CostSweep::evaluate_with(
                    &solver,
                    &base,
                    &cost,
                    cost_range.clone(),
                    &ThreadPool::serial(),
                )
                .unwrap();
            }
        })
    });
    group.finish();
}

/// The fleet-mix search of `urs_core::mix` under its two execution strategies on the
/// identical candidate space: the all-exact exhaustive path versus approximation
/// screening with exact verification of the shortlist.  Screening trades one cheap
/// approximate solve per candidate for restricting the expensive spectral solves to
/// the slack-band shortlist; the gap widens with the candidate space, so the full
/// run uses a three-class fleet (285 compositions, ≤ 32 verified) while the smoke
/// run shrinks to a CI-sized two-class space.
fn bench_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("mix");
    group.sample_size(10);
    let fast = ServerClass::new(1, 1.5, ServerLifecycle::exponential(0.1, 2.0).unwrap()).unwrap();
    let steady =
        ServerClass::new(1, 1.0, ServerLifecycle::exponential(0.01, 5.0).unwrap()).unwrap();
    let budget =
        ServerClass::new(1, 0.75, ServerLifecycle::exponential(0.02, 4.0).unwrap()).unwrap();
    let (classes, prices, max_servers) = if smoke() {
        (vec![fast, steady], vec![1.4, 1.0], 4)
    } else {
        (vec![fast, steady, budget], vec![1.4, 1.0, 0.6], 10)
    };
    let search = MixSearch::new(
        2.5,
        classes,
        ClassCostModel::new(4.0, prices).unwrap(),
        MixBounds::up_to(max_servers).unwrap(),
    )
    .unwrap();
    group.bench_function("search_exhaustive", |b| {
        b.iter(|| black_box(search.run_exhaustive().unwrap()))
    });
    let screened =
        search.clone().with_options(MixSearchOptions { exhaustive_limit: 0, ..Default::default() });
    group.bench_function("search_screened", |b| b.iter(|| black_box(screened.run().unwrap())));
    group.finish();
}

/// The response-time distribution pipeline of `urs_core::response`: building the
/// transform from a solved model, one certified CDF evaluation (two independent
/// inversions plus the agreement check), and a certified three-percentile query.
/// The cached variant re-runs the percentile query against a warm [`SolverCache`],
/// isolating the cost of inversion itself from the transform assembly it reuses.
fn bench_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("response");
    group.sample_size(10);
    let servers = if smoke() { 6 } else { 10 };
    let lifecycle = figure5_lifecycle();
    let config = system(servers, 0.75 * servers as f64 * lifecycle.availability(), lifecycle);
    let fractions = [0.9, 0.95, 0.99];

    group.bench_function("build_transform", |b| {
        b.iter(|| black_box(ResponseAnalysis::new(&config).unwrap()))
    });
    let analysis = ResponseAnalysis::new(&config).unwrap();
    let t = 2.0 * analysis.mean_response_time();
    group.bench_function("certified_cdf", |b| {
        b.iter(|| black_box(analysis.response_time_cdf(black_box(t)).unwrap()))
    });
    group.bench_function("percentiles", |b| {
        b.iter(|| black_box(analysis.response_time_percentiles(&fractions).unwrap()))
    });
    group.bench_function("percentiles_cached_transform", |b| {
        let cache = SolverCache::shared();
        // Warm the cache so every iteration measures lookup + inversion, not assembly.
        ResponseAnalysis::with_cache(&config, ResponseOptions::default(), &cache).unwrap();
        b.iter(|| {
            let analysis =
                ResponseAnalysis::with_cache(&config, ResponseOptions::default(), &cache).unwrap();
            black_box(analysis.response_time_percentiles(&fractions).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_solvers,
    bench_kernels,
    bench_kernels_par,
    bench_kernels_banded,
    bench_sweeps,
    bench_mix,
    bench_response
);
criterion_main!(benches);
