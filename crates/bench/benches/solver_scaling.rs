//! Criterion benchmarks of the analytic solvers as the system grows.
//!
//! Measures the wall-clock cost of the exact spectral expansion, the matrix-geometric
//! method and the geometric approximation for increasing numbers of servers (and hence
//! operational modes), quantifying the complexity argument behind the paper's
//! recommendation of the approximation for large systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urs_bench::{figure5_lifecycle, system};
use urs_core::sweeps::queue_length_vs_load_with;
use urs_core::{
    CostModel, CostSweep, GeometricApproximation, MatrixGeometricSolver, QueueSolver, SolverCache,
    SpectralExpansionSolver, ThreadPool,
};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    for &servers in &[4usize, 8, 12] {
        let lifecycle = figure5_lifecycle();
        let config = system(servers, 0.85 * servers as f64 * lifecycle.availability(), lifecycle);
        group.bench_with_input(
            BenchmarkId::new("spectral_expansion", servers),
            &config,
            |b, cfg| b.iter(|| SpectralExpansionSolver::default().solve(cfg).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("matrix_geometric", servers), &config, |b, cfg| {
            b.iter(|| MatrixGeometricSolver::default().solve(cfg).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("geometric_approximation", servers),
            &config,
            |b, cfg| b.iter(|| GeometricApproximation::default().solve(cfg).unwrap()),
        );
    }
    group.finish();
}

/// The Figure 8 load sweep (12 arrival rates, one lifecycle) under the three execution
/// strategies introduced by the performance subsystem:
///
/// * `load_sweep_serial` — the pre-existing one-thread path;
/// * `load_sweep_parallel` — the default worker pool (the win scales with cores);
/// * `load_sweep_cached` — a *fresh* cache per iteration, so what is measured is
///   genuine within-sweep skeleton reuse, not memoisation of a previous iteration.
fn bench_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweeps");
    group.sample_size(10);
    let base = system(10, 8.0, figure5_lifecycle());
    let utilisations: Vec<f64> = (0..12).map(|i| 0.89 + i as f64 * 0.009).collect();
    let approx = GeometricApproximation::default();

    group.bench_function("load_sweep_serial", |b| {
        let solver = SpectralExpansionSolver::default();
        b.iter(|| {
            queue_length_vs_load_with(&solver, &approx, &base, &utilisations, &ThreadPool::serial())
                .unwrap()
        })
    });
    group.bench_function("load_sweep_parallel", |b| {
        let solver = SpectralExpansionSolver::default();
        let pool = ThreadPool::default();
        b.iter(|| queue_length_vs_load_with(&solver, &approx, &base, &utilisations, &pool).unwrap())
    });
    group.bench_function("load_sweep_cached", |b| {
        b.iter(|| {
            let solver = SpectralExpansionSolver::default().with_cache(SolverCache::shared());
            queue_length_vs_load_with(&solver, &approx, &base, &utilisations, &ThreadPool::serial())
                .unwrap()
        })
    });

    // Re-running a cost sweep with a different cost model re-solves the identical
    // configurations: with a shared cache the second sweep is answered from memory.
    group.bench_function("cost_resweep_uncached", |b| {
        let solver = SpectralExpansionSolver::default();
        b.iter(|| {
            for cost in [CostModel::new(4.0, 1.0), CostModel::new(2.0, 1.0)] {
                CostSweep::evaluate_with(&solver, &base, &cost, 9..=14, &ThreadPool::serial())
                    .unwrap();
            }
        })
    });
    group.bench_function("cost_resweep_cached", |b| {
        b.iter(|| {
            let solver = SpectralExpansionSolver::default().with_cache(SolverCache::shared());
            for cost in [CostModel::new(4.0, 1.0), CostModel::new(2.0, 1.0)] {
                CostSweep::evaluate_with(&solver, &base, &cost, 9..=14, &ThreadPool::serial())
                    .unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_sweeps);
criterion_main!(benches);
