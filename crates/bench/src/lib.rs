//! Shared helpers for the experiment binaries that reproduce the paper's figures.
//!
//! Each binary in `src/bin/` regenerates one table or figure of Palmer & Mitrani
//! (DSN 2006); this library holds the parameter sets used across several experiments
//! and small utilities for printing aligned result tables.  Run the binaries in release
//! mode, e.g. `cargo run --release -p urs-bench --bin fig5_cost_vs_servers`.
//!
//! # Paper map
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `section2_tables` | §2 trace statistics |
//! | `fig3_operative_density`, `fig4_inoperative_density` | Figures 3–4 |
//! | `fig5_cost_vs_servers` | Figure 5 (cost optimisation) |
//! | `fig6_queue_vs_cv`, `fig7_queue_vs_repair`, `fig8_exact_vs_approx` | Figures 6–8 |
//! | `fig9_response_vs_servers` | Figure 9 (provisioning) |
//! | `het_mixed_fleet` | §6 future work: heterogeneous server classes |
//! | `optimal_mix` | §4 cost model over class compositions (`urs_core::mix`) |
//! | `response_time_percentiles` | §5 open problem: certified analytic percentiles vs simulated 95% intervals (`urs_core::response`) |
//!
//! The sweep-driven binaries (Figures 5–9) run their grids on `urs_core`'s parallel
//! [`ThreadPool`](urs_core::ThreadPool); the ones whose grids revisit a lifecycle
//! (Figures 5, 6 and 8) additionally attach a [`SolverCache`](urs_core::SolverCache)
//! so repeated `(N, µ, lifecycle)` combinations reuse their QBD skeletons.  Results
//! are bit-identical to the serial, uncached paths.  The `solver_scaling` criterion
//! bench measures both mechanisms.

use urs_core::{ServerLifecycle, SystemConfig};
use urs_dist::HyperExponential;

/// The operative-period distribution fitted in Section 2 of the paper:
/// `α = (0.7246, 0.2754)`, `ξ = (0.1663, 0.0091)`; mean ≈ 34.62, C² ≈ 4.6.
pub fn paper_operative() -> HyperExponential {
    HyperExponential::new(&[0.7246, 0.2754], &[0.1663, 0.0091]).expect("paper parameters valid")
}

/// The inoperative-period distribution fitted in Section 2 of the paper:
/// `β = (0.9303, 0.0697)`, `η = (25.0043, 1.6346)`.
pub fn paper_inoperative() -> HyperExponential {
    HyperExponential::new(&[0.9303, 0.0697], &[25.0043, 1.6346]).expect("paper parameters valid")
}

/// The lifecycle used in Figures 5, 8 and 9: fitted operative periods, exponential
/// repairs with rate `η = 25`.
pub fn figure5_lifecycle() -> ServerLifecycle {
    ServerLifecycle::with_exponential_repair(paper_operative(), 25.0)
        .expect("paper parameters valid")
}

/// The lifecycle family of Figures 6 and 7: operative periods with mean 34.62 (i.e.
/// `ξ = 0.0289`) and exponential repairs with the given rate `η`.
pub fn sensitivity_lifecycle(operative_scv: f64, repair_rate: f64) -> ServerLifecycle {
    let operative = HyperExponential::with_mean_and_scv(34.62, operative_scv)
        .expect("scv >= 1 by construction");
    ServerLifecycle::with_exponential_repair(operative, repair_rate).expect("positive repair rate")
}

/// Builds a system configuration with unit service rate, the convention used in every
/// numerical experiment of the paper.
pub fn system(servers: usize, arrival_rate: f64, lifecycle: ServerLifecycle) -> SystemConfig {
    SystemConfig::new(servers, arrival_rate, 1.0, lifecycle).expect("valid configuration")
}

/// `true` when the `URS_SMOKE` environment variable is set to a non-empty value other
/// than `0`.  The figure binaries then shrink their grids, horizons and replication
/// budgets so CI can smoke-run every binary in seconds — catching solver/binary drift
/// that library tests alone would miss — while the default full-size runs reproduce
/// the paper's figures unchanged.
pub fn smoke() -> bool {
    std::env::var("URS_SMOKE").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// Prints a header line followed by a separator, for simple aligned tables.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("\n== {title} ==");
    let header = columns.iter().map(|c| format!("{c:>14}")).collect::<Vec<_>>().join("  ");
    println!("{header}");
    println!("{}", "-".repeat(header.len()));
}

/// Prints one row of numeric cells aligned with [`print_header`].
pub fn print_row(cells: &[f64]) {
    let row = cells.iter().map(|v| format!("{v:>14.4}")).collect::<Vec<_>>().join("  ");
    println!("{row}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use urs_dist::ContinuousDistribution;

    #[test]
    fn paper_parameter_sets_have_documented_statistics() {
        assert!((paper_operative().mean() - 34.62).abs() < 0.05);
        assert!((paper_inoperative().mean() - 0.0799).abs() < 0.002);
        assert!((figure5_lifecycle().availability() - 0.99885).abs() < 1e-3);
        let sens = sensitivity_lifecycle(4.6, 0.2);
        assert!((sens.operative().mean() - 34.62).abs() < 1e-9);
        assert!((sens.repair_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn system_builder_uses_unit_service_rate() {
        let cfg = system(10, 8.0, figure5_lifecycle());
        assert_eq!(cfg.service_rate(), 1.0);
        assert_eq!(cfg.servers(), 10);
        assert!(cfg.is_stable());
    }
}
