//! Serving throughput: the query engine answering a mixed trace cold and warm.
//!
//! Replays a deterministic trace of mixed protocol queries (solves over a handful
//! of QBD skeletons, cost/provisioning sweeps, percentiles) through one
//! [`urs_server::Server`] twice:
//!
//! * **cold** — a fresh server, every skeleton/eigensystem/solution computed;
//! * **warm** — the same server again, so the shared cache answers most of the work.
//!
//! Reports queries/sec for both passes, per-query latency quantiles, and the
//! cache hit rate after the warm pass, and writes the machine-readable summary to
//! `BENCH_serving.json` (uploaded as a CI artifact; regressions diff on it).  The
//! warm/cold ratio is the serving story in one number: a standing process with one
//! long-lived cache versus batch-style solve-and-exit.
//!
//! Usage: `serving_throughput [queries]`.  `URS_SMOKE=1` shrinks the trace for CI.

use std::time::Instant;

use urs_bench::smoke;
use urs_server::Server;

fn lifecycle(index: usize) -> String {
    match index % 3 {
        0 => "\"paper\"".to_string(),
        1 => {
            let xi = 0.05 + 0.05 * (index % 4) as f64;
            format!("{{\"breakdown_rate\":{xi},\"repair_rate\":2.0}}")
        }
        _ => "{\"operative_mean\":34.62,\"operative_scv\":4.6,\"repair_rate\":0.2}".to_string(),
    }
}

fn config(servers: usize, lambda: f64, lifecycle_index: usize) -> String {
    format!(
        "{{\"servers\":{servers},\"arrival_rate\":{lambda},\"service_rate\":1.0,\
         \"lifecycle\":{}}}",
        lifecycle(lifecycle_index)
    )
}

/// The same deterministic shape as the server's replay suite — mixed query types
/// over a few skeleton families — but with the arrival rate swept continuously
/// across the trace so every query is distinct.  The cold pass therefore computes
/// every solution; the warm replay answers entirely from the shared cache.
fn trace(n: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(n);
    for i in 0..n {
        let servers = 3 + i % 3;
        let lambda = 0.4 + 1.2 * i as f64 / n.max(1) as f64;
        let line = match i % 17 {
            13 => format!(
                "{{\"type\":\"cost_sweep\",\"config\":{},\"holding_cost\":4.0,\
                 \"server_cost\":1.0,\"min_servers\":3,\"max_servers\":5}}",
                config(4, lambda, i)
            ),
            14 => format!(
                "{{\"type\":\"provisioning\",\"config\":{},\"min_servers\":3,\
                 \"max_servers\":5}}",
                config(4, lambda, i)
            ),
            15 => format!(
                "{{\"type\":\"percentiles\",\"config\":{},\"fractions\":[0.5,0.95]}}",
                config(3, lambda.min(1.0), i)
            ),
            16 => format!(
                "{{\"type\":\"sla_sweep\",\"config\":{},\"server_counts\":[3,4],\
                 \"fractions\":[0.9]}}",
                config(3, lambda.min(1.0), i)
            ),
            _ => format!("{{\"type\":\"solve\",\"config\":{}}}", config(servers, lambda, i)),
        };
        lines.push(line);
    }
    lines
}

/// One pass over the trace in batches, timing each batch; returns (seconds,
/// per-query latency microseconds, responses) and feeds the server's histogram.
fn run_pass(server: &Server, lines: &[String], batch_size: usize) -> (f64, Vec<u64>, Vec<String>) {
    let mut latencies = Vec::with_capacity(lines.len());
    let mut responses = Vec::with_capacity(lines.len());
    let started = Instant::now();
    for batch in lines.chunks(batch_size) {
        let batch_started = Instant::now();
        let mut answered = server.respond_batch(batch);
        let micros = batch_started.elapsed().as_micros() as u64 / batch.len().max(1) as u64;
        server.metrics().record_latency(micros, batch.len() as u64);
        for _ in 0..batch.len() {
            latencies.push(micros);
        }
        responses.append(&mut answered);
    }
    (started.elapsed().as_secs_f64(), latencies, responses)
}

fn quantile(sorted: &[u64], fraction: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * fraction).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let queries = std::env::args()
        .nth(1)
        .map(|arg| arg.parse::<usize>())
        .transpose()?
        .unwrap_or(if smoke() { 300 } else { 2000 });
    let batch_size = urs_server::MAX_BATCH;
    let lines = trace(queries);

    println!("Serving throughput: {queries} mixed queries per pass, batches of {batch_size}.");

    let server = Server::new();
    let (cold_seconds, cold_latencies, cold_responses) = run_pass(&server, &lines, batch_size);
    let (warm_seconds, warm_latencies, warm_responses) = run_pass(&server, &lines, batch_size);
    if cold_responses != warm_responses {
        return Err("warm pass changed a response — the cache broke determinism".into());
    }
    if cold_responses.iter().any(|r| r.starts_with("{\"error\"")) {
        return Err("the benchmark trace contains a failing query".into());
    }

    let cold_qps = queries as f64 / cold_seconds;
    let warm_qps = queries as f64 / warm_seconds;
    let speedup = warm_qps / cold_qps;
    let hit_rate = server.engine().cache().stats().total_hit_rate();
    let snapshot = server.metrics().snapshot();
    let memo_lookups = snapshot.response_hits + snapshot.response_misses;
    let memo_hit_rate =
        if memo_lookups > 0 { snapshot.response_hits as f64 / memo_lookups as f64 } else { 0.0 };

    let mut sorted_cold = cold_latencies;
    sorted_cold.sort_unstable();
    let mut sorted_warm = warm_latencies;
    sorted_warm.sort_unstable();
    let summary = [
        ("cold", cold_seconds, cold_qps, &sorted_cold),
        ("warm", warm_seconds, warm_qps, &sorted_warm),
    ];
    println!(
        "\n{:>6}  {:>9}  {:>12}  {:>11}  {:>11}",
        "pass", "seconds", "queries/sec", "p50", "p99"
    );
    for (name, seconds, qps, sorted) in &summary {
        println!(
            "{name:>6}  {seconds:>8.3}s  {qps:>12.0}  {:>9}us  {:>9}us",
            quantile(sorted, 0.50),
            quantile(sorted, 0.99),
        );
    }
    println!(
        "\nWarm over cold: {speedup:.1}x queries/sec; solver cache hit rate {:.1}%, \
         response memo hit rate {:.1}%.",
        hit_rate * 100.0,
        memo_hit_rate * 100.0,
    );
    println!("Every warm response was byte-identical to its cold twin.");

    let json = format!(
        "{{\n  \"queries_per_pass\": {queries},\n  \"batch_size\": {batch_size},\n  \
         \"cold_seconds\": {cold_seconds},\n  \"warm_seconds\": {warm_seconds},\n  \
         \"cold_queries_per_sec\": {cold_qps},\n  \"warm_queries_per_sec\": {warm_qps},\n  \
         \"warm_speedup\": {speedup},\n  \"cache_hit_rate\": {hit_rate},\n  \
         \"response_memo_hit_rate\": {memo_hit_rate},\n  \
         \"cold_p50_micros\": {},\n  \"cold_p99_micros\": {},\n  \
         \"warm_p50_micros\": {},\n  \"warm_p99_micros\": {}\n}}\n",
        quantile(&sorted_cold, 0.50),
        quantile(&sorted_cold, 0.99),
        quantile(&sorted_warm, 0.50),
        quantile(&sorted_warm, 0.99),
    );
    std::fs::write("BENCH_serving.json", json)?;
    println!("Wrote machine-readable results to BENCH_serving.json.");

    if speedup < 2.0 {
        return Err(format!(
            "warm pass only {speedup:.2}x cold — the shared cache should at least halve \
             the serving cost of a repeated trace"
        )
        .into());
    }
    Ok(())
}
