//! Figure 6: average queue size against the squared coefficient of variation of the
//! operative periods, for λ = 8.5 and λ = 8.6.
//!
//! Parameters as in the paper: N = 10, µ = 1, mean operative period 34.62
//! (ξ = 0.0289), exponential repairs with η = 0.2 (mean repair time 5).  The mean
//! operative period is kept fixed while C² is varied; the C² = 0 point (deterministic
//! operative periods) cannot be produced by the analytic model and is obtained by
//! simulation, exactly as in the paper.

use urs_bench::{print_header, print_row, sensitivity_lifecycle, smoke, system};
use urs_core::{sweeps::queue_length_vs_operative_scv, SolverCache, SpectralExpansionSolver};
use urs_dist::{Deterministic, Exponential};
use urs_sim::{BreakdownQueueSimulation, Replications, SimulationConfig};

fn simulate_deterministic(servers: usize, lambda: f64, repair_rate: f64) -> (f64, f64) {
    let (warmup, horizon, replications) =
        if smoke() { (5_000.0, 50_000.0, 3) } else { (50_000.0, 500_000.0, 6) };
    let config = SimulationConfig::builder(servers, lambda)
        .service(Exponential::new(1.0).expect("valid rate"))
        .operative(Deterministic::new(34.62).expect("positive value"))
        .inoperative(Exponential::new(repair_rate).expect("valid rate"))
        .warmup(warmup)
        .horizon(horizon)
        .build()
        .expect("valid simulation configuration");
    let summary = Replications::new(replications, 2006)
        .run(&BreakdownQueueSimulation::new(config))
        .expect("simulation runs");
    (summary.mean_queue_length.mean, summary.mean_queue_length.half_width)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let servers = 10;
    let repair_rate = 0.2;
    let scv_values: &[f64] = if smoke() {
        &[1.0, 4.0, 8.0]
    } else {
        &[1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0]
    };
    // The λ = 8.5 and λ = 8.6 sweeps visit the same ten lifecycles, so the cache
    // reuses every skeleton on the second pass.
    let solver = SpectralExpansionSolver::default().with_cache(SolverCache::shared());
    let base = system(servers, 8.5, sensitivity_lifecycle(4.6, repair_rate));

    for &lambda in &[8.5, 8.6] {
        print_header(
            &format!(
                "Figure 6: L vs C^2 of operative periods (lambda = {lambda}, N = 10, eta = 0.2)"
            ),
            &["C^2", "L"],
        );
        // C² = 0: deterministic operative periods, by simulation (as in the paper).
        let (sim_l, sim_hw) = simulate_deterministic(servers, lambda, repair_rate);
        println!("{:>14.4}  {:>14.4}  (simulation, +/- {:.3})", 0.0, sim_l, sim_hw);
        // C² ≥ 1: exact spectral-expansion solution.
        let base = base.with_arrival_rate(lambda)?;
        let points = queue_length_vs_operative_scv(&solver, &base, 34.62, scv_values)?;
        for point in points {
            print_row(&[point.scv, point.mean_queue_length]);
        }
    }
    println!("\nPaper: L grows with C^2; the effect strengthens as the load increases.");
    Ok(())
}
