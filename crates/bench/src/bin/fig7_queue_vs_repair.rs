//! Figure 7: average queue size against the mean repair time, comparing exponentially
//! and hyperexponentially distributed operative periods with the same mean.
//!
//! Parameters as in the paper: N = 10, λ = 8, µ = 1, mean operative period 34.62
//! (ξ = 0.0289); the mean repair time 1/η ranges from 1 to 5.

use urs_bench::{paper_operative, print_header, print_row, sensitivity_lifecycle, smoke, system};
use urs_core::{sweeps::queue_length_vs_repair_time, SpectralExpansionSolver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // No cache here: every grid point has a distinct lifecycle, so nothing repeats.
    let solver = SpectralExpansionSolver::default();
    let grid_points = if smoke() { 3 } else { 10 };
    let repair_times: Vec<f64> =
        (0..grid_points).map(|i| 1.0 + i as f64 * 4.0 / (grid_points - 1) as f64).collect();
    let base = system(10, 8.0, sensitivity_lifecycle(4.6, 1.0));
    let points = queue_length_vs_repair_time(&solver, &base, &paper_operative(), &repair_times)?;

    print_header(
        "Figure 7: L vs mean repair time (N = 10, lambda = 8, xi = 0.0289)",
        &["1/eta", "L exponential", "L hyperexp"],
    );
    for p in &points {
        print_row(&[p.mean_repair_time, p.exponential_operative, p.hyperexponential_operative]);
    }
    println!(
        "\nPaper: the exponential assumption becomes more and more over-optimistic as the \
         average repair time increases."
    );
    Ok(())
}
