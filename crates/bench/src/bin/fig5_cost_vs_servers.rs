//! Figure 5: cost `C = 4·L + N` as a function of the number of servers, for
//! λ = 7.0, 8.0 and 8.5.
//!
//! Paper reference: the optimal number of servers is 11 for λ = 7, 12 for λ = 8 and
//! 13 for λ = 8.5.

use urs_bench::{figure5_lifecycle, print_header, print_row, smoke, system};
use urs_core::{CostModel, CostSweep, SolverCache, SpectralExpansionSolver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The three λ sweeps share the same lifecycle and server range, so the cache
    // builds each N's QBD skeleton once instead of three times.
    let cache = SolverCache::shared();
    let solver = SpectralExpansionSolver::default().with_cache(cache.clone());
    let cost_model = CostModel::paper_figure5();
    let base = system(9, 7.0, figure5_lifecycle());
    let lambdas: &[f64] = if smoke() { &[8.0] } else { &[7.0, 8.0, 8.5] };
    let top_n = if smoke() { 13 } else { 17 };
    for &lambda in lambdas {
        let base = base.with_arrival_rate(lambda)?;
        let sweep = CostSweep::evaluate(&solver, &base, &cost_model, 9..=top_n)?;
        print_header(
            &format!("Figure 5: cost vs number of servers (lambda = {lambda}, c1 = 4, c2 = 1)"),
            &["N", "L", "cost C"],
        );
        for point in sweep.points() {
            print_row(&[point.servers as f64, point.mean_queue_length, point.cost]);
        }
        if let Some(best) = sweep.optimum() {
            let expected = match lambda {
                x if (x - 7.0).abs() < 1e-9 => 11,
                x if (x - 8.0).abs() < 1e-9 => 12,
                _ => 13,
            };
            println!(
                "optimal N = {} (cost {:.2}); paper reports optimal N = {expected}",
                best.servers, best.cost
            );
        }
    }
    let stats = cache.stats();
    println!(
        "\nsolver cache: {} skeleton builds reused {} times",
        stats.skeleton_misses, stats.skeleton_hits
    );
    Ok(())
}
