//! Section 4's closing remark: the exact spectral expansion starts to struggle for
//! large N while the geometric approximation remains robust.
//!
//! Sweeps the number of servers at a fixed utilisation, reporting for each N the number
//! of operational modes, how the methods' queue-length estimates compare, and the
//! wall-clock time of each solve — once on a single thread and once with the intra-solve
//! worker pool (`ThreadPool::default()`, i.e. `URS_THREADS` or the core count).  The
//! pooled solve is asserted **bit-identical** to the serial one (the determinism
//! contract of the parallel kernels); any mismatch exits non-zero, which is what the
//! CI thread-matrix leg runs this binary for under `URS_SMOKE=1`.  Each solver is
//! retired from the sweep once it fails or its faster execution exceeds a per-solve
//! time budget, and the run closes with the **maximum practical N** reached by every
//! solver — the headline number the logarithmic-reduction and blocked-kernel rewrite
//! moved (both exact solvers now clear N = 32; see README "Performance").
//!
//! Usage: `scaling_limits [max_n] [budget_seconds]`.  `URS_SMOKE=1` shrinks the sweep
//! to CI size.
//!
//! Besides the human-readable table, the run writes `BENCH_scaling.json` to the
//! working directory: per solver the maximum practical N, every per-N wall time
//! (serial and pooled), and the worker count — machine-readable so CI can upload the
//! artifact and regressions can be diffed without parsing the table.

use std::fmt::Write as _;
use std::time::Instant;

use urs_bench::{figure5_lifecycle, smoke, system};
use urs_core::{
    GeometricApproximation, MatrixGeometricSolver, QueueSolver, SpectralExpansionSolver, ThreadPool,
};

/// One tracked solver: its display name, a serial and (optionally) a pooled instance,
/// and sweep state.
struct Tracked {
    name: &'static str,
    serial: Box<dyn QueueSolver>,
    /// The same method with a multi-worker pool injected; `None` for methods with no
    /// dense kernels worth parallelising (the geometric approximation).
    pooled: Option<Box<dyn QueueSolver>>,
    /// Largest N this solver completed within the budget.
    max_practical: Option<usize>,
    /// Set once the solver fails or blows the budget; it is then skipped.
    retired: Option<String>,
    /// Per-N measurements for the JSON artifact:
    /// `(n, modes, mean_queue_length, serial_seconds, pooled_seconds)`.
    runs: Vec<(usize, usize, f64, f64, Option<f64>)>,
}

/// Minimal JSON string escape (quotes, backslashes, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Hand-rolled JSON artifact (the workspace deliberately has no serde dependency).
fn scaling_json(solvers: &[Tracked], budget: f64, workers: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"utilisation\": 0.9,");
    let _ = writeln!(out, "  \"budget_seconds\": {budget},");
    let _ = writeln!(out, "  \"threads\": {workers},");
    let _ = writeln!(out, "  \"solvers\": [");
    for (i, tracked) in solvers.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(tracked.name));
        match tracked.max_practical {
            Some(n) => {
                let _ = writeln!(out, "      \"max_practical_n\": {n},");
            }
            None => {
                let _ = writeln!(out, "      \"max_practical_n\": null,");
            }
        }
        match &tracked.retired {
            Some(reason) => {
                let _ = writeln!(out, "      \"retired\": \"{}\",", json_escape(reason));
            }
            None => {
                let _ = writeln!(out, "      \"retired\": null,");
            }
        }
        let _ = writeln!(out, "      \"runs\": [");
        for (j, (n, modes, mean, serial, pooled)) in tracked.runs.iter().enumerate() {
            let pooled_cell = pooled.map(|p| format!("{p}")).unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "        {{\"n\": {n}, \"modes\": {modes}, \"mean_queue_length\": {mean}, \
                 \"serial_seconds\": {serial}, \"pooled_seconds\": {pooled_cell}}}"
            );
            let _ = writeln!(out, "{}", if j + 1 < tracked.runs.len() { "," } else { "" });
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{}", if i + 1 < solvers.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (default_max, default_budget) = if smoke() { (8, 5.0) } else { (48, 60.0) };
    let mut args = std::env::args().skip(1);
    let max_n: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(default_max);
    let budget: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(default_budget);
    let pool = ThreadPool::default();
    let workers = pool.threads();

    let mut solvers = vec![
        Tracked {
            name: "spectral expansion",
            serial: Box::new(SpectralExpansionSolver::default()),
            pooled: Some(Box::new(SpectralExpansionSolver::default().with_pool(pool.clone()))),
            max_practical: None,
            retired: None,
            runs: Vec::new(),
        },
        Tracked {
            name: "matrix geometric",
            serial: Box::new(MatrixGeometricSolver::default()),
            pooled: Some(Box::new(MatrixGeometricSolver::default().with_pool(pool.clone()))),
            max_practical: None,
            retired: None,
            runs: Vec::new(),
        },
        Tracked {
            name: "geometric approximation",
            serial: Box::new(GeometricApproximation::default()),
            pooled: None,
            max_practical: None,
            retired: None,
            runs: Vec::new(),
        },
    ];

    println!(
        "Solver scaling at utilisation 0.9 (per-solve budget {budget:.0}s, pool: {workers} workers)"
    );
    println!(
        "{:>4}  {:>6}  {:>23}  {:>12}  {:>10}  {:>10}",
        "N", "modes", "solver", "L", "1 thread", "pooled"
    );
    for n in (4..=max_n).step_by(2) {
        let lifecycle = figure5_lifecycle();
        let base = system(n, 0.9 * n as f64 * lifecycle.availability(), lifecycle);
        let modes = base.environment_states();
        for tracked in &mut solvers {
            if tracked.retired.is_some() {
                continue;
            }
            let start = Instant::now();
            let outcome = tracked.serial.solve(&base);
            let serial_elapsed = start.elapsed().as_secs_f64();
            let solution = match outcome {
                Ok(solution) => solution,
                Err(err) => {
                    println!(
                        "{:>4}  {:>6}  {:>23}  {:>12}  {:>9.3}s  {:>10}   failed: {err}",
                        n, modes, tracked.name, "-", serial_elapsed, "-"
                    );
                    tracked.retired = Some(format!("failed at N = {n}: {err}"));
                    continue;
                }
            };
            let mean = solution.mean_queue_length();
            let mut best_elapsed = serial_elapsed;
            let mut pooled_seconds = None;
            let pooled_cell = match &tracked.pooled {
                Some(pooled) => {
                    let start = Instant::now();
                    let pooled_solution = pooled.solve(&base)?;
                    let pooled_elapsed = start.elapsed().as_secs_f64();
                    best_elapsed = best_elapsed.min(pooled_elapsed);
                    // The determinism contract: the pool changes wall time, never bits.
                    let pooled_mean = pooled_solution.mean_queue_length();
                    if mean.to_bits() != pooled_mean.to_bits() {
                        return Err(format!(
                            "bit-identity violation: {} at N = {n}: serial L = {mean:e} \
                             vs pooled L = {pooled_mean:e}",
                            tracked.name
                        )
                        .into());
                    }
                    for level in 0..=n {
                        let (s, p) = (
                            solution.level_probability(level),
                            pooled_solution.level_probability(level),
                        );
                        if s.to_bits() != p.to_bits() {
                            return Err(format!(
                                "bit-identity violation: {} at N = {n}, level {level}: \
                                 serial {s:e} vs pooled {p:e}",
                                tracked.name
                            )
                            .into());
                        }
                    }
                    pooled_seconds = Some(pooled_elapsed);
                    format!("{pooled_elapsed:>9.3}s")
                }
                None => format!("{:>10}", "-"),
            };
            println!(
                "{:>4}  {:>6}  {:>23}  {:>12.4}  {:>9.3}s  {pooled_cell}",
                n, modes, tracked.name, mean, serial_elapsed
            );
            tracked.runs.push((n, modes, mean, serial_elapsed, pooled_seconds));
            if best_elapsed <= budget {
                tracked.max_practical = Some(n);
            } else {
                tracked.retired = Some(format!("exceeded {budget:.0}s budget at N = {n}"));
            }
        }
    }

    println!("\nMaximum practical N per solver (within the {budget:.0}s budget):");
    for tracked in &solvers {
        let reached =
            tracked.max_practical.map(|n| n.to_string()).unwrap_or_else(|| "none".to_string());
        match &tracked.retired {
            Some(reason) => println!("  {:<24} N = {reached}  ({reason})", tracked.name),
            None => println!("  {:<24} N = {reached}  (sweep limit reached)", tracked.name),
        }
    }
    std::fs::write("BENCH_scaling.json", scaling_json(&solvers, budget, workers))?;
    println!("\nWrote machine-readable sweep results to BENCH_scaling.json.");
    println!("Every pooled solve above was verified bit-identical to its serial run.");
    println!("\nPaper: for N greater than about 24 the exact solution warns of ill-conditioned");
    println!("matrices while the approximation shows no such problems; with the blocked");
    println!("kernels and logarithmic reduction both exact solvers now clear the sweep.");
    Ok(())
}
