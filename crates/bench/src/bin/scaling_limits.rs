//! Section 4's closing remark: the exact spectral expansion starts to struggle for
//! large N while the geometric approximation remains robust.
//!
//! Sweeps the number of servers at a fixed utilisation, reporting for each N the number
//! of operational modes, how the methods' queue-length estimates compare, and the
//! wall-clock time of each solve.  Each solver is retired from the sweep once it fails
//! or exceeds a per-solve time budget, and the run closes with the **maximum practical
//! N** reached by every solver — the headline number the logarithmic-reduction and
//! blocked-kernel rewrite moved (both exact solvers now clear N = 32; see README
//! "Performance").
//!
//! Usage: `scaling_limits [max_n] [budget_seconds]`.  `URS_SMOKE=1` shrinks the sweep
//! to CI size.

use std::time::Instant;

use urs_bench::{figure5_lifecycle, smoke, system};
use urs_core::{
    GeometricApproximation, MatrixGeometricSolver, QueueSolver, SpectralExpansionSolver,
};

/// One tracked solver: its display name, the solver object, and sweep state.
struct Tracked {
    name: &'static str,
    solver: Box<dyn QueueSolver>,
    /// Largest N this solver completed within the budget.
    max_practical: Option<usize>,
    /// Set once the solver fails or blows the budget; it is then skipped.
    retired: Option<String>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (default_max, default_budget) = if smoke() { (8, 5.0) } else { (32, 60.0) };
    let mut args = std::env::args().skip(1);
    let max_n: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(default_max);
    let budget: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(default_budget);

    let mut solvers = vec![
        Tracked {
            name: "spectral expansion",
            solver: Box::new(SpectralExpansionSolver::default()),
            max_practical: None,
            retired: None,
        },
        Tracked {
            name: "matrix geometric",
            solver: Box::new(MatrixGeometricSolver::default()),
            max_practical: None,
            retired: None,
        },
        Tracked {
            name: "geometric approximation",
            solver: Box::new(GeometricApproximation::default()),
            max_practical: None,
            retired: None,
        },
    ];

    println!("Solver scaling at utilisation 0.9 (per-solve budget {budget:.0}s)");
    println!("{:>4}  {:>6}  {:>14}  {:>12}  {:>10}", "N", "modes", "solver", "L", "time");
    for n in (4..=max_n).step_by(2) {
        let lifecycle = figure5_lifecycle();
        let base = system(n, 0.9 * n as f64 * lifecycle.availability(), lifecycle);
        let modes = base.environment_states();
        for tracked in &mut solvers {
            if tracked.retired.is_some() {
                continue;
            }
            let start = Instant::now();
            let outcome = tracked.solver.solve(&base);
            let elapsed = start.elapsed().as_secs_f64();
            match outcome {
                Ok(solution) => {
                    println!(
                        "{:>4}  {:>6}  {:>14}  {:>12.4}  {:>9.3}s",
                        n,
                        modes,
                        tracked.name,
                        solution.mean_queue_length(),
                        elapsed
                    );
                    if elapsed <= budget {
                        tracked.max_practical = Some(n);
                    } else {
                        tracked.retired = Some(format!("exceeded {budget:.0}s budget at N = {n}"));
                    }
                }
                Err(err) => {
                    println!(
                        "{:>4}  {:>6}  {:>14}  {:>12}  {:>9.3}s   failed: {err}",
                        n, modes, tracked.name, "-", elapsed
                    );
                    tracked.retired = Some(format!("failed at N = {n}: {err}"));
                }
            }
        }
    }

    println!("\nMaximum practical N per solver (within the {budget:.0}s budget):");
    for tracked in &solvers {
        let reached =
            tracked.max_practical.map(|n| n.to_string()).unwrap_or_else(|| "none".to_string());
        match &tracked.retired {
            Some(reason) => println!("  {:<24} N = {reached}  ({reason})", tracked.name),
            None => println!("  {:<24} N = {reached}  (sweep limit reached)", tracked.name),
        }
    }
    println!("\nPaper: for N greater than about 24 the exact solution warns of ill-conditioned");
    println!("matrices while the approximation shows no such problems; with the blocked");
    println!("kernels and logarithmic reduction both exact solvers now clear the sweep.");
    Ok(())
}
