//! Section 4's closing remark: the exact spectral expansion starts to struggle for
//! large N while the geometric approximation remains robust.
//!
//! Sweeps the number of servers at a fixed utilisation, reporting for each N the number
//! of operational modes, whether the exact solver succeeded, how the two methods'
//! queue-length estimates compare, and the wall-clock time of each solve.

use std::time::Instant;

use urs_bench::{figure5_lifecycle, smoke, system};
use urs_core::{GeometricApproximation, QueueSolver, SpectralExpansionSolver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let default_max = if smoke() { 8 } else { 20 };
    let max_n: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(default_max);
    println!("Solver scaling at utilisation 0.9 (exact spectral expansion vs approximation)");
    println!(
        "{:>4}  {:>6}  {:>12}  {:>12}  {:>12}  {:>10}  {:>10}",
        "N", "modes", "L exact", "L approx", "rel. diff", "t exact", "t approx"
    );
    for n in (4..=max_n).step_by(2) {
        let lifecycle = figure5_lifecycle();
        let base = system(n, 0.9 * n as f64 * lifecycle.availability(), lifecycle);
        let modes = base.environment_states();

        let start = Instant::now();
        let exact = SpectralExpansionSolver::default().solve(&base);
        let exact_time = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let approx = GeometricApproximation::default().solve(&base)?;
        let approx_time = start.elapsed().as_secs_f64();

        match exact {
            Ok(solution) => {
                let l_exact = solution.mean_queue_length();
                let l_approx = approx.mean_queue_length();
                println!(
                    "{:>4}  {:>6}  {:>12.4}  {:>12.4}  {:>12.4}  {:>9.3}s  {:>9.3}s",
                    n,
                    modes,
                    l_exact,
                    l_approx,
                    (l_approx - l_exact).abs() / l_exact,
                    exact_time,
                    approx_time
                );
            }
            Err(err) => {
                println!(
                    "{:>4}  {:>6}  {:>12}  {:>12.4}  {:>12}  {:>9.3}s  {:>9.3}s   exact failed: {err}",
                    n, modes, "-", approx.mean_queue_length(), "-", exact_time, approx_time
                );
            }
        }
    }
    println!("\nPaper: for N greater than about 24 the exact solution warns of ill-conditioned");
    println!("matrices while the approximation shows no such problems.");
    Ok(())
}
