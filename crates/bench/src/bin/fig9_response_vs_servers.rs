//! Figure 9: average response time against the number of servers, exact and
//! approximate, and the minimum cluster size for a response-time target.
//!
//! Parameters as in the paper: λ = 7.5, µ = 1, fitted operative-period distribution and
//! exponential repairs with η = 25; N ranges from 8 to 13.  The paper's example reads
//! off that at least 9 servers are needed to keep W ≤ 1.5.

use urs_bench::{figure5_lifecycle, print_header, print_row, system};
use urs_core::{GeometricApproximation, ProvisioningSweep, SolverCache, SpectralExpansionSolver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = system(8, 7.5, figure5_lifecycle());
    // The two sweeps visit the same (N, λ) grid, so sharing one cache lets the
    // approximation pass reuse every eigensystem the exact pass factorised — the
    // quadratic eigenproblem is solved once, not twice, per server count.
    let cache = SolverCache::shared();
    let exact = ProvisioningSweep::evaluate(
        &SpectralExpansionSolver::default().with_cache(cache.clone()),
        &base,
        8..=13,
    )?;
    let approx = ProvisioningSweep::evaluate(
        &GeometricApproximation::default().with_cache(cache.clone()),
        &base,
        8..=13,
    )?;

    print_header(
        "Figure 9: W vs number of servers (lambda = 7.5, eta = 25)",
        &["N", "W exact", "W approx"],
    );
    for (e, a) in exact.points().iter().zip(approx.points()) {
        print_row(&[e.servers as f64, e.mean_response_time, a.mean_response_time]);
    }
    match exact.min_servers_for_response_time(1.5) {
        Some(n) => println!("\nminimum N with W <= 1.5 (exact): {n}   (paper: at least 9 servers)"),
        None => println!("\nno server count in range meets W <= 1.5"),
    }
    match approx.min_servers_for_response_time(1.5) {
        Some(n) => println!("minimum N with W <= 1.5 (approximation): {n}"),
        None => println!("the approximation finds no feasible count in the range"),
    }
    let stats = cache.stats();
    println!(
        "cache: {} eigensystem reuse(s) across {} server counts",
        stats.eigen_hits,
        exact.points().len()
    );
    Ok(())
}
