//! The paper's open problem: the *distribution* of the response time.
//!
//! Section 5 of the paper notes that the spectral-expansion solution yields the mean
//! response time but not its distribution (e.g. the 90th percentile) and leaves that as
//! future work.  This experiment answers the question empirically: for the paper's
//! Figure 9 setting (λ = 7.5, fitted lifecycle) it simulates the system for each number
//! of servers and reports the mean together with the 90th, 95th and 99th percentiles of
//! the response time, alongside the analytic mean for reference.

use urs_bench::{figure5_lifecycle, print_header, smoke, system};
use urs_core::{QueueSolver, SpectralExpansionSolver};
use urs_dist::Exponential;
use urs_sim::{BreakdownQueueSimulation, SimulationConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lifecycle = figure5_lifecycle();
    print_header(
        "Open problem: response-time percentiles by simulation (lambda = 7.5, eta = 25)",
        &["N", "W analytic", "W simulated", "90th pct", "95th pct", "99th pct"],
    );
    let (last_n, warmup, horizon) =
        if smoke() { (10, 3_000.0, 30_000.0) } else { (13, 20_000.0, 220_000.0) };
    for servers in 9..=last_n {
        let config = system(servers, 7.5, lifecycle.clone());
        let analytic = SpectralExpansionSolver::default().solve(&config)?.mean_response_time();
        let sim_config = SimulationConfig::builder(servers, 7.5)
            .service(Exponential::new(1.0)?)
            .operative(lifecycle.operative().clone())
            .inoperative(lifecycle.inoperative().clone())
            .warmup(warmup)
            .horizon(horizon)
            .build()?;
        let result = BreakdownQueueSimulation::new(sim_config).run(2006)?;
        println!(
            "{:>14}  {:>14.4}  {:>14.4}  {:>14.4}  {:>14.4}  {:>14.4}",
            servers,
            analytic,
            result.mean_response_time(),
            result.response_time_percentile(0.90).unwrap_or(f64::NAN),
            result.response_time_percentile(0.95).unwrap_or(f64::NAN),
            result.response_time_percentile(0.99).unwrap_or(f64::NAN),
        );
    }
    println!("\nThe percentile columns are what the analytic model of the paper cannot provide.");
    Ok(())
}
