//! The paper's open problem, answered and cross-validated: response-time percentiles.
//!
//! Section 5 of the paper notes that the spectral-expansion solution yields the mean
//! response time but not its distribution (e.g. the 90th percentile) and leaves that
//! as future work.  This experiment now answers the question twice for the Figure 9
//! setting (λ = 7.5, fitted lifecycle): **analytically**, via the certified
//! Laplace-transform inversion of `urs_core::response` (the `percentile_vs_servers`
//! SLA sweep), and **empirically**, via independent simulation replications with 95%
//! confidence intervals.  Every percentile is printed side by side; if any analytic
//! value falls outside three half-widths of its simulated interval the run reports
//! the divergence and exits non-zero, so this binary doubles as an end-to-end
//! validation gate.

use std::process::ExitCode;

use urs_bench::{figure5_lifecycle, print_header, smoke, system};
use urs_core::sweeps::percentile_vs_servers_with;
use urs_core::{ResponseOptions, SolverCache, ThreadPool};
use urs_dist::Exponential;
use urs_sim::{BreakdownQueueSimulation, Replications, SimulationConfig};

const FRACTIONS: [f64; 3] = [0.90, 0.95, 0.99];

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn std::error::Error>> {
    let lifecycle = figure5_lifecycle();
    let (last_n, warmup, horizon, replications) =
        if smoke() { (10, 2_000.0, 15_000.0, 4) } else { (13, 10_000.0, 120_000.0, 8) };
    let counts: Vec<usize> = (9..=last_n).collect();
    let pool = ThreadPool::default();
    let cache = SolverCache::shared();
    let base = system(counts[0], 7.5, lifecycle.clone());
    let analytic = percentile_vs_servers_with(
        &base,
        &counts,
        &FRACTIONS,
        ResponseOptions::default(),
        &cache,
        &pool,
    )?;

    print_header(
        "Response-time percentiles: certified inversion vs simulation (lambda = 7.5)",
        &["N", "W exact", "P90 exact", "P90 sim", "P95 exact", "P95 sim", "P99 exact", "P99 sim"],
    );
    let mut divergences = Vec::new();
    for point in &analytic {
        let sim_config = SimulationConfig::builder(point.servers, 7.5)
            .service(Exponential::new(1.0)?)
            .operative(lifecycle.operative().clone())
            .inoperative(lifecycle.inoperative().clone())
            .warmup(warmup)
            .horizon(horizon)
            .build()?;
        let simulation = BreakdownQueueSimulation::new(sim_config);
        let intervals = Replications::new(replications, 2006).run_percentiles_with(
            &simulation,
            &FRACTIONS,
            &pool,
        )?;
        let mut cells = vec![point.mean_response_time];
        for (exact, ci) in point.percentiles.iter().zip(&intervals) {
            cells.push(*exact);
            cells.push(ci.interval.mean);
            // Three half-widths (like the repo's other simulation validations), with a
            // small relative floor so a freak near-zero variance cannot false-alarm.
            let slack = 3.0 * ci.interval.half_width.max(0.02 * ci.interval.mean.abs());
            if (exact - ci.interval.mean).abs() > slack {
                divergences.push(format!(
                    "N = {}, P{:.0}: analytic {exact:.4} vs simulated {:.4} ± {:.4}",
                    point.servers,
                    100.0 * ci.fraction,
                    ci.interval.mean,
                    ci.interval.half_width
                ));
            }
        }
        let row = cells.iter().map(|v| format!("{v:>14.4}")).collect::<Vec<_>>().join("  ");
        println!("{:>14}  {row}", point.servers);
    }

    if divergences.is_empty() {
        println!(
            "\nAll analytic percentiles fall inside the simulated 95% intervals; every value \
             above was additionally certified by the Euler/Talbot agreement check."
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("\nDIVERGENCE between analytic and simulated percentiles:");
        for line in &divergences {
            eprintln!("  {line}");
        }
        Ok(ExitCode::FAILURE)
    }
}
