//! Heterogeneous fleets: sweeping the mix of two server classes at fixed fleet size.
//!
//! The paper models `N` i.i.d. servers and flags distinct server classes as future
//! work; this experiment exercises that extension.  A fleet of fixed total size mixes
//! *steady* servers (the paper's fitted lifecycle, µ = 1) with *fast-but-fragile*
//! servers (µ = 1.5, exponential lifecycle with mean operative period 10 and mean
//! repair time 0.5).  For every mix the exact spectral expansion and the geometric
//! approximation solve the product-mode-space model, and one mixed point is
//! cross-checked against the discrete-event simulator's confidence interval.
//!
//! Run with `URS_SMOKE=1` for a CI-sized grid.

use urs_bench::{figure5_lifecycle, print_header, print_row, smoke};
use urs_core::{
    sweeps::queue_length_vs_class_mix, GeometricApproximation, QueueSolver, ServerClass,
    ServerLifecycle, SolverCache, SpectralExpansionSolver, SystemConfig,
};
use urs_sim::{BreakdownQueueSimulation, Replications, SimulationConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let total = if smoke() { 5 } else { 8 };
    let lambda = if smoke() { 3.2 } else { 5.5 };
    let steady = ServerClass::new(1, 1.0, figure5_lifecycle())?;
    let fragile_lifecycle = ServerLifecycle::exponential(1.0 / 10.0, 1.0 / 0.5)?;
    let fragile = ServerClass::new(1, 1.5, fragile_lifecycle.clone())?;

    // One cache for both sweeps (and the cross-check below): the approximation reuses
    // every eigensystem the exact pass factorises instead of re-solving it.
    let cache = SolverCache::shared();
    let exact = queue_length_vs_class_mix(
        &SpectralExpansionSolver::default().with_cache(cache.clone()),
        lambda,
        &steady,
        &fragile,
        total,
    )?;
    let approx = queue_length_vs_class_mix(
        &GeometricApproximation::default().with_cache(cache.clone()),
        lambda,
        &steady,
        &fragile,
        total,
    )?;

    print_header(
        &format!(
            "Heterogeneous fleet: L vs fast-fragile share (total N = {total}, lambda = {lambda})"
        ),
        &["fragile N", "utilisation", "L exact", "L approx"],
    );
    for (e, a) in exact.iter().zip(&approx) {
        print_row(&[
            e.secondary_servers as f64,
            e.utilisation,
            e.mean_queue_length,
            a.mean_queue_length,
        ]);
    }
    if let Some(best) =
        exact.iter().min_by(|a, b| a.mean_queue_length.total_cmp(&b.mean_queue_length))
    {
        println!(
            "\nbest mix: {} fragile server(s) out of {total} (L = {:.4})",
            best.secondary_servers, best.mean_queue_length
        );
    }

    // Cross-check one mixed point against the simulator.
    let fragile_count = total / 2;
    let config = SystemConfig::heterogeneous(
        lambda,
        vec![steady.with_count(total - fragile_count)?, fragile.with_count(fragile_count)?],
    )?;
    let analytic = SpectralExpansionSolver::default()
        .with_cache(cache.clone())
        .solve(&config)?
        .mean_queue_length();
    let stats = cache.stats();
    println!(
        "\ncache: {} skeleton build(s), {} eigensystem reuse(s) across {} mixes",
        stats.skeleton_misses,
        stats.eigen_hits,
        exact.len()
    );
    // Build the simulated classes from the *same* ServerClass objects as the analytic
    // side, so tuning the scenario at the top of main cannot desynchronise the two.
    let mut sim_builder = SimulationConfig::heterogeneous(lambda);
    for class in config.classes() {
        sim_builder = sim_builder.class(
            class.count(),
            class.service_rate(),
            class.lifecycle().operative().clone(),
            class.lifecycle().inoperative().clone(),
        );
    }
    let sim_config = sim_builder
        .warmup(if smoke() { 2_000.0 } else { 20_000.0 })
        .horizon(if smoke() { 20_000.0 } else { 200_000.0 })
        .build()?;
    let replications = if smoke() { 4 } else { 8 };
    let summary =
        Replications::new(replications, 2006).run(&BreakdownQueueSimulation::new(sim_config))?;
    let agrees = summary.mean_queue_length.contains(analytic);
    println!(
        "simulator check at {fragile_count} fragile: L = {:.4} in [{:.4}, {:.4}] (analytic {:.4}) — {}",
        summary.mean_queue_length.mean,
        summary.mean_queue_length.lower(),
        summary.mean_queue_length.upper(),
        analytic,
        if agrees { "inside the 95% CI" } else { "OUTSIDE the 95% CI" }
    );
    if !agrees {
        // Fail the (smoke-)run so CI flags analytic/simulator divergence instead of
        // merely printing it.
        return Err("analytic solution outside the simulated 95% confidence interval".into());
    }
    Ok(())
}
