//! Figure 4: empirical vs fitted density of the inoperative periods (range 0–1.2).
//!
//! Prints the empirical density of the inoperative (repair) periods from a synthetic
//! Sun-like trace together with the fitted two-phase hyperexponential density and the
//! single-exponential density — the curves of Figure 4.

use urs_bench::{print_header, print_row, smoke};
use urs_data::{AnalysisOptions, SyntheticTrace, TraceAnalysis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let default_events = if smoke() { 20_000 } else { 140_000 };
    let events: usize =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(default_events);
    let trace = SyntheticTrace::paper_like().with_events(events).generate(2006)?;
    let analysis = TraceAnalysis::run(&trace, AnalysisOptions::default())?;

    print_header(
        "Figure 4: densities of inoperative periods (0-1.2)",
        &["x", "observed", "hyperexp fit", "exponential"],
    );
    for point in analysis.inoperative().density_series() {
        print_row(&[point.x, point.empirical, point.hyperexponential, point.exponential]);
    }
    println!(
        "\nKS statistic of the hyperexponential fit: {:.4} (paper: 0.1832)",
        analysis.inoperative().ks_hyperexponential().statistic()
    );
    Ok(())
}
