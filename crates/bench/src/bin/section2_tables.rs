//! Section 2 of the paper: statistical analysis of the breakdown trace.
//!
//! Regenerates the quantitative statements of Section 2 from a synthetic Sun-like
//! trace: the fraction of anomalous rows, the estimated moments and coefficients of
//! variation, the fitted two-phase hyperexponential parameters for both kinds of
//! periods, and the Kolmogorov–Smirnov statistics/decisions for the exponential and
//! hyperexponential hypotheses.
//!
//! Paper reference values (operative periods): exponential rejected with D = 0.4742;
//! hyperexponential fit α₁ = 0.7246, ξ₁ = 0.1663, α₂ = 0.2754, ξ₂ = 0.0091 accepted
//! with D = 0.1412 (50 points).  Inoperative periods: hyperexponential fit
//! β = (0.9303, 0.0697), η = (25.0043, 1.6346), D = 0.1832 (40 points).

use urs_bench::smoke;
use urs_data::{AnalysisOptions, SyntheticTrace, TraceAnalysis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let default_events = if smoke() { 20_000 } else { 140_000 };
    let events: usize =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(default_events);
    let trace = SyntheticTrace::paper_like().with_events(events).generate(2006)?;
    let analysis = TraceAnalysis::run(&trace, AnalysisOptions::default())?;

    println!("Section 2: empirical analysis of a synthetic Sun-like trace ({events} events)");
    println!(
        "rows discarded as anomalous: {:.2}% (paper: < 4%)",
        100.0 * analysis.discarded_fraction()
    );

    let op = analysis.operative();
    println!("\nOperative periods");
    println!(
        "  estimated mean            : {:>10.4}   (paper ground truth 34.62)",
        op.moments().mean()
    );
    println!("  estimated C^2             : {:>10.4}   (paper 4.6)", op.moments().scv());
    let fit = op.fitted_hyperexponential();
    println!("  fitted H2 weights         : {:?}   (paper 0.7246, 0.2754)", fit.weights());
    println!("  fitted H2 rates           : {:?}   (paper 0.1663, 0.0091)", fit.rates());
    println!(
        "  KS exponential            : D = {:.4}, 5% crit {:.4}, 1% crit {:.4} -> {}   (paper D = 0.4742, rejected)",
        op.ks_exponential().statistic(),
        op.ks_exponential().critical_value(0.05)?,
        op.ks_exponential().critical_value(0.01)?,
        if op.exponential_accepted_at_5_percent() { "accepted" } else { "REJECTED" },
    );
    println!(
        "  KS hyperexponential       : D = {:.4}, 5% crit {:.4}, 10% crit {:.4} -> {}   (paper D = 0.1412, accepted)",
        op.ks_hyperexponential().statistic(),
        op.ks_hyperexponential().critical_value(0.05)?,
        op.ks_hyperexponential().critical_value(0.10)?,
        if op.hyperexponential_accepted_at_5_percent() { "accepted" } else { "REJECTED" },
    );

    let rep = analysis.inoperative();
    println!("\nInoperative periods");
    println!(
        "  estimated mean            : {:>10.4}   (paper ground truth 0.0799)",
        rep.moments().mean()
    );
    println!("  estimated C^2             : {:>10.4}", rep.moments().scv());
    let rfit = rep.fitted_hyperexponential();
    println!("  fitted H2 weights         : {:?}   (paper 0.9303, 0.0697)", rfit.weights());
    println!("  fitted H2 rates           : {:?}   (paper 25.0043, 1.6346)", rfit.rates());
    println!(
        "  KS exponential            : D = {:.4} -> {}   (paper: fails at 10%, close at 5%)",
        rep.ks_exponential().statistic(),
        if rep.exponential_accepted_at_5_percent() { "accepted at 5%" } else { "rejected at 5%" },
    );
    println!(
        "  KS hyperexponential       : D = {:.4}, 5% crit {:.4} -> {}   (paper D = 0.1832, accepted)",
        rep.ks_hyperexponential().statistic(),
        rep.ks_hyperexponential().critical_value(0.05)?,
        if rep.hyperexponential_accepted_at_5_percent() { "accepted" } else { "REJECTED" },
    );
    Ok(())
}
