//! Cost-optimal fleet composition: Section 4's provisioning question lifted to
//! heterogeneous server classes.
//!
//! The paper's Figure 5 optimises the cost `C = c₁·L + c₂·N` over a single server
//! count.  This experiment prices two classes differently — *steady* servers (the
//! paper's fitted lifecycle, µ = 1, price 1.0) and *fast-but-fragile* servers
//! (µ = 1.5, mean operative period 10, mean repair time 0.5, price 1.4) — and asks
//! which composition `(N_fast, N_steady)` minimises `C = c₁·L + Σ_j c₂ⱼ·Nⱼ` under a
//! fleet-size bound, with and without a hardware budget.  Both search strategies are
//! run and compared: exhaustive exact evaluation, and approximation screening with
//! exact verification of the shortlist (sharing one `SolverCache`, so verification
//! reuses the skeletons and eigensystems screening already factorised).
//!
//! Run with `URS_SMOKE=1` for a CI-sized instance.

use std::sync::Arc;

use urs_bench::{figure5_lifecycle, print_header, print_row, smoke};
use urs_core::{
    ClassCostModel, MixBounds, MixSearch, MixSearchOptions, ServerClass, ServerLifecycle,
    SolverCache,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (lambda, max_servers) = if smoke() { (3.2, 6) } else { (5.5, 10) };
    let steady = ServerClass::new(1, 1.0, figure5_lifecycle())?;
    let fragile = ServerClass::new(1, 1.5, ServerLifecycle::exponential(1.0 / 10.0, 2.0)?)?;
    let cost_model = ClassCostModel::new(4.0, vec![1.4, 1.0])?;

    let search = MixSearch::new(
        lambda,
        vec![fragile.clone(), steady.clone()],
        cost_model.clone(),
        MixBounds::up_to(max_servers)?,
    )?;

    // Exhaustive reference: every feasible composition solved exactly.
    let exact = search.run_exhaustive()?;
    print_header(
        &format!(
            "Optimal mix: C = 4·L + 1.4·N_fast + 1.0·N_steady (lambda = {lambda}, N <= {max_servers})"
        ),
        &["fast N", "steady N", "L", "cost C"],
    );
    for candidate in exact.ranked().iter().take(8) {
        print_row(&[
            candidate.counts()[0] as f64,
            candidate.counts()[1] as f64,
            candidate.mean_queue_length(),
            candidate.cost(),
        ]);
    }
    let best = exact.optimum().ok_or("no stable composition in the bounds")?;
    println!(
        "\nexhaustive optimum: {} fast + {} steady (C = {:.4}, L = {:.4}; \
         {} candidates, {} unstable skipped)",
        best.counts()[0],
        best.counts()[1],
        best.cost(),
        best.mean_queue_length(),
        exact.candidates(),
        exact.skipped_unstable()
    );

    // Screened path on the same space: approximation ranks, exact verifies top-k.
    let cache = SolverCache::shared();
    let screened = search
        .clone()
        .with_cache(Arc::clone(&cache))
        .with_options(MixSearchOptions { exhaustive_limit: 0, ..Default::default() })
        .run()?;
    let screened_best = screened.optimum().ok_or("screening lost every candidate")?;
    let stats = cache.stats();
    println!(
        "screened optimum:   {} fast + {} steady (C = {:.4}; {} candidates verified, \
         {} eigensystem reuses)",
        screened_best.counts()[0],
        screened_best.counts()[1],
        screened_best.cost(),
        screened.ranked().len(),
        stats.eigen_hits
    );
    if screened_best.counts() != best.counts() {
        return Err("screened optimum diverged from the exhaustive optimum".into());
    }

    // The same question under a hardware budget: the optimiser must trade holding
    // cost against the budget boundary.
    let budget = cost_model.fleet_cost(best.counts()) - 0.2;
    let bounded = MixSearch::new(
        lambda,
        vec![fragile, steady],
        cost_model.clone(),
        MixBounds::up_to(max_servers)?.with_budget(budget)?,
    )?
    .run()?;
    match bounded.optimum() {
        Some(b) => println!(
            "with budget {:.2}:   {} fast + {} steady (C = {:.4}, fleet cost {:.2})",
            budget,
            b.counts()[0],
            b.counts()[1],
            b.cost(),
            cost_model.fleet_cost(b.counts())
        ),
        None => println!("with budget {budget:.2}: no stable composition is affordable"),
    }
    Ok(())
}
