//! Figure 8: exact solution vs geometric approximation as the load increases.
//!
//! Parameters as in the paper: N = 10, µ = 1, fitted operative-period distribution
//! (α₁ = 0.7246, ξ₁ = 0.1663, ξ₂ = 0.0091) and exponential repairs with η = 25.  The
//! load (utilisation) ranges from 0.89 to very close to 1.

use urs_bench::{figure5_lifecycle, print_header, print_row, smoke, system};
use urs_core::{
    sweeps::queue_length_vs_load, GeometricApproximation, SolverCache, SpectralExpansionSolver,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = system(10, 8.0, figure5_lifecycle());
    // Loads from 0.89 up to 0.995 — the queue must stay strictly stable.
    let mut utilisations: Vec<f64> =
        (0..if smoke() { 3 } else { 11 }).map(|i| 0.89 + i as f64 * 0.01).collect();
    utilisations.push(0.995);
    // Only λ varies along this sweep, and the cache is shared between the two solvers:
    // the QBD skeleton is built once for the whole grid and the geometric
    // approximation reuses the eigensystem the exact solver factorised at each point
    // instead of solving the quadratic eigenproblem a second time.
    let cache = SolverCache::shared();
    let points = queue_length_vs_load(
        &SpectralExpansionSolver::default().with_cache(cache.clone()),
        &GeometricApproximation::default().with_cache(cache.clone()),
        &base,
        &utilisations,
    )?;

    print_header(
        "Figure 8: exact vs approximate L against the load (N = 10, eta = 25)",
        &["load", "L exact", "L approx", "rel. error"],
    );
    for p in &points {
        let rel_error = (p.comparison - p.reference).abs() / p.reference;
        print_row(&[p.utilisation, p.reference, p.comparison, rel_error]);
    }
    let stats = cache.stats();
    println!(
        "\ncache: {} skeleton build(s), {} eigensystem reuse(s) across {} grid points",
        stats.skeleton_misses,
        stats.eigen_hits,
        points.len()
    );
    println!("Paper: the approximation becomes more accurate as the load increases.");
    Ok(())
}
