//! Figure 3: empirical vs fitted density of the operative periods (range 0–250).
//!
//! Prints the empirical density of the operative periods derived from a synthetic
//! Sun-like trace together with the density of the fitted two-phase hyperexponential
//! and, for contrast, of the rejected exponential fit — the three curves of Figure 3.

use urs_bench::{print_header, print_row, smoke};
use urs_data::{AnalysisOptions, SyntheticTrace, TraceAnalysis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let default_events = if smoke() { 20_000 } else { 140_000 };
    let events: usize =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(default_events);
    let trace = SyntheticTrace::paper_like().with_events(events).generate(2006)?;
    let analysis = TraceAnalysis::run(&trace, AnalysisOptions::default())?;

    print_header(
        "Figure 3: densities of operative periods (0-250)",
        &["x", "observed", "hyperexp fit", "exponential"],
    );
    for point in analysis.operative().density_series() {
        print_row(&[point.x, point.empirical, point.hyperexponential, point.exponential]);
    }
    println!(
        "\nKS statistic of the hyperexponential fit: {:.4} (paper: 0.1412)",
        analysis.operative().ks_hyperexponential().statistic()
    );
    Ok(())
}
