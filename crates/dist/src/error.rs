//! Error type for distribution construction, estimation and fitting.

use std::error::Error;
use std::fmt;

/// Errors produced by the distribution and statistics layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DistError {
    /// A distribution or estimator parameter is outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// A sample was empty or too small for the requested estimate.
    InsufficientData(String),
    /// A fitting procedure could not produce a valid distribution (e.g. the
    /// requested moments are not attainable by the chosen family).
    FitFailure(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidParameter { name, value, constraint } => {
                write!(f, "invalid parameter {name} = {value}: {constraint}")
            }
            DistError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            DistError::FitFailure(msg) => write!(f, "fit failed: {msg}"),
        }
    }
}

impl Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DistError::InvalidParameter { name: "rate", value: -1.0, constraint: "positive" };
        assert!(e.to_string().contains("rate"));
        assert!(DistError::InsufficientData("empty".into()).to_string().contains("empty"));
        assert!(DistError::FitFailure("scv below 1".into()).to_string().contains("scv"));
    }

    #[test]
    fn error_is_send_sync_clone_eq() {
        fn check<T: Send + Sync + Clone + PartialEq>() {}
        check::<DistError>();
    }
}
