//! The exponential distribution.

use rand::RngCore;

use crate::error::DistError;
use crate::traits::{factorial, uniform01, ContinuousDistribution};
use crate::Result;

/// Exponential distribution with rate `λ`: density `λ e^{−λx}` on `x ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] unless `rate` is positive and finite.
    pub fn new(rate: f64) -> Result<Self> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(DistError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "must be finite and positive",
            });
        }
        Ok(Exponential { rate })
    }

    /// Creates an exponential distribution with the given mean `1/λ`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] unless `mean` is positive and finite.
    pub fn with_mean(mean: f64) -> Result<Self> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(DistError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and positive",
            });
        }
        Ok(Exponential { rate: 1.0 / mean })
    }

    /// The rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // 1 − U ∈ (0, 1], so the logarithm is always finite.
        -(1.0 - uniform01(rng)).ln() / self.rate
    }

    fn moment(&self, k: u32) -> f64 {
        factorial(k) / self.rate.powi(k as i32)
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn scv(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_validate() {
        assert!(Exponential::new(2.0).is_ok());
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::with_mean(-1.0).is_err());
        let e = Exponential::with_mean(4.0).unwrap();
        assert!((e.rate() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn analytic_quantities() {
        let e = Exponential::new(0.5).unwrap();
        assert!((e.mean() - 2.0).abs() < 1e-15);
        assert!((e.variance() - 4.0).abs() < 1e-15);
        assert!((e.scv() - 1.0).abs() < 1e-15);
        assert!((e.moment(3) - 6.0 * 8.0).abs() < 1e-9);
        assert!((e.pdf(0.0) - 0.5).abs() < 1e-15);
        assert_eq!(e.pdf(-1.0), 0.0);
        assert_eq!(e.cdf(-1.0), 0.0);
        assert!((e.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-15);
        assert!((e.survival(2.0) - (-1.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn sample_mean_converges() {
        let e = Exponential::with_mean(3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| e.sample(&mut rng)).sum();
        assert!((sum / n as f64 - 3.0).abs() < 0.03);
    }
}
