//! Distributions and statistics for the `unreliable-servers` workspace.
//!
//! Palmer & Mitrani's analysis of systems with multiple unreliable servers rests
//! on one statistical observation: the operative and inoperative periods of real
//! servers are **not** exponential but are well described by two-phase
//! **hyperexponential** distributions (Section 2 of the paper).  This crate
//! provides that modelling layer for every other crate in the workspace:
//!
//! * the object-safe [`ContinuousDistribution`] trait with pdf/cdf/moments and
//!   random sampling, implemented by [`Exponential`], [`HyperExponential`] and
//!   [`Deterministic`];
//! * empirical statistics — [`SampleMoments`], [`Histogram`] and the
//!   [`uniform01`] sampling helper;
//! * the trace-fitting procedures of the paper's Sections 2–3 in [`fit`]
//!   (three-moment matching, balanced means, brute-force rate search, EM);
//! * Kolmogorov–Smirnov goodness-of-fit testing in [`ks`].
//!
//! # Paper map
//!
//! | Paper artefact | Here |
//! |---|---|
//! | §2 hyperexponential fits of the Sun trace | [`HyperExponential`], [`fit`] |
//! | §2 goodness-of-fit decisions (Figures 3–4) | [`ks::KsTest`] |
//! | §3 balanced-means `H₂(mean, C²)` construction | [`HyperExponential::with_mean_and_scv`] |
//!
//! # Example
//!
//! ```
//! use urs_dist::{ContinuousDistribution, HyperExponential};
//!
//! # fn main() -> Result<(), urs_dist::DistError> {
//! // The operative-period distribution fitted to the Sun trace in the paper.
//! let operative = HyperExponential::new(&[0.7246, 0.2754], &[0.1663, 0.0091])?;
//! assert!((operative.mean() - 34.62).abs() < 0.05);
//! assert!((operative.scv() - 4.6).abs() < 0.1);
//!
//! // The same mean and variability via the balanced-means construction.
//! let balanced = HyperExponential::with_mean_and_scv(34.62, 4.6)?;
//! assert!((balanced.mean() - operative.mean()).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod deterministic;
mod error;
mod exponential;
mod hyperexp;
mod stats;
mod traits;

pub mod fit;
pub mod ks;

pub use deterministic::Deterministic;
pub use error::DistError;
pub use exponential::Exponential;
pub use hyperexp::HyperExponential;
pub use stats::{Histogram, SampleMoments};
pub use traits::{uniform, uniform01, ContinuousDistribution};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DistError>;
