//! One-sample Kolmogorov–Smirnov goodness-of-fit testing.
//!
//! The paper compares the empirical distribution of the operative and
//! inoperative periods against fitted exponential and hyperexponential
//! hypotheses at a fixed number of evaluation points (50 and 40 respectively)
//! and accepts or rejects at the 5% level.  [`KsTest`] reproduces exactly that
//! procedure via [`KsTest::from_grid`], and also offers the classical
//! all-jump-points variant via [`KsTest::from_samples`].

use crate::error::DistError;
use crate::Result;

/// Result of a one-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    statistic: f64,
    points: usize,
}

impl KsTest {
    /// Computes the KS statistic from a pre-evaluated empirical CDF.
    ///
    /// `grid` holds `(x, F̂(x))` pairs; `hypothesis` is the CDF of the fitted
    /// distribution.  The number of grid points is used as the sample size of the
    /// test, matching the paper's use of 50/40 evaluation points.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InsufficientData`] for an empty grid.
    pub fn from_grid<F: Fn(f64) -> f64>(grid: &[(f64, f64)], hypothesis: F) -> Result<Self> {
        if grid.is_empty() {
            return Err(DistError::InsufficientData("KS test needs at least one point".into()));
        }
        let statistic = grid
            .iter()
            .map(|&(x, empirical)| (empirical - hypothesis(x)).abs())
            .fold(0.0, f64::max);
        Ok(KsTest { statistic, points: grid.len() })
    }

    /// Computes the classical one-sample KS statistic over all jump points of the
    /// empirical CDF.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InsufficientData`] for an empty sample.
    pub fn from_samples<F: Fn(f64) -> f64>(samples: &[f64], hypothesis: F) -> Result<Self> {
        if samples.is_empty() {
            return Err(DistError::InsufficientData("KS test needs at least one sample".into()));
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        let mut statistic: f64 = 0.0;
        for (i, &x) in sorted.iter().enumerate() {
            let f = hypothesis(x);
            let below = i as f64 / n;
            let above = (i + 1) as f64 / n;
            statistic = statistic.max((f - below).abs()).max((f - above).abs());
        }
        Ok(KsTest { statistic, points: sorted.len() })
    }

    /// The KS statistic `D = sup |F̂ − F|`.
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// Number of points the statistic was computed from.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Critical value of the test at significance level `alpha` (asymptotic
    /// Kolmogorov formula `√(ln(2/α)/2) / √n`; e.g. `1.3581/√n` at 5%).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] unless `0 < alpha < 1`.
    pub fn critical_value(&self, alpha: f64) -> Result<f64> {
        if !(alpha.is_finite() && alpha > 0.0 && alpha < 1.0) {
            return Err(DistError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "significance level must lie in (0, 1)",
            });
        }
        let c = ((2.0 / alpha).ln() / 2.0).sqrt();
        Ok(c / (self.points as f64).sqrt())
    }

    /// Whether the hypothesis is accepted at level `alpha`
    /// (`D < critical value`).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] unless `0 < alpha < 1`.
    pub fn passes(&self, alpha: f64) -> Result<bool> {
        Ok(self.statistic < self.critical_value(alpha)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::Exponential;
    use crate::hyperexp::HyperExponential;
    use crate::traits::ContinuousDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn critical_values_match_the_published_table() {
        let test = KsTest { statistic: 0.0, points: 50 };
        // 1.3581/√50 ≈ 0.1921 — the paper's 5% threshold for Figure 3's 50 points.
        assert!((test.critical_value(0.05).unwrap() - 0.19206).abs() < 2e-4);
        let test40 = KsTest { statistic: 0.0, points: 40 };
        assert!((test40.critical_value(0.05).unwrap() - 0.21476).abs() < 3e-4);
        assert!(test.critical_value(0.0).is_err());
        assert!(test.critical_value(1.0).is_err());
        // Stricter levels have larger critical values.
        assert!(test.critical_value(0.01).unwrap() > test.critical_value(0.10).unwrap());
    }

    #[test]
    fn accepts_its_own_distribution() {
        let h = HyperExponential::new(&[0.7246, 0.2754], &[0.1663, 0.0091]).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let samples: Vec<f64> = (0..50_000).map(|_| h.sample(&mut rng)).collect();
        let test = KsTest::from_samples(&samples, |x| h.cdf(x)).unwrap();
        // With n = 50 000 the 5% critical value is ≈ 0.006; sampling from the
        // hypothesis itself must stay below it.
        assert!(test.passes(0.05).unwrap(), "D = {}", test.statistic());
    }

    #[test]
    fn rejects_a_wrong_hypothesis() {
        let h = HyperExponential::new(&[0.7246, 0.2754], &[0.1663, 0.0091]).unwrap();
        let wrong = Exponential::with_mean(h.mean()).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let samples: Vec<f64> = (0..20_000).map(|_| h.sample(&mut rng)).collect();
        let test = KsTest::from_samples(&samples, |x| wrong.cdf(x)).unwrap();
        assert!(!test.passes(0.05).unwrap(), "D = {}", test.statistic());
        assert!(test.statistic() > 0.1);
    }

    #[test]
    fn grid_variant_matches_hand_computation() {
        let grid = [(0.5, 0.4), (1.5, 0.9)];
        let test = KsTest::from_grid(&grid, |x| x / 2.0).unwrap();
        assert_eq!(test.points(), 2);
        assert!((test.statistic() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(KsTest::from_grid(&[], |x| x).is_err());
        assert!(KsTest::from_samples(&[], |x| x).is_err());
    }
}
