//! Fitting hyperexponential distributions to trace data (paper, Sections 2–3).
//!
//! The paper fits two-phase hyperexponentials to the operative and inoperative
//! periods of the Sun breakdown trace.  This module implements the procedures it
//! describes, plus two standard alternatives used as cross-checks:
//!
//! * [`fit_hyperexp2_moments`] — closed-form matching of the first three raw
//!   moments (a two-phase Prony / Hankel construction);
//! * [`fit_hyperexp2_mean_scv`] — the balanced-means construction from the mean
//!   and squared coefficient of variation only;
//! * [`fit_hyperexp_brute_force`] — the paper's brute-force search over a grid of
//!   candidate rates, choosing weights by least-squares moment matching;
//! * [`fit_hyperexp_em`] — maximum-likelihood fitting of a mixture of
//!   exponentials by expectation–maximisation.

use crate::error::DistError;
use crate::hyperexp::HyperExponential;
use crate::traits::factorial;
use crate::Result;

/// Fits a two-phase hyperexponential matching the given mean and squared
/// coefficient of variation by the balanced-means construction.
///
/// Equivalent to [`HyperExponential::with_mean_and_scv`]; provided under this
/// name for symmetry with the other fitting procedures.
///
/// # Errors
///
/// Returns [`DistError::InvalidParameter`] unless `mean > 0` and `scv ≥ 1`.
pub fn fit_hyperexp2_mean_scv(mean: f64, scv: f64) -> Result<HyperExponential> {
    HyperExponential::with_mean_and_scv(mean, scv)
}

/// Fits a two-phase hyperexponential matching the first three raw moments
/// `m₁ = E[X]`, `m₂ = E[X²]`, `m₃ = E[X³]` exactly.
///
/// Writing `uₖ = mₖ/k! = Σ wᵢ xᵢᵏ` with `xᵢ = 1/λᵢ`, the phase means are the
/// roots of `x² − ax + b` where `a` and `b` solve the 2×2 Hankel system, and the
/// weights follow from matching `u₁`.
///
/// # Errors
///
/// Returns [`DistError::FitFailure`] when the moments are not attainable by a
/// two-phase hyperexponential (e.g. `C² ≤ 1`, complex roots, or weights outside
/// `[0, 1]`) and [`DistError::InvalidParameter`] for non-positive moments.
pub fn fit_hyperexp2_moments(m1: f64, m2: f64, m3: f64) -> Result<HyperExponential> {
    for (name, value) in [("m1", m1), ("m2", m2), ("m3", m3)] {
        if !(value.is_finite() && value > 0.0) {
            return Err(DistError::InvalidParameter {
                name,
                value,
                constraint: "raw moments must be finite and positive",
            });
        }
    }
    let u1 = m1;
    let u2 = m2 / 2.0;
    let u3 = m3 / 6.0;
    let denom = u2 - u1 * u1;
    if denom <= 1e-12 * u1 * u1 {
        return Err(DistError::FitFailure(format!(
            "moments imply scv <= 1 (m2/m1^2 = {:.6}); use the balanced-means fit",
            m2 / (m1 * m1)
        )));
    }
    let a = (u3 - u1 * u2) / denom;
    let b = a * u1 - u2;
    let discriminant = a * a - 4.0 * b;
    if discriminant < 0.0 {
        return Err(DistError::FitFailure(
            "phase-mean quadratic has complex roots; moments not attainable by H2".into(),
        ));
    }
    let root = discriminant.sqrt();
    let x1 = (a + root) / 2.0;
    let x2 = (a - root) / 2.0;
    if !(x1 > 0.0 && x2 > 0.0 && x1 != x2) {
        return Err(DistError::FitFailure(format!(
            "phase means must be positive and distinct (got {x1}, {x2})"
        )));
    }
    let w1 = (u1 - x2) / (x1 - x2);
    if !(-1e-9..=1.0 + 1e-9).contains(&w1) {
        return Err(DistError::FitFailure(format!(
            "weight {w1} outside [0, 1]; moments not attainable by H2"
        )));
    }
    let w1 = w1.clamp(0.0, 1.0);
    HyperExponential::new(&[w1, 1.0 - w1], &[1.0 / x1, 1.0 / x2])
}

/// Options for [`fit_hyperexp_brute_force`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BruteForceOptions {
    /// Number of candidate rates on the search grid.
    pub grid_points: usize,
    /// Smallest candidate rate as a multiple of `1/m₁`.
    pub min_rate_factor: f64,
    /// Largest candidate rate as a multiple of `1/m₁`.
    pub max_rate_factor: f64,
}

impl Default for BruteForceOptions {
    fn default() -> Self {
        BruteForceOptions { grid_points: 40, min_rate_factor: 0.05, max_rate_factor: 50.0 }
    }
}

/// Fits an `phases`-phase hyperexponential to the raw moments `moments[k-1] = E[X^k]`
/// by brute force, as described in the paper's Section 3: candidate rates are drawn
/// from a logarithmic grid around the scale `1/m₁`, the weights for each rate
/// combination are chosen by least-squares moment matching (subject to summing
/// to 1 and lying in `[0, 1]`), and the combination with the smallest relative
/// moment error wins.
///
/// # Errors
///
/// Returns [`DistError::InvalidParameter`] for empty/non-positive moments, zero
/// phases, or a degenerate grid, and [`DistError::FitFailure`] when no candidate
/// rate combination admits valid weights.
pub fn fit_hyperexp_brute_force(
    moments: &[f64],
    phases: usize,
    options: &BruteForceOptions,
) -> Result<HyperExponential> {
    if moments.len() < phases {
        return Err(DistError::InvalidParameter {
            name: "moments",
            value: moments.len() as f64,
            constraint: "need at least as many moments as phases",
        });
    }
    for &m in moments {
        if !(m.is_finite() && m > 0.0) {
            return Err(DistError::InvalidParameter {
                name: "moment",
                value: m,
                constraint: "raw moments must be finite and positive",
            });
        }
    }
    if phases == 0 {
        return Err(DistError::InvalidParameter {
            name: "phases",
            value: 0.0,
            constraint: "must fit at least one phase",
        });
    }
    if options.grid_points < phases
        || !(options.min_rate_factor > 0.0 && options.max_rate_factor > options.min_rate_factor)
    {
        return Err(DistError::InvalidParameter {
            name: "grid_points",
            value: options.grid_points as f64,
            constraint: "grid must have at least `phases` points and positive, ordered bounds",
        });
    }

    // Reduced moments u_k = m_k / k! = Σ w_i x_i^k.
    let reduced: Vec<f64> =
        moments.iter().enumerate().map(|(i, m)| m / factorial(i as u32 + 1)).collect();
    let base_rate = 1.0 / moments[0];
    let log_min = (base_rate * options.min_rate_factor).ln();
    let log_max = (base_rate * options.max_rate_factor).ln();
    let grid: Vec<f64> = (0..options.grid_points)
        .map(|i| {
            let t = i as f64 / (options.grid_points - 1).max(1) as f64;
            (log_min + t * (log_max - log_min)).exp()
        })
        .collect();

    let mut best: Option<(f64, Vec<f64>, Vec<f64>)> = None;
    let mut combination = (0..phases).collect::<Vec<usize>>();
    loop {
        let rates: Vec<f64> = combination.iter().map(|&i| grid[i]).collect();
        if let Some(weights) = weights_for_rates(&rates, &reduced) {
            let score = moment_error(&weights, &rates, &reduced);
            if best.as_ref().is_none_or(|(s, _, _)| score < *s) {
                best = Some((score, weights, rates));
            }
        }
        if !next_combination(&mut combination, grid.len()) {
            break;
        }
    }

    let (mut score, mut weights, mut rates) = best.ok_or_else(|| {
        DistError::FitFailure("no rate combination on the grid admits valid weights".into())
    })?;

    // Local refinement: starting from the best grid point, repeatedly perturb each
    // rate by a shrinking multiplicative step and keep any improvement.  This
    // sharpens the coarse grid answer without changing its brute-force character.
    let mut step = if grid.len() > 1 { grid[1] / grid[0] } else { 2.0 };
    for _ in 0..12 {
        let mut improved = true;
        while improved {
            improved = false;
            for phase in 0..phases {
                for factor in [1.0 / step, step] {
                    let mut candidate = rates.clone();
                    candidate[phase] *= factor;
                    if let Some(w) = weights_for_rates(&candidate, &reduced) {
                        let candidate_score = moment_error(&w, &candidate, &reduced);
                        if candidate_score < score {
                            score = candidate_score;
                            weights = w;
                            rates = candidate;
                            improved = true;
                        }
                    }
                }
            }
        }
        step = step.sqrt();
    }

    HyperExponential::new(&weights, &rates)
}

/// Advances `combination` to the next strictly increasing index tuple below `n`.
fn next_combination(combination: &mut [usize], n: usize) -> bool {
    let k = combination.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combination[i] < n - (k - i) {
            combination[i] += 1;
            for j in i + 1..k {
                combination[j] = combination[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Least-squares weights for fixed phase rates, or `None` when they leave `[0, 1]`.
fn weights_for_rates(rates: &[f64], reduced: &[f64]) -> Option<Vec<f64>> {
    let p = rates.len();
    // Rows: normalisation (Σw = 1) plus one scaled row per reduced moment.
    let mut rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(reduced.len() + 1);
    rows.push((vec![1.0; p], 1.0));
    for (k, &u) in reduced.iter().enumerate() {
        let row: Vec<f64> = rates.iter().map(|&r| (1.0 / r).powi(k as i32 + 1) / u).collect();
        rows.push((row, 1.0));
    }
    // Normal equations Aᵀ A w = Aᵀ b.
    let mut ata = vec![vec![0.0; p]; p];
    let mut atb = vec![0.0; p];
    for (row, target) in &rows {
        for i in 0..p {
            for j in 0..p {
                ata[i][j] += row[i] * row[j];
            }
            atb[i] += row[i] * target;
        }
    }
    let weights = solve_dense(&mut ata, &mut atb)?;
    if weights.iter().any(|&w| !(-1e-6..=1.0 + 1e-6).contains(&w)) {
        return None;
    }
    let mut weights: Vec<f64> = weights.iter().map(|w| w.clamp(0.0, 1.0)).collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    for w in &mut weights {
        *w /= total;
    }
    Some(weights)
}

/// Sum of squared relative errors of the reduced moments.
fn moment_error(weights: &[f64], rates: &[f64], reduced: &[f64]) -> f64 {
    reduced
        .iter()
        .enumerate()
        .map(|(k, &u)| {
            let fit: f64 =
                weights.iter().zip(rates).map(|(w, r)| w * (1.0 / r).powi(k as i32 + 1)).sum();
            ((fit - u) / u).powi(2)
        })
        .sum()
}

/// Gaussian elimination with partial pivoting on a small dense system.
#[allow(clippy::needless_range_loop)] // elimination updates row `row` from row `col` in place
fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in row + 1..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Fits an `phases`-phase hyperexponential to a sample by
/// expectation–maximisation, running exactly `iterations` EM steps from a
/// quantile-based initial guess.
///
/// # Errors
///
/// Returns [`DistError::InsufficientData`] when the sample has fewer
/// observations than phases and [`DistError::InvalidParameter`] for zero
/// phases/iterations or non-finite/negative observations.
pub fn fit_hyperexp_em(
    samples: &[f64],
    phases: usize,
    iterations: usize,
) -> Result<HyperExponential> {
    if phases == 0 || iterations == 0 {
        return Err(DistError::InvalidParameter {
            name: "phases",
            value: phases.min(iterations) as f64,
            constraint: "phases and iterations must both be at least 1",
        });
    }
    if samples.len() < phases {
        return Err(DistError::InsufficientData(format!(
            "EM needs at least {phases} observations, got {}",
            samples.len()
        )));
    }
    for &x in samples {
        if !(x.is_finite() && x >= 0.0) {
            return Err(DistError::InvalidParameter {
                name: "sample",
                value: x,
                constraint: "observations must be finite and non-negative",
            });
        }
    }

    // Initial guess: split the sorted sample into `phases` equal-count groups and
    // use each group's mean as a phase mean.
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let group = sorted.len() / phases;
    let mut weights = vec![1.0 / phases as f64; phases];
    let mut rates: Vec<f64> = (0..phases)
        .map(|j| {
            let lo = j * group;
            let hi = if j + 1 == phases { sorted.len() } else { (j + 1) * group };
            let mean = sorted[lo..hi].iter().sum::<f64>() / (hi - lo).max(1) as f64;
            1.0 / mean.max(1e-12)
        })
        .collect();

    let n = samples.len() as f64;
    let mut responsibilities = vec![0.0; phases];
    for _ in 0..iterations {
        let mut weight_sums = vec![0.0; phases];
        let mut weighted_x = vec![0.0; phases];
        for &x in samples {
            let mut total = 0.0;
            for j in 0..phases {
                let density = weights[j] * rates[j] * (-rates[j] * x).exp();
                responsibilities[j] = density;
                total += density;
            }
            if total <= f64::MIN_POSITIVE {
                // Far tail where every phase density underflows: attribute the
                // observation to the slowest phase.
                let j = rates
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0);
                weight_sums[j] += 1.0;
                weighted_x[j] += x;
                continue;
            }
            for j in 0..phases {
                let r = responsibilities[j] / total;
                weight_sums[j] += r;
                weighted_x[j] += r * x;
            }
        }
        for j in 0..phases {
            weights[j] = (weight_sums[j] / n).max(1e-12);
            rates[j] = (weight_sums[j] / weighted_x[j].max(1e-300)).clamp(1e-9, 1e12);
        }
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
    }
    HyperExponential::new(&weights, &rates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SampleMoments;
    use crate::traits::ContinuousDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The operative-period fit published in the paper's Section 2
    /// (mean ≈ 34.62, C² ≈ 4.6).
    fn sun_operative() -> HyperExponential {
        HyperExponential::new(&[0.7246, 0.2754], &[0.1663, 0.0091]).unwrap()
    }

    fn sorted_rates(h: &HyperExponential) -> Vec<f64> {
        let mut rates = h.rates().to_vec();
        rates.sort_by(|a, b| b.partial_cmp(a).unwrap());
        rates
    }

    #[test]
    fn moment_fit_recovers_exact_parameters_from_analytic_moments() {
        let truth = sun_operative();
        let fit = fit_hyperexp2_moments(truth.moment(1), truth.moment(2), truth.moment(3)).unwrap();
        let (truth_rates, fit_rates) = (sorted_rates(&truth), sorted_rates(&fit));
        for (t, f) in truth_rates.iter().zip(&fit_rates) {
            assert!((t - f).abs() / t < 1e-9, "rate {f} vs {t}");
        }
        assert!((fit.mean() - truth.mean()).abs() / truth.mean() < 1e-12);
        assert!((fit.scv() - truth.scv()).abs() / truth.scv() < 1e-9);
    }

    #[test]
    fn moment_fit_recovers_sun_trace_parameters_from_synthetic_samples() {
        // The satellite requirement: recover the paper's operative-period
        // parameters (mean 34.62, C² 4.6) from samples of the published fit.
        let truth = sun_operative();
        let mut rng = StdRng::seed_from_u64(2006);
        let samples: Vec<f64> = (0..200_000).map(|_| truth.sample(&mut rng)).collect();
        let m = SampleMoments::from_samples(&samples).unwrap();
        let fit = fit_hyperexp2_moments(m.raw_moment(1), m.raw_moment(2), m.raw_moment(3)).unwrap();
        assert!((fit.mean() - 34.62).abs() / 34.62 < 0.02, "mean {}", fit.mean());
        assert!((fit.scv() - 4.6).abs() / 4.6 < 0.15, "scv {}", fit.scv());
        let rates = sorted_rates(&fit);
        assert!((rates[0] - 0.1663).abs() / 0.1663 < 0.25, "xi1 {}", rates[0]);
        assert!((rates[1] - 0.0091).abs() / 0.0091 < 0.25, "xi2 {}", rates[1]);
    }

    #[test]
    fn moment_fit_rejects_unattainable_moments() {
        // Exponential moments (scv = 1) have no two-phase representation.
        assert!(fit_hyperexp2_moments(1.0, 2.0, 6.0).is_err());
        // scv < 1 certainly fails.
        assert!(fit_hyperexp2_moments(1.0, 1.2, 2.0).is_err());
        assert!(fit_hyperexp2_moments(-1.0, 2.0, 6.0).is_err());
    }

    #[test]
    fn mean_scv_fit_round_trips() {
        let fit = fit_hyperexp2_mean_scv(34.62, 4.6).unwrap();
        assert!((fit.mean() - 34.62).abs() < 1e-9);
        assert!((fit.scv() - 4.6).abs() < 1e-9);
        assert!(fit_hyperexp2_mean_scv(34.62, 0.5).is_err());
    }

    #[test]
    fn brute_force_matches_the_target_moments() {
        let truth = sun_operative();
        let moments: Vec<f64> = (1..=5).map(|k| truth.moment(k)).collect();
        let options = BruteForceOptions::default();
        let fit = fit_hyperexp_brute_force(&moments, 2, &options).unwrap();
        assert!((fit.mean() - truth.mean()).abs() / truth.mean() < 0.02, "mean {}", fit.mean());
        assert!((fit.scv() - truth.scv()).abs() / truth.scv() < 0.15, "scv {}", fit.scv());
    }

    #[test]
    fn brute_force_validates_inputs() {
        assert!(fit_hyperexp_brute_force(&[1.0], 2, &BruteForceOptions::default()).is_err());
        assert!(fit_hyperexp_brute_force(&[1.0, -3.0], 2, &BruteForceOptions::default()).is_err());
        let bad_grid = BruteForceOptions { grid_points: 1, ..BruteForceOptions::default() };
        assert!(fit_hyperexp_brute_force(&[1.0, 3.0], 2, &bad_grid).is_err());
    }

    #[test]
    fn em_recovers_an_accurate_mixture_from_samples() {
        let truth = sun_operative();
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..30_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = fit_hyperexp_em(&samples, 2, 200).unwrap();
        assert!((fit.mean() - truth.mean()).abs() / truth.mean() < 0.05, "mean {}", fit.mean());
        assert!((fit.scv() - truth.scv()).abs() / truth.scv() < 0.25, "scv {}", fit.scv());
    }

    #[test]
    fn em_validates_inputs() {
        assert!(fit_hyperexp_em(&[1.0], 2, 10).is_err());
        assert!(fit_hyperexp_em(&[1.0, 2.0], 0, 10).is_err());
        assert!(fit_hyperexp_em(&[1.0, 2.0], 2, 0).is_err());
        assert!(fit_hyperexp_em(&[1.0, f64::NAN], 1, 10).is_err());
        assert!(fit_hyperexp_em(&[1.0, 2.0, 3.0], 1, 10).is_ok());
    }

    #[test]
    fn combination_iterator_visits_all_pairs() {
        let mut combination = vec![0usize, 1];
        let mut seen = vec![combination.clone()];
        while next_combination(&mut combination, 4) {
            seen.push(combination.clone());
        }
        assert_eq!(seen.len(), 6); // C(4, 2)
        assert!(seen.iter().all(|c| c[0] < c[1]));
    }
}
