//! Empirical statistics: sample moments and histograms.

use crate::error::DistError;
use crate::Result;

/// Highest raw moment tracked by [`SampleMoments`].
const MAX_MOMENT: usize = 5;

/// Raw sample moments of a data set, as used by the paper's Section-2 pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleMoments {
    count: usize,
    raw: [f64; MAX_MOMENT],
}

impl SampleMoments {
    /// Estimates the first five raw moments from a sample.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InsufficientData`] for an empty sample and
    /// [`DistError::InvalidParameter`] if any observation is not finite.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(DistError::InsufficientData(
                "cannot estimate moments from an empty sample".into(),
            ));
        }
        let mut raw = [0.0; MAX_MOMENT];
        for &x in samples {
            if !x.is_finite() {
                return Err(DistError::InvalidParameter {
                    name: "sample",
                    value: x,
                    constraint: "must be finite",
                });
            }
            let mut power = 1.0;
            for slot in &mut raw {
                power *= x;
                *slot += power;
            }
        }
        let n = samples.len() as f64;
        for slot in &mut raw {
            *slot /= n;
        }
        Ok(SampleMoments { count: samples.len(), raw })
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `k`-th raw moment `(1/n) Σ xᵢᵏ` for `1 ≤ k ≤ 5`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or greater than 5.
    pub fn raw_moment(&self, k: usize) -> f64 {
        assert!((1..=MAX_MOMENT).contains(&k), "raw_moment supports k in 1..=5, got {k}");
        self.raw[k - 1]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.raw[0]
    }

    /// (Biased) sample variance `m₂ − m₁²`.
    pub fn variance(&self) -> f64 {
        (self.raw[1] - self.raw[0] * self.raw[0]).max(0.0)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Squared coefficient of variation `C² = variance / mean²`.
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        self.variance() / (m * m)
    }
}

/// Equal-width histogram over a fixed range, used for the density comparisons of
/// the paper's Figures 3 and 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<usize>,
    total: usize,
    low: f64,
    high: f64,
}

impl Histogram {
    /// Builds a histogram of `samples` with `bins` equal intervals over
    /// `[low, high]`.  Samples outside the range are ignored by the counts but
    /// still included in the density denominator, so the reported densities refer
    /// to the full sample.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InsufficientData`] for an empty sample and
    /// [`DistError::InvalidParameter`] for `bins == 0` or a degenerate range.
    pub fn with_range(samples: &[f64], bins: usize, low: f64, high: f64) -> Result<Self> {
        if samples.is_empty() {
            return Err(DistError::InsufficientData(
                "cannot build a histogram from an empty sample".into(),
            ));
        }
        if bins == 0 {
            return Err(DistError::InvalidParameter {
                name: "bins",
                value: 0.0,
                constraint: "must be at least 1",
            });
        }
        if !(low.is_finite() && high.is_finite() && high > low) {
            return Err(DistError::InvalidParameter {
                name: "high",
                value: high,
                constraint: "range must be finite with high > low",
            });
        }
        let width = (high - low) / bins as f64;
        let mut counts = vec![0usize; bins];
        for &x in samples {
            if x < low || x > high || !x.is_finite() {
                continue;
            }
            let index = (((x - low) / width) as usize).min(bins - 1);
            counts[index] += 1;
        }
        Ok(Histogram { counts, total: samples.len(), low, high })
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.high - self.low) / self.counts.len() as f64
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Midpoint of every bin.
    pub fn midpoints(&self) -> Vec<f64> {
        let width = self.bin_width();
        (0..self.counts.len()).map(|i| self.low + (i as f64 + 0.5) * width).collect()
    }

    /// Empirical density of every bin: `count / (n · width)`, so that the
    /// histogram integrates to the fraction of the sample inside the range.
    pub fn densities(&self) -> Vec<f64> {
        let scale = 1.0 / (self.total as f64 * self.bin_width());
        self.counts.iter().map(|&c| c as f64 * scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_a_known_sample() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        let m = SampleMoments::from_samples(&samples).unwrap();
        assert_eq!(m.count(), 4);
        assert!((m.mean() - 2.5).abs() < 1e-12);
        assert!((m.raw_moment(2) - 7.5).abs() < 1e-12);
        assert!((m.raw_moment(3) - 25.0).abs() < 1e-12);
        assert!((m.variance() - 1.25).abs() < 1e-12);
        assert!((m.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
        assert!((m.scv() - 1.25 / 6.25).abs() < 1e-12);
    }

    #[test]
    fn moments_reject_bad_input() {
        assert!(SampleMoments::from_samples(&[]).is_err());
        assert!(SampleMoments::from_samples(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    #[should_panic(expected = "raw_moment supports k in 1..=5")]
    fn raw_moment_rejects_out_of_range_order() {
        let m = SampleMoments::from_samples(&[1.0]).unwrap();
        let _ = m.raw_moment(0);
    }

    #[test]
    fn histogram_counts_and_densities() {
        // 10 samples uniform over [0, 10) midpoints.
        let samples: Vec<f64> = (0..10).map(|i| i as f64 + 0.5).collect();
        let h = Histogram::with_range(&samples, 5, 0.0, 10.0).unwrap();
        assert_eq!(h.bins(), 5);
        assert!((h.bin_width() - 2.0).abs() < 1e-12);
        assert_eq!(h.counts(), &[2, 2, 2, 2, 2]);
        for d in h.densities() {
            assert!((d - 0.1).abs() < 1e-12);
        }
        let mids = h.midpoints();
        assert!((mids[0] - 1.0).abs() < 1e-12);
        assert!((mids[4] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_samples_shrink_the_density_mass() {
        let samples = [0.5, 1.5, 100.0, 200.0];
        let h = Histogram::with_range(&samples, 2, 0.0, 2.0).unwrap();
        assert_eq!(h.counts(), &[1, 1]);
        // Density integrates to 1/2 because half of the sample is outside.
        let integral: f64 = h.densities().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_input() {
        assert!(Histogram::with_range(&[], 5, 0.0, 1.0).is_err());
        assert!(Histogram::with_range(&[1.0], 0, 0.0, 1.0).is_err());
        assert!(Histogram::with_range(&[1.0], 5, 1.0, 1.0).is_err());
    }

    #[test]
    fn boundary_sample_lands_in_last_bin() {
        let h = Histogram::with_range(&[2.0], 4, 0.0, 2.0).unwrap();
        assert_eq!(h.counts(), &[0, 0, 0, 1]);
    }
}
