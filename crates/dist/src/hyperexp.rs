//! The hyperexponential (mixture-of-exponentials) distribution.

use rand::RngCore;

use crate::error::DistError;
use crate::traits::{factorial, uniform01, ContinuousDistribution};
use crate::Result;

/// Hyperexponential distribution `H_n`: with probability `w_i` the value is drawn
/// from an exponential with rate `λ_i`.
///
/// This is the paper's central modelling ingredient: the operative and
/// inoperative periods of the Sun breakdown trace are well described by two-phase
/// hyperexponentials (Section 2), and the Markov-modulated queue of Section 3 is
/// built from their phases.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperExponential {
    weights: Vec<f64>,
    rates: Vec<f64>,
}

impl HyperExponential {
    /// Creates a hyperexponential distribution from phase weights and rates.
    ///
    /// The weights must be non-negative and sum to 1 (up to a `1e-6` tolerance;
    /// they are renormalised exactly), and every rate must be positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] when the slices are empty, their
    /// lengths differ, or any value violates the constraints above.
    pub fn new(weights: &[f64], rates: &[f64]) -> Result<Self> {
        if weights.is_empty() || weights.len() != rates.len() {
            return Err(DistError::InvalidParameter {
                name: "weights",
                value: weights.len() as f64,
                constraint: "weights and rates must be non-empty and of equal length",
            });
        }
        for &w in weights {
            if !(w.is_finite() && w >= 0.0) {
                return Err(DistError::InvalidParameter {
                    name: "weight",
                    value: w,
                    constraint: "must be finite and non-negative",
                });
            }
        }
        for &r in rates {
            if !(r.is_finite() && r > 0.0) {
                return Err(DistError::InvalidParameter {
                    name: "rate",
                    value: r,
                    constraint: "must be finite and positive",
                });
            }
        }
        let total: f64 = weights.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(DistError::InvalidParameter {
                name: "weights",
                value: total,
                constraint: "must sum to 1",
            });
        }
        Ok(HyperExponential {
            weights: weights.iter().map(|w| w / total).collect(),
            rates: rates.to_vec(),
        })
    }

    /// Creates the single-phase hyperexponential, i.e. a plain exponential with
    /// the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] unless `rate` is positive and finite.
    pub fn exponential(rate: f64) -> Result<Self> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(DistError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "must be finite and positive",
            });
        }
        Ok(HyperExponential { weights: vec![1.0], rates: vec![rate] })
    }

    /// Creates a distribution with the given mean and squared coefficient of
    /// variation by the balanced-means two-phase construction.
    ///
    /// For `scv > 1` the two phases satisfy `w₁/λ₁ = w₂/λ₂` (each contributes half
    /// the mean), which fixes all four parameters:
    /// `w₁ = (1 + √((C²−1)/(C²+1)))/2`, `λ₁ = 2w₁/m`, and symmetrically for
    /// phase 2.  For `scv = 1` (up to `1e-9`) the result is the single-phase
    /// exponential with rate `1/mean`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] unless `mean` is positive and
    /// finite and `scv ≥ 1` (a hyperexponential cannot have `C² < 1`).
    pub fn with_mean_and_scv(mean: f64, scv: f64) -> Result<Self> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(DistError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and positive",
            });
        }
        if !scv.is_finite() || scv < 1.0 - 1e-9 {
            return Err(DistError::InvalidParameter {
                name: "scv",
                value: scv,
                constraint: "must be finite and at least 1 for a hyperexponential",
            });
        }
        if scv <= 1.0 + 1e-9 {
            return HyperExponential::exponential(1.0 / mean);
        }
        let t = ((scv - 1.0) / (scv + 1.0)).sqrt();
        let w1 = 0.5 * (1.0 + t);
        let w2 = 1.0 - w1;
        let rates = vec![2.0 * w1 / mean, 2.0 * w2 / mean];
        Ok(HyperExponential { weights: vec![w1, w2], rates })
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.rates.len()
    }

    /// The phase weights (mixing probabilities), summing to 1.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The phase rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }
}

impl ContinuousDistribution for HyperExponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        self.weights.iter().zip(&self.rates).map(|(w, r)| w * r * (-r * x).exp()).sum()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        1.0 - self.weights.iter().zip(&self.rates).map(|(w, r)| w * (-r * x).exp()).sum::<f64>()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u = uniform01(&mut *rng);
        // urs-analyze: allow(no_panic, reason = "constructors reject empty phase lists, so `rates` is non-empty")
        let mut rate = *self.rates.last().expect("constructors require at least one phase");
        for (w, r) in self.weights.iter().zip(&self.rates) {
            if u < *w {
                rate = *r;
                break;
            }
            u -= w;
        }
        -(1.0 - uniform01(&mut *rng)).ln() / rate
    }

    fn moment(&self, k: u32) -> f64 {
        factorial(k)
            * self.weights.iter().zip(&self.rates).map(|(w, r)| w / r.powi(k as i32)).sum::<f64>()
    }

    fn mean(&self) -> f64 {
        self.weights.iter().zip(&self.rates).map(|(w, r)| w / r).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The operative-period fit published in the paper's Section 2.
    fn paper_operative() -> HyperExponential {
        HyperExponential::new(&[0.7246, 0.2754], &[0.1663, 0.0091]).unwrap()
    }

    #[test]
    fn constructor_validates() {
        assert!(HyperExponential::new(&[], &[]).is_err());
        assert!(HyperExponential::new(&[1.0], &[1.0, 2.0]).is_err());
        assert!(HyperExponential::new(&[0.5, 0.2], &[1.0, 2.0]).is_err());
        assert!(HyperExponential::new(&[0.5, 0.5], &[1.0, -2.0]).is_err());
        assert!(HyperExponential::new(&[-0.2, 1.2], &[1.0, 2.0]).is_err());
        assert!(HyperExponential::new(&[0.5, 0.5], &[1.0, 2.0]).is_ok());
    }

    #[test]
    fn paper_parameters_have_published_statistics() {
        let h = paper_operative();
        assert_eq!(h.phases(), 2);
        // Mean ≈ 34.62 and C² ≈ 4.6 as published in Section 2.
        assert!((h.mean() - 34.62).abs() < 0.05, "mean {}", h.mean());
        assert!((h.scv() - 4.6).abs() < 0.1, "scv {}", h.scv());
    }

    #[test]
    fn exponential_special_case() {
        let h = HyperExponential::exponential(0.25).unwrap();
        assert_eq!(h.phases(), 1);
        assert!((h.mean() - 4.0).abs() < 1e-12);
        assert!((h.scv() - 1.0).abs() < 1e-12);
        assert!(HyperExponential::exponential(0.0).is_err());
    }

    #[test]
    fn with_mean_and_scv_round_trips() {
        for &(mean, scv) in
            &[(34.62, 4.6), (1.0, 1.5), (0.08, 19.0), (250.0, 2.0), (5.0, 1.0000000001)]
        {
            let h = HyperExponential::with_mean_and_scv(mean, scv).unwrap();
            assert!((h.mean() - mean).abs() / mean < 1e-12, "mean {} vs {mean}", h.mean());
            assert!((h.scv() - scv).abs() / scv < 1e-6, "scv {} vs {scv}", h.scv());
        }
        // scv = 1 collapses to a single exponential phase.
        let exp = HyperExponential::with_mean_and_scv(10.0, 1.0).unwrap();
        assert_eq!(exp.phases(), 1);
        assert!(HyperExponential::with_mean_and_scv(10.0, 0.5).is_err());
        assert!(HyperExponential::with_mean_and_scv(-1.0, 2.0).is_err());
    }

    #[test]
    fn balanced_means_construction_is_balanced() {
        let h = HyperExponential::with_mean_and_scv(20.0, 6.0).unwrap();
        let contributions: Vec<f64> =
            h.weights().iter().zip(h.rates()).map(|(w, r)| w / r).collect();
        assert!((contributions[0] - contributions[1]).abs() < 1e-9);
    }

    #[test]
    fn pdf_cdf_and_moments_are_consistent() {
        let h = paper_operative();
        assert_eq!(h.pdf(-1.0), 0.0);
        assert_eq!(h.cdf(-1.0), 0.0);
        assert!((h.cdf(0.0)).abs() < 1e-12);
        // Numeric integral of the pdf approximates the cdf.
        let (mut integral, dx) = (0.0, 0.01);
        let mut x = 0.0;
        while x < 100.0 {
            integral += h.pdf(x + dx / 2.0) * dx;
            x += dx;
        }
        assert!((integral - h.cdf(100.0)).abs() < 1e-3);
        // moment(1) matches mean, moment(2) matches variance relation.
        assert!((h.moment(1) - h.mean()).abs() < 1e-12);
        assert!((h.variance() - (h.moment(2) - h.mean().powi(2))).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_analytic_mean_and_scv() {
        let h = paper_operative();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 300_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = h.sample(&mut rng);
            assert!(x >= 0.0);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - h.mean()).abs() / h.mean() < 0.02, "mean {mean}");
        assert!((var / (mean * mean) - h.scv()).abs() / h.scv() < 0.05);
    }
}
