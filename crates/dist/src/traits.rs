//! The [`ContinuousDistribution`] trait and basic sampling helpers.

use std::fmt;

use rand::RngCore;

/// A continuous, non-negative distribution usable for service times and
/// operative/inoperative periods.
///
/// The trait is object safe — the simulator stores distributions as
/// `Arc<dyn ContinuousDistribution>` — which is why [`sample`](Self::sample)
/// takes a `&mut dyn RngCore` rather than a generic parameter.
pub trait ContinuousDistribution: fmt::Debug + Send + Sync {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Draws one observation using the supplied generator.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// `k`-th raw moment `E[X^k]` (`k = 0` gives 1).
    fn moment(&self, k: u32) -> f64;

    /// Expected value `E[X]`.
    fn mean(&self) -> f64 {
        self.moment(1)
    }

    /// Variance `E[X²] − E[X]²`.
    fn variance(&self) -> f64 {
        let m1 = self.moment(1);
        (self.moment(2) - m1 * m1).max(0.0)
    }

    /// Squared coefficient of variation `C² = Var[X]/E[X]²`.
    fn scv(&self) -> f64 {
        let m1 = self.mean();
        self.variance() / (m1 * m1)
    }

    /// Survival function `P(X > x)`.
    fn survival(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).max(0.0)
    }
}

/// Uniform draw from `[0, 1)` with 53 bits of precision.
pub fn uniform01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[low, high)`.
pub fn uniform<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
    low + uniform01(rng) * (high - low)
}

/// Factorial of `k` as a float (exact for `k ≤ 20`, used for moment formulas).
pub(crate) fn factorial(k: u32) -> f64 {
    (1..=u64::from(k)).map(|i| i as f64).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform01_stays_in_unit_interval_and_looks_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = uniform01(&mut rng);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = uniform(&mut rng, -3.0, 7.0);
            assert!((-3.0..7.0).contains(&v));
        }
    }

    #[test]
    fn factorial_small_values() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(1), 1.0);
        assert_eq!(factorial(5), 120.0);
        assert_eq!(factorial(10), 3_628_800.0);
    }
}
