//! The deterministic (degenerate) distribution.

use rand::RngCore;

use crate::error::DistError;
use crate::traits::ContinuousDistribution;
use crate::Result;

/// Degenerate distribution concentrated at a single positive value.
///
/// Used for the `C² = 0` points of the paper's Figure 6, which the analytic
/// model cannot express but the simulator can.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a distribution concentrated at `value`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidParameter`] unless `value` is positive and finite.
    pub fn new(value: f64) -> Result<Self> {
        if !(value.is_finite() && value > 0.0) {
            return Err(DistError::InvalidParameter {
                name: "value",
                value,
                constraint: "must be finite and positive",
            });
        }
        Ok(Deterministic { value })
    }

    /// The constant value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl ContinuousDistribution for Deterministic {
    /// The distribution has no density; by convention this returns `∞` at the
    /// atom and `0` elsewhere.
    fn pdf(&self, x: f64) -> f64 {
        if x == self.value {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }

    fn moment(&self, k: u32) -> f64 {
        self.value.powi(k as i32)
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn scv(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructor_validates() {
        assert!(Deterministic::new(34.62).is_ok());
        assert!(Deterministic::new(0.0).is_err());
        assert!(Deterministic::new(f64::INFINITY).is_err());
    }

    #[test]
    fn degenerate_quantities() {
        let d = Deterministic::new(2.5).unwrap();
        assert_eq!(d.value(), 2.5);
        assert_eq!(d.mean(), 2.5);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.scv(), 0.0);
        assert_eq!(d.moment(2), 6.25);
        assert_eq!(d.cdf(2.0), 0.0);
        assert_eq!(d.cdf(2.5), 1.0);
        assert_eq!(d.cdf(3.0), 1.0);
        assert_eq!(d.pdf(1.0), 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 2.5);
    }
}
