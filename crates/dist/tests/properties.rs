//! Property-based tests for the distribution layer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use urs_dist::{ContinuousDistribution, Exponential, HyperExponential, SampleMoments};

/// Strategy: a well-posed hyperexponential via the balanced-means construction.
fn hyperexp_strategy() -> impl Strategy<Value = HyperExponential> {
    (0.05_f64..100.0, 1.0_f64..20.0).prop_map(|(mean, scv)| {
        HyperExponential::with_mean_and_scv(mean, scv).expect("valid mean and scv")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CDF is monotone non-decreasing and stays within [0, 1].
    #[test]
    fn cdf_is_monotone_and_bounded(h in hyperexp_strategy(), scale in 0.1_f64..10.0) {
        let mut previous = 0.0;
        for i in 0..200 {
            let x = scale * h.mean() * i as f64 / 50.0;
            let value = h.cdf(x);
            prop_assert!((0.0..=1.0).contains(&value), "cdf({x}) = {value}");
            prop_assert!(value + 1e-12 >= previous, "cdf not monotone at {x}");
            previous = value;
        }
    }

    /// The density is non-negative everywhere.
    #[test]
    fn pdf_is_non_negative(h in hyperexp_strategy(), scale in 0.0_f64..20.0) {
        let x = scale * h.mean();
        prop_assert!(h.pdf(x) >= 0.0);
        prop_assert!(h.pdf(-x - 1.0) == 0.0);
    }

    /// Sample moments converge to the analytic moments.
    #[test]
    fn sample_moments_converge_to_analytic_moments(
        h in hyperexp_strategy(),
        seed in 0_u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..60_000).map(|_| h.sample(&mut rng)).collect();
        let m = SampleMoments::from_samples(&samples).unwrap();
        prop_assert!(
            (m.mean() - h.mean()).abs() / h.mean() < 0.1,
            "sample mean {} vs analytic {}", m.mean(), h.mean()
        );
        // The second moment is noisier for high-variability draws; bound loosely.
        prop_assert!(
            (m.raw_moment(2) - h.moment(2)).abs() / h.moment(2) < 0.35,
            "sample m2 {} vs analytic {}", m.raw_moment(2), h.moment(2)
        );
    }

    /// The single-phase hyperexponential is exactly exponential: C² = 1 and the
    /// distribution functions match the plain exponential.
    #[test]
    fn single_phase_hyperexponential_is_exponential(rate in 0.01_f64..50.0, x in 0.0_f64..100.0) {
        let h = HyperExponential::exponential(rate).unwrap();
        let e = Exponential::new(rate).unwrap();
        prop_assert!((h.scv() - 1.0).abs() < 1e-12);
        prop_assert!((h.mean() - e.mean()).abs() < 1e-12);
        prop_assert!((h.cdf(x) - e.cdf(x)).abs() < 1e-12);
        prop_assert!((h.pdf(x) - e.pdf(x)).abs() < 1e-9 * rate.max(1.0));
    }

    /// `with_mean_and_scv` round-trips its arguments for any valid pair.
    #[test]
    fn with_mean_and_scv_round_trips(mean in 0.01_f64..500.0, scv in 1.0_f64..30.0) {
        let h = HyperExponential::with_mean_and_scv(mean, scv).unwrap();
        prop_assert!((h.mean() - mean).abs() / mean < 1e-9);
        prop_assert!((h.scv() - scv).abs() / scv < 1e-6);
    }

    /// Weights always sum to 1 and moments are consistent with mean/variance.
    #[test]
    fn internal_consistency(h in hyperexp_strategy()) {
        let total: f64 = h.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
        prop_assert!((h.moment(1) - h.mean()).abs() < 1e-9 * h.mean());
        let variance = h.moment(2) - h.mean() * h.mean();
        prop_assert!((h.variance() - variance).abs() < 1e-6 * variance.max(1e-12));
    }
}
